//! The numbered invariant catalog.
//!
//! One catalog covers both halves of the gate: `E…` rules are checked
//! statically by this crate; `I…` invariants are the runtime
//! `debug_assert!` twins living in `execmig_core::invariants` and
//! `execmig_machine::invariants`, whose panic messages carry the same
//! ids. `DESIGN.md` ("Invariant catalog & static analysis") documents
//! every entry; `execmig-lint --catalog` prints this table.

/// Whether a rule is enforced by the linter or by runtime asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Checked by `execmig-lint` over sources and manifests.
    Static,
    /// Checked by `debug_assert!` in debug builds.
    Runtime,
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id (`E00x` static, `I10x` runtime).
    pub id: &'static str,
    /// Enforcement site.
    pub kind: RuleKind,
    /// One-line statement of the rule.
    pub title: &'static str,
    /// Where in Michaud (HPCA 2004) the rule comes from, or the repo
    /// policy it encodes.
    pub paper: &'static str,
}

/// The catalog, in id order.
pub const CATALOG: &[Rule] = &[
    Rule {
        id: "E001",
        kind: RuleKind::Static,
        title: "manifest dependencies respect the trace → cache → core → machine → experiments DAG (obs is a side layer; no third-party crates)",
        paper: "repo policy (dependency-free reproduction)",
    },
    Rule {
        id: "E002",
        kind: RuleKind::Static,
        title: "source code never names a crate above its own layer",
        paper: "repo policy (mirrors E001 at use/path level)",
    },
    Rule {
        id: "E003",
        kind: RuleKind::Static,
        title: "the obs `trace` feature is enabled only through [features] forwarding, never hard-wired in [dependencies]",
        paper: "repo policy (zero-cost tracing by default)",
    },
    Rule {
        id: "E004",
        kind: RuleKind::Static,
        title: "hot-path files are panic-free: no .unwrap()/.expect()/panic!/todo!/unimplemented! outside tests",
        paper: "§3.2, Fig 2 (the datapath is hardware: no failure path)",
    },
    Rule {
        id: "E005",
        kind: RuleKind::Static,
        title: "hot-path files use fixed-point arithmetic only: no f32/f64 outside tests",
        paper: "§3.2 (16-bit saturating integers); floats live in introspection modules",
    },
    Rule {
        id: "E006",
        kind: RuleKind::Static,
        title: "tracer ring-buffer reads (.events()/.dropped()/.emitted(), EventRing, TraceEvent) outside obs sit behind `if Tracer::ACTIVE`, #[cfg(feature = …)], or tests",
        paper: "repo policy (tracing must cost nothing when compiled out)",
    },
    Rule {
        id: "E007",
        kind: RuleKind::Static,
        title: "every MachineStats counter (including nested bus stats) is registered by name in Machine::metrics",
        paper: "§4–§5 (every reported quantity must reach the exporters)",
    },
    Rule {
        id: "E008",
        kind: RuleKind::Static,
        title: "every exported `pub struct *Config` has a ToJson impl in its crate",
        paper: "repo policy (run manifests must capture full configurations)",
    },
    Rule {
        id: "E009",
        kind: RuleKind::Static,
        title: "library code in trace/cache/core/machine is .unwrap()/.expect()-free outside tests",
        paper: "repo policy (typed errors at the I/O boundary, total code elsewhere)",
    },
    Rule {
        id: "E010",
        kind: RuleKind::Static,
        title: "profile sampler ring access (.record_sample()/.records()) outside obs sits behind `if Profiler::ACTIVE`, #[cfg(feature = …)], or tests",
        paper: "repo policy (interval profiling must cost nothing when compiled out)",
    },
    Rule {
        id: "E011",
        kind: RuleKind::Static,
        title: "telemetry hub beats (.publish()) outside obs sit behind `if Hub::ACTIVE`, #[cfg(feature = …)], or tests",
        paper: "repo policy (live telemetry must cost nothing when compiled out)",
    },
    Rule {
        id: "E012",
        kind: RuleKind::Static,
        title: "raw `std::sync::atomic`/`std::thread` paths appear only in the concurrency shim (`obs::model`), the checker crate, and tests; everything else routes through the shim",
        paper: "repo policy (every atomic and thread must be schedulable by the interleaving checker under --cfg execmig_model)",
    },
    Rule {
        id: "E013",
        kind: RuleKind::Static,
        title: "every atomic `Ordering::…` literal carries an `// ord:` justification comment naming its pairing",
        paper: "repo policy (memory orderings are load-bearing; unjustified orderings are unreviewable)",
    },
    Rule {
        id: "E014",
        kind: RuleKind::Static,
        title: "wall span families are closed: every `families` constant is listed in `families::ALL`, and span call sites pass constants, never raw string literals",
        paper: "repo policy (unregistered span families record nothing; the table is the /spans and flamegraph schema)",
    },
    Rule {
        id: "E015",
        kind: RuleKind::Static,
        title: "event-replay loop bodies stay hoisted: no per-event `bus.stats()` copies, and `sample_due` probes are gated by `Profiler::ACTIVE &&` (tests exempt)",
        paper: "repo policy (block-stepping moves per-event overheads to block boundaries)",
    },
    Rule {
        id: "I101",
        kind: RuleKind::Runtime,
        title: "affinity values stay within the saturating range of the configured bit width",
        paper: "§3.2 (16-bit saturating arithmetic)",
    },
    Rule {
        id: "I102",
        kind: RuleKind::Runtime,
        title: "the A_R register equals the R-window affinity sum plus the clamp residue",
        paper: "Fig 2, §3.3 (A_R += O_e − O_f bookkeeping)",
    },
    Rule {
        id: "I103",
        kind: RuleKind::Runtime,
        title: "the transition filter F stays within its saturating range",
        paper: "§3.4 (F += A_e, saturating)",
    },
    Rule {
        id: "I104",
        kind: RuleKind::Runtime,
        title: "the global counter ∆ stays within its saturating width",
        paper: "§3.2 (∆ is one bit wider than the affinities)",
    },
    Rule {
        id: "I105",
        kind: RuleKind::Runtime,
        title: "at most one L2 holds a modified copy of any line",
        paper: "§2.3 (migration-mode coherence)",
    },
    Rule {
        id: "I106",
        kind: RuleKind::Runtime,
        title: "the write-through, mirrored L1s never hold a modified line",
        paper: "§2.3 (L1 mirroring over the update bus)",
    },
    Rule {
        id: "I107",
        kind: RuleKind::Runtime,
        title: "occupancy and migration bookkeeping agree between machine and controller",
        paper: "§2.1–§2.3 (one active core; migrations counted once)",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.id == id)
}

/// Renders the catalog as aligned text for `--catalog`.
pub fn render() -> String {
    let mut out = String::new();
    for r in CATALOG {
        let kind = match r.kind {
            RuleKind::Static => "static ",
            RuleKind::Runtime => "runtime",
        };
        out.push_str(&format!(
            "{}  {}  {}\n         [{}]\n",
            r.id, kind, r.title, r.paper
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sorted_and_unique() {
        let ids: Vec<_> = CATALOG.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn lookup_works() {
        assert_eq!(rule("E004").map(|r| r.kind), Some(RuleKind::Static));
        assert_eq!(rule("I105").map(|r| r.kind), Some(RuleKind::Runtime));
        assert!(rule("E999").is_none());
    }
}
