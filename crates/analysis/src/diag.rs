//! Diagnostics and their text/JSON renderings.

/// One finding: a catalog rule violated at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Catalog rule id (`E001`…).
    pub rule: &'static str,
    /// Path relative to the linted root.
    pub path: String,
    /// 1-based line (0 when the finding is file-level).
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: &'static str,
        path: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            message: message.into(),
        }
    }
}

/// `rule path:line: message` lines, sorted for stable output.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diags
        .iter()
        .map(|d| {
            if d.line == 0 {
                format!("{} {}: {}", d.rule, d.path, d.message)
            } else {
                format!("{} {}:{}: {}", d.rule, d.path, d.line, d.message)
            }
        })
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// A JSON report: `{"count": N, "diagnostics": [{…}, …]}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    let mut out = String::from("{");
    out.push_str(&format!("\"count\":{},\"diagnostics\":[", sorted.len()));
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(d.rule),
            esc(&d.path),
            d.line,
            esc(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_render() {
        let diags = vec![
            Diagnostic::new("E004", "crates/core/src/sat.rs", 12, "call to .unwrap()"),
            Diagnostic::new("E001", "crates/cache/Cargo.toml", 0, "depends on \"x\""),
        ];
        let text = render_text(&diags);
        assert!(text.starts_with("E001 crates/cache/Cargo.toml: "));
        assert!(text.contains("E004 crates/core/src/sat.rs:12: "));
        let json = render_json(&diags);
        assert!(json.starts_with("{\"count\":2,"));
        assert!(json.contains("\"rule\":\"E001\""));
        assert!(json.contains("depends on \\\"x\\\""));
    }

    #[test]
    fn empty_report() {
        assert_eq!(render_text(&[]), "");
        assert_eq!(render_json(&[]), "{\"count\":0,\"diagnostics\":[]}");
    }
}
