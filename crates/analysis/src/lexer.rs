//! A hand-rolled Rust lexer, just deep enough for structural linting.
//!
//! The rules need to scan source for identifiers, macro bangs, and
//! float literals *without* tripping over the same spellings inside
//! string literals, doc examples, or comments. The lexer therefore
//! classifies exactly what matters and no more:
//!
//! - line and (nested) block comments are skipped, so `/// x.unwrap()`
//!   doc examples never reach a rule;
//! - string, raw-string, byte-string, and char literals are single
//!   tokens, so `"panic!"` inside a message is inert;
//! - `'a` lifetimes are distinguished from `'a'` char literals;
//! - number literals are classified int vs float with Rust's rules:
//!   `0..10` and `1.max(2)` are ints, `2.`, `2.0`, `1e3`, and `1f64`
//!   are floats.
//!
//! Token positions are byte offsets, which the region helpers below
//! use to answer "is this occurrence inside a `#[cfg(test)]` item /
//! a `#[cfg(feature = …)]` item / an `if Tracer::ACTIVE { … }` block".

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Integer literal (any base, any non-float suffix).
    Int,
    /// Float literal (fractional part, exponent, or f32/f64 suffix).
    Float,
    /// String literal of any flavour; `text` is the literal's content.
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// A single punctuation byte.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Class.
    pub kind: TokKind,
    /// Text: the identifier, the literal spelling, the string content
    /// (quotes and `r#` fences stripped), or the punctuation byte.
    pub text: String,
    /// 1-based source line of the token start.
    pub line: u32,
    /// Byte offset of the token start.
    pub pos: usize,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenizes `src`. Invalid input never panics: unrecognised bytes
/// become `Punct` tokens and unterminated literals run to the end of
/// the file — good enough for linting code that rustc also sees.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.string_prefix().is_some() => {
                    let kind = self.string_prefix().expect("just checked");
                    self.prefixed_literal(kind);
                }
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokKind::Punct, self.i, self.i + 1);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.push(Token {
            kind,
            text: String::from_utf8_lossy(&self.b[start..end]).into_owned(),
            line: self.line,
            pos: start,
        });
    }

    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    /// What literal (if any) starts at `i` with an `r`/`b`/`br` prefix?
    /// Returns the prefix length to skip, or None for a plain ident.
    fn string_prefix(&self) -> Option<Prefix> {
        let rest = &self.b[self.i..];
        if rest.starts_with(b"r#") {
            // r#"raw"# or r#ident: a raw string only if hashes lead to a quote.
            let hashes = rest[1..].iter().take_while(|&&c| c == b'#').count();
            return if rest.get(1 + hashes) == Some(&b'"') {
                Some(Prefix::Raw { skip: 1, hashes })
            } else {
                None // raw identifier, handled by ident()
            };
        }
        if rest.starts_with(b"r\"") {
            return Some(Prefix::Raw { skip: 1, hashes: 0 });
        }
        if rest.starts_with(b"b\"") {
            return Some(Prefix::Plain { skip: 1 });
        }
        if rest.starts_with(b"b'") {
            return Some(Prefix::ByteChar);
        }
        if rest.starts_with(b"br") {
            let hashes = rest[2..].iter().take_while(|&&c| c == b'#').count();
            if rest.get(2 + hashes) == Some(&b'"') {
                return Some(Prefix::Raw { skip: 2, hashes });
            }
        }
        None
    }

    fn prefixed_literal(&mut self, p: Prefix) {
        let start = self.i;
        match p {
            Prefix::Plain { skip } => {
                self.i += skip;
                self.string(start);
            }
            Prefix::ByteChar => {
                self.i += 1; // the `b`; char_or_lifetime consumes the quote
                self.char_or_lifetime();
                // Rewrite the token start to include the prefix.
                if let Some(t) = self.out.last_mut() {
                    t.pos = start;
                }
            }
            Prefix::Raw { skip, hashes } => {
                self.i += skip + hashes + 1; // prefix + hashes + opening quote
                let body_start = self.i;
                let mut body_end = self.b.len();
                while self.i < self.b.len() {
                    if self.b[self.i] == b'\n' {
                        self.line += 1;
                    }
                    if self.b[self.i] == b'"'
                        && self.b[self.i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&c| c == b'#')
                            .count()
                            == hashes
                    {
                        body_end = self.i;
                        self.i += 1 + hashes;
                        break;
                    }
                    self.i += 1;
                }
                let line = self.line;
                self.out.push(Token {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&self.b[body_start..body_end]).into_owned(),
                    line,
                    pos: start,
                });
            }
        }
    }

    /// A plain `"…"` string starting at the current quote; `start` is
    /// the token start (differs when a `b` prefix was consumed).
    fn string(&mut self, start: usize) {
        self.i += 1; // opening quote
        let body_start = self.i;
        let mut body_end = self.b.len();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    body_end = self.i;
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        let line = self.line;
        self.out.push(Token {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&self.b[body_start..body_end]).into_owned(),
            line,
            pos: start,
        });
    }

    /// `'a'` char vs `'a` lifetime vs `'\n'` escape.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        self.i += 1; // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip escape, scan to closing quote.
                self.i += 2;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.b.len());
                self.push(TokKind::Char, start, self.i);
            }
            Some(c) if is_ident_continue(c) => {
                let mut j = self.i;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(TokKind::Char, start, self.i);
                } else {
                    self.i = j;
                    self.push(TokKind::Lifetime, start, self.i);
                }
            }
            Some(_) => {
                // 'x' with x non-ident (e.g. '(' ) — char literal.
                self.i += 1;
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                self.push(TokKind::Char, start, self.i);
            }
            None => self.push(TokKind::Punct, start, self.i),
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        if self.b[self.i..].starts_with(b"r#") {
            self.i += 2; // raw identifier fence
        }
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push(TokKind::Ident, start, self.i);
    }

    fn number(&mut self) {
        let start = self.i;
        let mut float = false;
        if self.b[self.i..].starts_with(b"0x")
            || self.b[self.i..].starts_with(b"0o")
            || self.b[self.i..].starts_with(b"0b")
        {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            self.push(TokKind::Int, start, self.i);
            return;
        }
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
        // Fractional part: `1.5` and `1.` are floats; `1..` is a range
        // and `1.max(…)` a method call, both leave the int intact.
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.i += 1;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.i += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mut j = self.i + 1;
            if matches!(self.b.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if self.b.get(j).is_some_and(u8::is_ascii_digit) {
                float = true;
                self.i = j;
                while self.i < self.b.len()
                    && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                {
                    self.i += 1;
                }
            }
        }
        // Suffix: `1f64` is a float, `1u64` an int.
        if self.peek(0).is_some_and(is_ident_start) {
            let s = self.i;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            if matches!(&self.b[s..self.i], b"f32" | b"f64") {
                float = true;
            }
        }
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            start,
            self.i,
        );
    }
}

enum Prefix {
    Plain { skip: usize },
    ByteChar,
    Raw { skip: usize, hashes: usize },
}

/// A half-open byte range of source the rules treat as exempt.
pub type Region = (usize, usize);

/// Is a byte offset inside any of `regions`?
pub fn in_regions(pos: usize, regions: &[Region]) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

/// Byte regions of items gated by `#[cfg(…)]` attributes whose
/// argument mentions `test` (e.g. `#[cfg(test)] mod tests { … }`).
pub fn test_regions(toks: &[Token]) -> Vec<Region> {
    attr_regions(toks, "test")
}

/// Byte regions of items gated by `#[cfg(…)]` attributes whose
/// argument mentions `feature` (e.g. `#[cfg(feature = "trace")]`).
pub fn feature_regions(toks: &[Token]) -> Vec<Region> {
    attr_regions(toks, "feature")
}

fn attr_regions(toks: &[Token], marker: &str) -> Vec<Region> {
    let mut out = Vec::new();
    let mut k = 0;
    while k + 3 < toks.len() {
        if !(is_punct(&toks[k], '#')
            && is_punct(&toks[k + 1], '[')
            && toks[k + 2].kind == TokKind::Ident
            && toks[k + 2].text == "cfg"
            && is_punct(&toks[k + 3], '('))
        {
            k += 1;
            continue;
        }
        let attr_start = toks[k].pos;
        // Scan the cfg argument list for the marker identifier.
        let mut depth = 1usize;
        let mut j = k + 4;
        let mut found = false;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], '(') {
                depth += 1;
            } else if is_punct(&toks[j], ')') {
                depth -= 1;
            } else if toks[j].kind == TokKind::Ident && toks[j].text == marker {
                found = true;
            }
            j += 1;
        }
        // Past the closing `]`, then past any further attributes.
        while j < toks.len() && !is_punct(&toks[j], ']') {
            j += 1;
        }
        j += 1;
        while j + 1 < toks.len() && is_punct(&toks[j], '#') && is_punct(&toks[j + 1], '[') {
            let mut d = 1usize;
            j += 2;
            while j < toks.len() && d > 0 {
                if is_punct(&toks[j], '[') {
                    d += 1;
                } else if is_punct(&toks[j], ']') {
                    d -= 1;
                }
                j += 1;
            }
        }
        if found {
            if let Some(end) = item_end(toks, j) {
                out.push((attr_start, end));
            }
        }
        k = j;
    }
    out
}

/// Byte regions of the then-blocks of `if … Tracer::ACTIVE … { … }`
/// (or `Profiler::ACTIVE` / `Hub::ACTIVE` — the interval profiler and
/// the live-telemetry hub follow the same compile-time-gate
/// discipline). The else-branch (tracing compiled out) is deliberately
/// NOT exempt.
pub fn tracer_active_regions(toks: &[Token]) -> Vec<Region> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if !(toks[k].kind == TokKind::Ident
            && (toks[k].text == "Tracer" || toks[k].text == "Profiler" || toks[k].text == "Hub")
            && matches!(toks.get(k + 1), Some(t) if is_punct(t, ':'))
            && matches!(toks.get(k + 2), Some(t) if is_punct(t, ':'))
            && matches!(toks.get(k + 3), Some(t) if t.kind == TokKind::Ident && t.text == "ACTIVE"))
        {
            continue;
        }
        // Must be an `if` condition: look back a few tokens for `if`
        // (covers `if Tracer::ACTIVE`, `if x && Tracer::ACTIVE`, and
        // the `execmig_obs::Tracer::ACTIVE` path form).
        let lo = k.saturating_sub(8);
        if !toks[lo..k]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "if")
        {
            continue;
        }
        // The guarded block is the first brace after the condition.
        let mut j = k + 4;
        while j < toks.len() && !is_punct(&toks[j], '{') {
            j += 1;
        }
        if let Some(end) = brace_end(toks, j) {
            out.push((toks[j].pos, end));
        }
    }
    out
}

/// Byte regions of `for`/`while`/`loop` bodies — the zones where
/// E015 forbids per-event overheads. An `impl X for Y { … }` header
/// is not a loop: the `for` case requires an `in` keyword before the
/// body brace. The body brace is the first `{` at paren depth 0 after
/// the keyword, so closures inside a `while` condition don't
/// terminate the scan early.
pub fn loop_body_regions(toks: &[Token]) -> Vec<Region> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_loop = match t.text.as_str() {
            "loop" | "while" => true,
            "for" => {
                let mut saw_in = false;
                let mut j = k + 1;
                while j < toks.len() && !is_punct(&toks[j], '{') {
                    if toks[j].kind == TokKind::Ident && toks[j].text == "in" {
                        saw_in = true;
                    }
                    j += 1;
                }
                saw_in
            }
            _ => false,
        };
        if !is_loop {
            continue;
        }
        let mut j = k + 1;
        let mut paren = 0usize;
        while j < toks.len() {
            if is_punct(&toks[j], '(') {
                paren += 1;
            } else if is_punct(&toks[j], ')') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && is_punct(&toks[j], '{') {
                break;
            }
            j += 1;
        }
        if let Some(end) = brace_end(toks, j) {
            out.push((toks[j].pos, end));
        }
    }
    out
}

/// End offset of the item starting at token `j`: the matching `}` of
/// its first brace, or the first `;` before any brace opens.
fn item_end(toks: &[Token], mut j: usize) -> Option<usize> {
    while j < toks.len() {
        if is_punct(&toks[j], ';') {
            return Some(toks[j].pos + 1);
        }
        if is_punct(&toks[j], '{') {
            return brace_end(toks, j);
        }
        j += 1;
    }
    None
}

/// End offset (exclusive) of the brace block opening at token `j`.
fn brace_end(toks: &[Token], j: usize) -> Option<usize> {
    let mut depth = 0usize;
    for t in &toks[j..] {
        if is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(t.pos + 1);
            }
        }
    }
    None
}

/// Is token `t` the punctuation byte `c`?
pub fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == c as u8
}

/// Is the token at index `k` (if any) the punctuation byte `c`?
pub fn is_punct_at(toks: &[Token], k: usize, c: char) -> bool {
    matches!(toks.get(k), Some(t) if is_punct(t, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_everything() {
        assert!(kinds("// x.unwrap() panic!\n/* f64 /* nested */ 2.0 */").is_empty());
        assert_eq!(kinds("/// let x = v.unwrap();\nfn f() {}").len(), 6);
    }

    #[test]
    fn strings_are_single_tokens() {
        let t = kinds(r#"let s = "panic! \" f64";"#);
        assert_eq!(t[3].0, TokKind::Str);
        assert!(t.iter().filter(|(k, _)| *k == TokKind::Str).count() == 1);
        let r = kinds("let s = r#\"x.unwrap() \"quoted\" \"#;");
        assert_eq!(r[3], (TokKind::Str, "x.unwrap() \"quoted\" ".to_string()));
        let b = kinds(r#"let s = b"bytes";"#);
        assert_eq!(b[3].0, TokKind::Str);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = t.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn number_classification() {
        assert_eq!(kinds("0..10")[0].0, TokKind::Int);
        assert_eq!(kinds("1.max(2)")[0].0, TokKind::Int);
        assert_eq!(kinds("2.0")[0].0, TokKind::Float);
        assert_eq!(kinds("2.")[0].0, TokKind::Float);
        assert_eq!(kinds("1e3")[0].0, TokKind::Float);
        assert_eq!(kinds("1_000e-2")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("3u64")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff_u32")[0].0, TokKind::Int);
        assert_eq!(kinds("1.0f32")[0].0, TokKind::Float);
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("let r#match = 1;");
        assert_eq!(t[1], (TokKind::Ident, "r#match".to_string()));
    }

    #[test]
    fn test_region_covers_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() { x.unwrap(); } }\n";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        let unwrap_pos = src.find("unwrap").expect("present");
        assert!(in_regions(unwrap_pos, &regions));
        assert!(!in_regions(0, &regions));
    }

    #[test]
    fn feature_region_covers_use_decl() {
        let src = "#[cfg(feature = \"trace\")]\nuse execmig_obs::EventRing;\nfn f() {}\n";
        let toks = lex(src);
        let regions = feature_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(
            src.find("EventRing").expect("present"),
            &regions
        ));
        assert!(!in_regions(src.find("fn f").expect("present"), &regions));
    }

    #[test]
    fn tracer_active_gates_then_block_only() {
        let src = "fn f(t: &T) { if Tracer::ACTIVE { t.events(); } else { t.events(); } }";
        let toks = lex(src);
        let regions = tracer_active_regions(&toks);
        assert_eq!(regions.len(), 1);
        let first = src.find("events").expect("present");
        let second = src.rfind("events").expect("present");
        assert!(in_regions(first, &regions));
        assert!(!in_regions(second, &regions));
    }

    #[test]
    fn profiler_active_gates_like_tracer() {
        let src = "fn f(p: &P) { if Profiler::ACTIVE && p.sample_due(n) { p.records(); } }";
        let toks = lex(src);
        let regions = tracer_active_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(src.find("records").expect("present"), &regions));
        assert!(!in_regions(
            src.find("sample_due").expect("present"),
            &regions
        ));
    }

    #[test]
    fn loop_bodies_cover_loops_not_impl_headers() {
        let src = "impl A for B { fn f(&mut self) { for x in 0..4 { self.g(x); } \
                   let mut i = 0; while i < 2 { i += 1; } loop { break; } } }";
        let toks = lex(src);
        let regions = loop_body_regions(&toks);
        assert_eq!(regions.len(), 3);
        assert!(in_regions(src.find("self.g").expect("present"), &regions));
        assert!(in_regions(src.find("i += 1").expect("present"), &regions));
        assert!(in_regions(src.find("break").expect("present"), &regions));
        assert!(!in_regions(src.find("fn f").expect("present"), &regions));
        assert!(!in_regions(src.find("let mut i").expect("present"), &regions));
    }

    #[test]
    fn while_condition_closure_brace_is_not_the_body() {
        let src = "fn f(v: &[u64]) { while v.iter().any(|x| { *x > 0 }) { work(); } }";
        let toks = lex(src);
        let regions = loop_body_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(src.find("work").expect("present"), &regions));
        assert!(!in_regions(src.find("*x > 0").expect("present"), &regions));
    }

    #[test]
    fn hub_active_gates_like_tracer() {
        let src = "fn f(w: &W) { if Hub::ACTIVE { w.publish(b); } w.publish(b); }";
        let toks = lex(src);
        let regions = tracer_active_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(src.find("publish").expect("present"), &regions));
        assert!(!in_regions(
            src.rfind("publish").expect("present"),
            &regions
        ));
    }
}
