#![warn(missing_docs)]

//! `execmig-lint`: the in-tree static analysis gate.
//!
//! The workspace keeps two kinds of structural promises that `rustc`
//! cannot check: architectural ones (crate layering, feature-gate
//! discipline, dependency-freedom) and paper-fidelity ones (the Fig 2
//! datapath is panic-free fixed-point code; every counter reaches the
//! metrics registry; every config serialises into run manifests).
//! This crate enforces them from source, with a hand-rolled lexer so
//! doc examples, strings, and comments never trip a rule.
//!
//! The rules share one numbered catalog ([`catalog::CATALOG`]) with
//! the runtime `debug_assert!` invariant checkers in
//! `execmig_core::invariants` and `execmig_machine::invariants`:
//! `E…` ids are enforced here, `I…` ids in debug builds. `DESIGN.md`
//! documents both under "Invariant catalog & static analysis".
//!
//! Run it as `cargo run -p execmig-analysis` from the workspace root;
//! exit status 0 means clean, 1 means diagnostics, 2 means the
//! workspace could not be loaded.

pub mod catalog;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use diag::Diagnostic;

/// Lints the workspace rooted at `root` and returns the diagnostics.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = workspace::load(root)?;
    Ok(rules::run_all(&ws))
}
