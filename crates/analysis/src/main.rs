//! `execmig-lint` CLI.
//!
//! ```text
//! execmig-lint [--root PATH] [--json] [--catalog]
//! ```
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.

use std::path::PathBuf;
use std::process::ExitCode;

use execmig_analysis::{catalog, diag};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--catalog" => {
                print!("{}", catalog::render());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "-h" | "--help" => {
                println!(
                    "execmig-lint: static analysis gate for the execution-migration workspace\n\n\
                     usage: execmig-lint [--root PATH] [--json] [--catalog]\n\n\
                     --root PATH  workspace root (default: walk up from the current directory)\n\
                     --json       machine-readable diagnostics\n\
                     --catalog    print the numbered rule catalog and exit\n\n\
                     exit status: 0 clean, 1 diagnostics, 2 error"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("execmig-lint: no workspace root found (no Cargo.toml with [workspace] above the current directory)");
            return ExitCode::from(2);
        }
    };
    match execmig_analysis::run(&root) {
        Ok(diags) if diags.is_empty() => {
            if json {
                println!("{}", diag::render_json(&diags));
            } else {
                println!(
                    "execmig-lint: workspace clean ({} rules)",
                    catalog::CATALOG.len()
                );
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            if json {
                println!("{}", diag::render_json(&diags));
            } else {
                print!("{}", diag::render_text(&diags));
                eprintln!("execmig-lint: {} diagnostic(s)", diags.len());
            }
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("execmig-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("execmig-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first Cargo.toml that
/// declares a `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
