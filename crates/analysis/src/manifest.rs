//! A minimal Cargo.toml reader.
//!
//! Parses exactly the shapes this workspace uses: section headers,
//! `key = value` lines (dotted keys, strings, booleans, inline tables,
//! and possibly multi-line string arrays), and `#` comments. It is not
//! a general TOML parser — unknown constructs are skipped, never
//! fatal, since cargo itself validates the real syntax.

/// One `[dependencies]` entry.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependency (package) name.
    pub name: String,
    /// The `features = […]` list, if any.
    pub features: Vec<String>,
    /// 1-based line of the entry.
    pub line: u32,
}

/// The parts of a manifest the rules look at.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`, if the manifest declares a package.
    pub package_name: Option<String>,
    /// Normal `[dependencies]` (dev/build deps are not rule-relevant).
    pub dependencies: Vec<Dep>,
    /// `[features]` as (name, enabled list) pairs.
    pub features: Vec<(String, Vec<String>)>,
}

/// Parses manifest text. Never fails: unknown lines are skipped.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // `[dependencies.foo]` is a whole-section dependency entry.
            if let Some(dep_name) = section.strip_prefix("dependencies.") {
                let mut features = Vec::new();
                while let Some(&(_, next)) = lines.peek() {
                    let next = strip_comment(next).trim().to_string();
                    if next.starts_with('[') {
                        break;
                    }
                    if let Some((k, v)) = split_kv(&next) {
                        if k == "features" {
                            features = string_array(&v);
                        }
                    }
                    lines.next();
                }
                m.dependencies.push(Dep {
                    name: dep_name.to_string(),
                    features,
                    line: line_no,
                });
            }
            continue;
        }
        let mut entry = line.clone();
        // Join continuation lines until brackets balance (multi-line arrays).
        while bracket_balance(&entry) > 0 {
            match lines.next() {
                Some((_, more)) => {
                    entry.push(' ');
                    entry.push_str(strip_comment(more).trim());
                }
                None => break,
            }
        }
        let Some((key, value)) = split_kv(&entry) else {
            continue;
        };
        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = Some(unquote(&value));
            }
            "dependencies" => {
                // `foo.workspace = true` and `foo = …` both name `foo`.
                let name = key.split('.').next().unwrap_or(&key).to_string();
                let features = if let Some(fpos) = value.find("features") {
                    string_array(&value[fpos..])
                } else {
                    Vec::new()
                };
                m.dependencies.push(Dep {
                    name,
                    features,
                    line: line_no,
                });
            }
            "features" => {
                m.features.push((key, string_array(&value)));
            }
            _ => {}
        }
    }
    m
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim().trim_matches('"').to_string();
    let value = line[eq + 1..].trim().to_string();
    if key.is_empty() {
        None
    } else {
        Some((key, value))
    }
}

fn unquote(v: &str) -> String {
    v.trim().trim_matches('"').to_string()
}

/// All double-quoted strings inside the first `[…]` of `v` (or, if
/// there is no bracket, inside `v` itself).
fn string_array(v: &str) -> Vec<String> {
    let slice = match (v.find('['), v.find(']')) {
        (Some(a), Some(b)) if b > a => &v[a + 1..b],
        _ => v,
    };
    let mut out = Vec::new();
    let mut rest = slice;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 2 + len..];
    }
    out
}

fn bracket_balance(line: &str) -> i32 {
    let mut bal = 0;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_this_workspace_shape() {
        let m = parse(
            "[package]\nname = \"execmig-machine\" # the machine\n\n\
             [features]\ntrace = [\"execmig-obs/trace\"]\n\n\
             [dependencies]\nexecmig-trace.workspace = true\n\
             execmig-obs = { workspace = true, features = [\"trace\"] }\n",
        );
        assert_eq!(m.package_name.as_deref(), Some("execmig-machine"));
        assert_eq!(m.dependencies.len(), 2);
        assert_eq!(m.dependencies[0].name, "execmig-trace");
        assert!(m.dependencies[0].features.is_empty());
        assert_eq!(m.dependencies[1].features, vec!["trace"]);
        assert_eq!(m.features[0].0, "trace");
        assert_eq!(m.features[0].1, vec!["execmig-obs/trace"]);
    }

    #[test]
    fn dotted_dependency_section() {
        let m = parse("[dependencies.execmig-obs]\nworkspace = true\nfeatures = [\"trace\"]\n");
        assert_eq!(m.dependencies.len(), 1);
        assert_eq!(m.dependencies[0].name, "execmig-obs");
        assert_eq!(m.dependencies[0].features, vec!["trace"]);
    }

    #[test]
    fn workspace_dependencies_ignored() {
        let m = parse("[workspace.dependencies]\nexecmig-trace = { path = \"crates/trace\" }\n");
        assert!(m.dependencies.is_empty());
        assert!(m.package_name.is_none());
    }

    #[test]
    fn multi_line_arrays_join() {
        let m = parse("[features]\ntrace = [\n  \"execmig-machine/trace\",\n  \"execmig-experiments/trace\",\n]\n");
        assert_eq!(m.features[0].1.len(), 2);
    }
}
