//! E015: block-stepping hoisting discipline for event-replay loops.
//!
//! `Machine::run_block` exists so per-event overheads move to block
//! boundaries. Two regressions keep trying to creep back into loop
//! bodies:
//!
//! - copying the update-bus counters per event (`… = bus.stats()`),
//!   which re-materialises the whole mirror struct on every access
//!   instead of once per flush point (block end, profiler sample,
//!   miss path);
//! - probing the profiler per event without the compile-time gate
//!   (`.sample_due(…)` not behind `Profiler::ACTIVE &&`), which keeps
//!   a live branch in the lean loop that default builds are supposed
//!   to fold to `false` and hoist to the block boundary.
//!
//! Both are flagged only *inside* `for`/`while`/`loop` bodies. Tests
//! and `#[cfg(feature = …)]` items are exempt (a test may replay
//! per-event on purpose), and obs — which defines the profiler —
//! checks itself.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind};
use crate::workspace::Workspace;

/// How far back (in tokens) an `ACTIVE` gate may sit from the
/// `.sample_due(` call it guards; covers the canonical
/// `if Profiler::ACTIVE && self.profiler.sample_due(n)` spelling.
const GATE_LOOKBACK: usize = 10;

/// Runs E015 over every crate's sources.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if krate.name == "execmig-obs" {
            continue;
        }
        for file in &krate.files {
            let loops = lexer::loop_body_regions(&file.toks);
            if loops.is_empty() {
                continue;
            }
            let mut exempt = lexer::test_regions(&file.toks);
            exempt.extend(lexer::feature_regions(&file.toks));
            for (k, t) in file.toks.iter().enumerate() {
                if t.kind != TokKind::Ident
                    || !lexer::in_regions(t.pos, &loops)
                    || lexer::in_regions(t.pos, &exempt)
                {
                    continue;
                }
                let is_call = k > 0
                    && lexer::is_punct(&file.toks[k - 1], '.')
                    && lexer::is_punct_at(&file.toks, k + 1, '(');
                if !is_call {
                    continue;
                }
                if t.text == "stats"
                    && k >= 2
                    && file.toks[k - 2].kind == TokKind::Ident
                    && file.toks[k - 2].text == "bus"
                {
                    diags.push(Diagnostic::new(
                        "E015",
                        &file.rel,
                        t.line,
                        "per-event `bus.stats()` copy inside a loop body; mirror the \
                         counters once per flush point (block boundary / profiler \
                         sample / miss path) instead",
                    ));
                }
                if t.text == "sample_due" {
                    let lo = k.saturating_sub(GATE_LOOKBACK);
                    let gated = file.toks[lo..k]
                        .iter()
                        .any(|g| g.kind == TokKind::Ident && g.text == "ACTIVE");
                    if !gated {
                        diags.push(Diagnostic::new(
                            "E015",
                            &file.rel,
                            t.line,
                            "ungated `sample_due` probe inside a loop body; guard with \
                             `Profiler::ACTIVE &&` so default builds hoist the check \
                             to the block boundary",
                        ));
                    }
                }
            }
        }
    }
}
