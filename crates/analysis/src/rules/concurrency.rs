//! E012/E013: atomics discipline for the lock-free telemetry layer.
//!
//! The workspace's concurrency runs through the shim in
//! `execmig_obs::model` so that `--cfg execmig_model` can swap every
//! atomic and thread for the `execmig-model` interleaving checker's
//! instrumented versions. Two lexical rules keep that property and the
//! reviewability of the lock-free code:
//!
//! - **E012**: no raw `std::sync::atomic` or `std::thread` paths
//!   outside the shim itself, the checker crate, and test modules. An
//!   atomic reached through `std` directly is invisible to the model
//!   checker — every interleaving proof silently stops covering it.
//! - **E013**: every atomic `Ordering::…` literal carries an
//!   `// ord:` justification comment on the same line or in the
//!   comment block directly above, naming what the ordering pairs with
//!   (or why `Relaxed` suffices). Memory orderings are load-bearing
//!   and unreviewable without stated intent.
//!
//! Both rules are lexical by design: `// ord:` lives in comments the
//! lexer discards, so E013 matches tokens for the `Ordering::Variant`
//! path and then inspects the raw source lines around it.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind, Token};
use crate::workspace::Workspace;

/// The interleaving checker itself: necessarily full of raw atomics.
const CHECKER_CRATE: &str = "execmig-model";

/// The shim file: the one legitimate home of raw `std` concurrency
/// paths in the reproduction (matched by path suffix so the fixture
/// workspaces can carry their own shim).
const SHIM_SUFFIX: &str = "obs/src/model.rs";

/// The atomic orderings. `std::cmp::Ordering`'s variants (`Less`,
/// `Equal`, `Greater`) are disjoint, so this set alone distinguishes
/// the two `Ordering` types without path resolution.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs E012 and E013.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if krate.name == CHECKER_CRATE {
            continue;
        }
        for file in &krate.files {
            if file.rel.ends_with(SHIM_SUFFIX) {
                continue;
            }
            let exempt = lexer::test_regions(&file.toks);
            let lines: Vec<&str> = file.text.lines().collect();
            for (k, t) in file.toks.iter().enumerate() {
                if t.kind != TokKind::Ident || lexer::in_regions(t.pos, &exempt) {
                    continue;
                }
                if t.text == "std" {
                    if path_follows(&file.toks, k, &["thread"]) {
                        diags.push(Diagnostic::new(
                            "E012",
                            &file.rel,
                            t.line,
                            "raw `std::thread` path outside the concurrency shim; \
                             use `execmig_obs::model::thread` so the interleaving \
                             checker can schedule it"
                                .to_string(),
                        ));
                    } else if path_follows(&file.toks, k, &["sync", "atomic"]) {
                        diags.push(Diagnostic::new(
                            "E012",
                            &file.rel,
                            t.line,
                            "raw `std::sync::atomic` path outside the concurrency \
                             shim; use `execmig_obs::model::sync` so the \
                             interleaving checker can intercept it"
                                .to_string(),
                        ));
                    }
                }
                if t.text == "Ordering" {
                    let Some(variant) = path_segment(&file.toks, k) else {
                        continue;
                    };
                    if ATOMIC_ORDERINGS.contains(&variant.as_str())
                        && !has_ord_comment(&lines, t.line)
                    {
                        diags.push(Diagnostic::new(
                            "E013",
                            &file.rel,
                            t.line,
                            format!(
                                "`Ordering::{variant}` without an `// ord:` \
                                 justification; state what this ordering pairs \
                                 with on the same line or the comment above"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Does `toks[k..]` spell `<toks[k]> :: seg1 :: seg2 …` for the given
/// trailing segments?
fn path_follows(toks: &[Token], k: usize, segs: &[&str]) -> bool {
    let mut at = k;
    for seg in segs {
        if !(lexer::is_punct_at(toks, at + 1, ':')
            && lexer::is_punct_at(toks, at + 2, ':')
            && matches!(toks.get(at + 3), Some(n) if n.kind == TokKind::Ident && n.text == *seg))
        {
            return false;
        }
        at += 3;
    }
    true
}

/// The path segment following `toks[k] :: …`, if any.
fn path_segment(toks: &[Token], k: usize) -> Option<String> {
    if lexer::is_punct_at(toks, k + 1, ':') && lexer::is_punct_at(toks, k + 2, ':') {
        match toks.get(k + 3) {
            Some(n) if n.kind == TokKind::Ident => Some(n.text.clone()),
            _ => None,
        }
    } else {
        None
    }
}

/// Is there an `ord:` note on `line` (1-based) or in the contiguous
/// run of `//` comment lines directly above it?
fn has_ord_comment(lines: &[&str], line: u32) -> bool {
    let idx = (line as usize).saturating_sub(1);
    let Some(own) = lines.get(idx) else {
        return false;
    };
    if let Some(comment_at) = own.find("//") {
        if own[comment_at..].contains("ord:") {
            return true;
        }
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = lines[j].trim_start();
        if !above.starts_with("//") {
            return false;
        }
        if above.contains("ord:") {
            return true;
        }
    }
    false
}
