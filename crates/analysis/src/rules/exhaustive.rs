//! E007/E008: exhaustiveness of the observability surface.
//!
//! - **E007**: every counter field of `MachineStats` (and of any
//!   nested `*Stats` struct it embeds, prefixed with the field name,
//!   e.g. `bus.reg_bytes` → `"bus_reg_bytes"`) must appear as a string
//!   literal somewhere in the machine crate — which in practice means
//!   the `Machine::metrics` registry. Adding a counter without
//!   exporting it is the classic silent observability gap.
//! - **E008**: every `pub struct …Config` in the workspace must have a
//!   `ToJson` impl in its crate (via `impl_to_json!` or a manual
//!   `impl ToJson for …`), so run manifests can capture the full
//!   configuration that produced a result.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind, Token};
use crate::workspace::{CrateInfo, Workspace};

/// Runs E007 and E008.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    check_metrics(ws, diags);
    check_configs(ws, diags);
}

fn check_metrics(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(mach) = ws.get("execmig-machine") else {
        return;
    };
    let Some(stats) = find_struct(mach, "MachineStats") else {
        return;
    };
    let mut expected: Vec<(String, String, u32)> = Vec::new(); // (literal, file, line)
    for f in &stats.fields {
        if f.ty == "u64" {
            expected.push((f.name.clone(), stats.file.clone(), f.line));
        } else if f.ty.ends_with("Stats") {
            if let Some(nested) = find_struct(mach, &f.ty) {
                for sub in &nested.fields {
                    if sub.ty == "u64" {
                        expected.push((
                            format!("{}_{}", f.name, sub.name),
                            nested.file.clone(),
                            sub.line,
                        ));
                    }
                }
            }
        }
    }
    for (literal, file, line) in expected {
        let registered = mach.files.iter().any(|f| {
            f.toks
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text == literal)
        });
        if !registered {
            diags.push(Diagnostic::new(
                "E007",
                &file,
                line,
                format!(
                    "MachineStats counter `{literal}` is never registered by name \
                     in the metrics registry"
                ),
            ));
        }
    }
}

fn check_configs(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if krate.name == "execmig-analysis" || krate.name == "execmig-model" {
            // The linter and the interleaving checker sit outside the
            // reproduction: neither produces run manifests.
            continue;
        }
        for file in &krate.files {
            let exempt = lexer::test_regions(&file.toks);
            for k in 0..file.toks.len().saturating_sub(2) {
                let [a, b, c] = [&file.toks[k], &file.toks[k + 1], &file.toks[k + 2]];
                if !(a.kind == TokKind::Ident
                    && a.text == "pub"
                    && b.kind == TokKind::Ident
                    && b.text == "struct"
                    && c.kind == TokKind::Ident
                    && c.text.ends_with("Config"))
                    || lexer::in_regions(a.pos, &exempt)
                {
                    continue;
                }
                if !has_to_json(krate, &c.text) {
                    diags.push(Diagnostic::new(
                        "E008",
                        &file.rel,
                        c.line,
                        format!(
                            "`pub struct {}` has no ToJson impl in `{}`; add \
                             `impl_to_json!({} {{ … }})` so run manifests can record it",
                            c.text, krate.name, c.text
                        ),
                    ));
                }
            }
        }
    }
}

fn has_to_json(krate: &CrateInfo, name: &str) -> bool {
    krate.files.iter().any(|f| {
        f.toks.windows(4).any(|w| {
            // impl_to_json!(Name …
            (w[0].kind == TokKind::Ident
                && w[0].text == "impl_to_json"
                && lexer::is_punct(&w[1], '!')
                && lexer::is_punct(&w[2], '(')
                && w[3].kind == TokKind::Ident
                && w[3].text == name)
                // impl ToJson for Name
                || (w[0].kind == TokKind::Ident
                    && w[0].text == "impl"
                    && w[1].kind == TokKind::Ident
                    && w[1].text == "ToJson"
                    && w[2].kind == TokKind::Ident
                    && w[2].text == "for"
                    && w[3].kind == TokKind::Ident
                    && w[3].text == name)
        })
    })
}

struct StructDef {
    file: String,
    fields: Vec<Field>,
}

struct Field {
    name: String,
    ty: String,
    line: u32,
}

/// Finds `struct <name> { … }` in the crate and extracts its `pub`
/// fields as (name, first type identifier) pairs.
fn find_struct(krate: &CrateInfo, name: &str) -> Option<StructDef> {
    for file in &krate.files {
        let toks = &file.toks;
        for k in 0..toks.len().saturating_sub(2) {
            if !(toks[k].kind == TokKind::Ident
                && toks[k].text == "struct"
                && toks[k + 1].kind == TokKind::Ident
                && toks[k + 1].text == name
                && lexer::is_punct(&toks[k + 2], '{'))
            {
                continue;
            }
            return Some(StructDef {
                file: file.rel.clone(),
                fields: fields_of(toks, k + 2),
            });
        }
    }
    None
}

fn fields_of(toks: &[Token], open: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        if lexer::is_punct(&toks[k], '{') {
            depth += 1;
        } else if lexer::is_punct(&toks[k], '}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && toks[k].kind == TokKind::Ident
            && toks[k].text == "pub"
            && matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Ident)
            && matches!(toks.get(k + 2), Some(c) if lexer::is_punct(c, ':'))
        {
            let ty = toks[k + 3..]
                .iter()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            fields.push(Field {
                name: toks[k + 1].text.clone(),
                ty,
                line: toks[k + 1].line,
            });
            k += 2;
        }
        k += 1;
    }
    fields
}
