//! E003/E006/E010: feature-gate discipline for the observability layer.
//!
//! Tracing must cost nothing unless a *top-level* build opts in with
//! `--features trace`. Two things can silently break that:
//!
//! - a manifest hard-wiring the feature on a dependency
//!   (`features = ["trace"]`), which turns tracing on for every build
//!   of everything above it (E003 — the feature may only travel via
//!   `[features]` forwarding like `trace = ["execmig-obs/trace"]`);
//! - source code reading the tracer's ring buffer unconditionally —
//!   the buffer APIs (`.events()`, `.dropped()`, `.emitted()`,
//!   `EventRing`, `TraceEvent`) exist in both builds, but calling them
//!   outside `if Tracer::ACTIVE { … }`, a `#[cfg(feature = …)]` item,
//!   or a test means the call is *meant* to do work that a default
//!   build silently skips (E006). The zero-cost `Tracer::emit` API
//!   needs no gate — that is its point.
//!
//! The interval profiler follows the same discipline (E010): its ring
//! accessors (`.record_sample()`, `.records()`) outside obs must sit
//! behind `if Profiler::ACTIVE { … }`, a `#[cfg(feature = …)]` item, or
//! a test. The cheap `sample_due` guard needs no gate — like
//! `Tracer::emit`, it is the gate.
//!
//! So does the live-telemetry hub (E011): `.publish()` beats outside
//! obs must sit behind `if Hub::ACTIVE { … }`, a `#[cfg(feature = …)]`
//! item, or a test. The no-op `HubWorker::publish` is inlined to
//! nothing without `trace`, but an ungated call still constructs its
//! `Beat` argument — and signals intent the default build silently
//! skips.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind};
use crate::workspace::Workspace;

const RING_METHODS: &[&str] = &["events", "dropped", "emitted"];
const RING_TYPES: &[&str] = &["EventRing", "TraceEvent"];
const PROFILER_METHODS: &[&str] = &["record_sample", "records"];
const HUB_METHODS: &[&str] = &["publish"];

/// Runs E003 (manifests), E006, E010, and E011 (sources).
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if krate.name == "execmig-obs" {
            continue;
        }
        for dep in &krate.manifest.dependencies {
            if dep.name.starts_with("execmig") && dep.features.iter().any(|f| f == "trace") {
                diags.push(Diagnostic::new(
                    "E003",
                    &krate.manifest_rel,
                    dep.line,
                    format!(
                        "`{}` hard-wires the `trace` feature of `{}`; forward it \
                         through [features] instead (`trace = [\"{}/trace\"]`)",
                        krate.name, dep.name, dep.name
                    ),
                ));
            }
        }
        for file in &krate.files {
            let mut exempt = lexer::test_regions(&file.toks);
            exempt.extend(lexer::feature_regions(&file.toks));
            exempt.extend(lexer::tracer_active_regions(&file.toks));
            for (k, t) in file.toks.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let banned = if RING_TYPES.contains(&t.text.as_str()) {
                    true
                } else {
                    RING_METHODS.contains(&t.text.as_str())
                        && k > 0
                        && lexer::is_punct(&file.toks[k - 1], '.')
                        && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '('))
                };
                if banned && !lexer::in_regions(t.pos, &exempt) {
                    diags.push(Diagnostic::new(
                        "E006",
                        &file.rel,
                        t.line,
                        format!(
                            "tracer buffer access `{}` outside `if Tracer::ACTIVE`, \
                             `#[cfg(feature = …)]`, or tests",
                            t.text
                        ),
                    ));
                }
                let profiler_banned = PROFILER_METHODS.contains(&t.text.as_str())
                    && k > 0
                    && lexer::is_punct(&file.toks[k - 1], '.')
                    && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '('));
                if profiler_banned && !lexer::in_regions(t.pos, &exempt) {
                    diags.push(Diagnostic::new(
                        "E010",
                        &file.rel,
                        t.line,
                        format!(
                            "profile sampler access `{}` outside `if Profiler::ACTIVE`, \
                             `#[cfg(feature = …)]`, or tests",
                            t.text
                        ),
                    ));
                }
                let hub_banned = HUB_METHODS.contains(&t.text.as_str())
                    && k > 0
                    && lexer::is_punct(&file.toks[k - 1], '.')
                    && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '('));
                if hub_banned && !lexer::in_regions(t.pos, &exempt) {
                    diags.push(Diagnostic::new(
                        "E011",
                        &file.rel,
                        t.line,
                        format!(
                            "telemetry hub publish `{}` outside `if Hub::ACTIVE`, \
                             `#[cfg(feature = …)]`, or tests",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}
