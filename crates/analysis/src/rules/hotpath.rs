//! E004/E005: hot-path hygiene.
//!
//! The files below model the hardware datapath of Fig 2 and the cache
//! lookup paths — code that runs once per memory reference across
//! hundreds of millions of references. Two properties are enforced:
//!
//! - **E004, panic-freedom**: no `.unwrap()`, `.expect()`, `panic!`,
//!   `todo!`, or `unimplemented!` outside tests. Hardware has no
//!   failure path; neither should its model. (`assert!`/`debug_assert!`
//!   are allowed: the runtime invariant checkers I101–I107 use them and
//!   compile out of release builds.)
//! - **E005, fixed-point only**: no `f32`/`f64` identifiers and no
//!   float literals outside tests. The paper's datapath is 16-bit
//!   saturating integer arithmetic (§3.2); float-returning metrics
//!   belong in introspection modules (`core/src/introspect.rs`).

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind};
use crate::workspace::Workspace;

/// (crate, file basename) pairs making up the hot path.
const HOT: &[(&str, &str)] = &[
    ("execmig-core", "sat.rs"),
    ("execmig-core", "window.rs"),
    ("execmig-core", "filter.rs"),
    ("execmig-core", "table.rs"),
    ("execmig-core", "splitter2.rs"),
    ("execmig-core", "splitter4.rs"),
    ("execmig-core", "mechanism.rs"),
    ("execmig-cache", "cache.rs"),
    ("execmig-cache", "fully_assoc.rs"),
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Runs E004 and E005 over the hot files.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        for file in &krate.files {
            if !HOT.contains(&(krate.name.as_str(), file.name.as_str())) {
                continue;
            }
            let exempt = lexer::test_regions(&file.toks);
            for (k, t) in file.toks.iter().enumerate() {
                if lexer::in_regions(t.pos, &exempt) {
                    continue;
                }
                match t.kind {
                    TokKind::Float => diags.push(Diagnostic::new(
                        "E005",
                        &file.rel,
                        t.line,
                        format!(
                            "float literal `{}` on the hot path; fixed-point only (§3.2)",
                            t.text
                        ),
                    )),
                    TokKind::Ident if t.text == "f32" || t.text == "f64" => {
                        diags.push(Diagnostic::new(
                            "E005",
                            &file.rel,
                            t.line,
                            format!(
                                "`{}` on the hot path; move float metrics to an \
                                 introspection module (§3.2: fixed-point only)",
                                t.text
                            ),
                        ));
                    }
                    TokKind::Ident
                        if PANIC_MACROS.contains(&t.text.as_str())
                            && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '!')) =>
                    {
                        diags.push(Diagnostic::new(
                            "E004",
                            &file.rel,
                            t.line,
                            format!(
                                "`{}!` on the hot path; hardware has no failure path",
                                t.text
                            ),
                        ));
                    }
                    TokKind::Ident
                        if PANIC_METHODS.contains(&t.text.as_str())
                            && k > 0
                            && lexer::is_punct(&file.toks[k - 1], '.')
                            && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '(')) =>
                    {
                        diags.push(Diagnostic::new(
                            "E004",
                            &file.rel,
                            t.line,
                            format!(
                                "`.{}()` on the hot path; hardware has no failure path",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}
