//! E009: library panic hygiene.
//!
//! The four library crates under the experiment layer (`trace`,
//! `cache`, `core`, `machine`) must not `.unwrap()` or `.expect()`
//! outside tests: I/O boundaries return typed errors
//! (`TraceIoError`), constructors validate with messages
//! (`assert!`/explicit `panic!` carry intent and are E004's concern on
//! hot files), and everything else is total. Test modules are exempt —
//! an unwrap in a test *is* the assert.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind};
use crate::workspace::Workspace;

const SCOPE: &[&str] = &[
    "execmig-trace",
    "execmig-cache",
    "execmig-core",
    "execmig-machine",
];

/// Runs E009.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if !SCOPE.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            let exempt = lexer::test_regions(&file.toks);
            for (k, t) in file.toks.iter().enumerate() {
                if t.kind == TokKind::Ident
                    && (t.text == "unwrap" || t.text == "expect")
                    && k > 0
                    && lexer::is_punct(&file.toks[k - 1], '.')
                    && matches!(file.toks.get(k + 1), Some(n) if lexer::is_punct(n, '('))
                    && !lexer::in_regions(t.pos, &exempt)
                {
                    diags.push(Diagnostic::new(
                        "E009",
                        &file.rel,
                        t.line,
                        format!(
                            "`.{}()` in library code; return a typed error or \
                             validate with a message instead",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}
