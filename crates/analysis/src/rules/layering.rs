//! E001/E002: the crate-layering DAG.
//!
//! The workspace layers as `trace → cache → core → machine →
//! experiments`, with `obs` a side layer any crate may use (its
//! *trace* feature is a separate concern, rule E003), `check` — the
//! differential reference model — a leaf beside `experiments` (it may
//! see everything up to `machine`, and `experiments` may drive it),
//! and the root facade / bench harness on top. `model` — the
//! interleaving checker — is a leaf below `obs`, which wraps it in the
//! concurrency shim; nothing else may see it (tests reach it as a dev
//! dependency, which sits outside the DAG). `analysis` sits outside the DAG and
//! depends on nothing — it lints the policy, so it must not share
//! code with what it lints. Third-party dependencies are banned
//! outright: the reproduction is dependency-free by policy.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

/// crate name → the exact set of workspace crates it may depend on.
const LAYERS: &[(&str, &[&str])] = &[
    ("execmig-model", &[]),
    ("execmig-obs", &["execmig-model"]),
    ("execmig-trace", &[]),
    ("execmig-cache", &["execmig-trace", "execmig-obs"]),
    (
        "execmig-core",
        &["execmig-trace", "execmig-cache", "execmig-obs"],
    ),
    (
        "execmig-machine",
        &[
            "execmig-trace",
            "execmig-cache",
            "execmig-core",
            "execmig-obs",
        ],
    ),
    (
        "execmig-check",
        &[
            "execmig-trace",
            "execmig-cache",
            "execmig-core",
            "execmig-machine",
            "execmig-obs",
        ],
    ),
    (
        "execmig-experiments",
        &[
            "execmig-trace",
            "execmig-cache",
            "execmig-core",
            "execmig-machine",
            "execmig-check",
            "execmig-obs",
        ],
    ),
    (
        "execmig-bench",
        &[
            "execmig-trace",
            "execmig-cache",
            "execmig-core",
            "execmig-machine",
            "execmig-check",
            "execmig-experiments",
            "execmig-obs",
        ],
    ),
    (
        "execution-migration",
        &[
            "execmig-trace",
            "execmig-cache",
            "execmig-core",
            "execmig-machine",
            "execmig-check",
            "execmig-experiments",
            "execmig-obs",
        ],
    ),
    ("execmig-analysis", &[]),
];

fn allowed(name: &str) -> Option<&'static [&'static str]> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, a)| *a)
}

/// Runs E001 (manifests) and E002 (sources).
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        let Some(allow) = allowed(&krate.name) else {
            diags.push(Diagnostic::new(
                "E001",
                &krate.manifest_rel,
                0,
                format!(
                    "crate `{}` is not in the layering map; add it to \
                     rules/layering.rs with an explicit allowed-dependency set",
                    krate.name
                ),
            ));
            continue;
        };
        // E001: every [dependencies] entry must be an allowed workspace crate.
        for dep in &krate.manifest.dependencies {
            if allow.contains(&dep.name.as_str()) {
                continue;
            }
            let why = if dep.name.starts_with("execmig") || dep.name == "execution-migration" {
                format!(
                    "`{}` may not depend on `{}`: the layering DAG is \
                     trace → cache → core → machine → experiments (obs is a side layer)",
                    krate.name, dep.name
                )
            } else {
                format!(
                    "`{}` depends on third-party crate `{}`; the workspace is \
                     dependency-free by policy",
                    krate.name, dep.name
                )
            };
            diags.push(Diagnostic::new("E001", &krate.manifest_rel, dep.line, why));
        }
        // E002: sources must not name a crate above their layer.
        for file in &krate.files {
            for t in &file.toks {
                if t.kind != TokKind::Ident || !t.text.starts_with("execmig_") {
                    continue;
                }
                let dep = t.text.replace('_', "-");
                if dep == krate.name || allow.contains(&dep.as_str()) {
                    continue;
                }
                // Only identifiers naming a real workspace crate are
                // layer references; `execmig_`-prefixed cfg flags
                // (e.g. the mutation-gate cfgs) are not.
                if allowed(&dep).is_none() {
                    continue;
                }
                diags.push(Diagnostic::new(
                    "E002",
                    &file.rel,
                    t.line,
                    format!(
                        "`{}` names `{}`, which is not in its allowed layer set",
                        krate.name, t.text
                    ),
                ));
            }
        }
    }
}
