//! The static rules (E001–E015). Each module covers one concern and
//! pushes [`Diagnostic`]s tagged with catalog ids.

pub mod blockstep;
pub mod concurrency;
pub mod exhaustive;
pub mod featuregate;
pub mod hotpath;
pub mod hygiene;
pub mod layering;
pub mod spanfamily;

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// Runs every static rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    layering::check(ws, &mut diags);
    featuregate::check(ws, &mut diags);
    hotpath::check(ws, &mut diags);
    exhaustive::check(ws, &mut diags);
    hygiene::check(ws, &mut diags);
    concurrency::check(ws, &mut diags);
    spanfamily::check(ws, &mut diags);
    blockstep::check(ws, &mut diags);
    diags
}
