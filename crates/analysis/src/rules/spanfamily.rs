//! E014: the wall-clock span family table is closed.
//!
//! The flight recorder ([`execmig_obs::wall`]) keys every histogram,
//! collapsed stack and `/spans` row by a *registered* family name: the
//! constants in its `families` module, enumerated by `families::ALL`.
//! An unregistered family silently records nothing (`enter` returns
//! span id 0), so two drifts must be caught statically:
//!
//! - a family constant declared in the `families` module but missing
//!   from `ALL` — it lints as registered yet never aggregates;
//! - a call site passing a raw string literal to `wall::span`,
//!   `wall::span_with_parent`, `.enter(…)` or `.enter_with_parent(…)`
//!   instead of a `families::…` constant — the literal bypasses the
//!   table entirely (and typos become invisible dead spans).
//!
//! Test modules and doc examples are exempt, as everywhere else: the
//! wall's own unit tests deliberately probe the unregistered-family
//! path with literals.

use crate::diag::Diagnostic;
use crate::lexer::{self, TokKind, Token};
use crate::workspace::Workspace;

/// Runs E014.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        for file in &krate.files {
            let exempt = lexer::test_regions(&file.toks);
            check_table_closed(&file.rel, &file.toks, &exempt, diags);
            check_literal_call_sites(&file.rel, &file.toks, &exempt, diags);
        }
    }
}

/// Every `&str` constant inside a `mod families { … }` must be listed
/// in that module's `ALL` array.
fn check_table_closed(
    rel: &str,
    toks: &[Token],
    exempt: &[lexer::Region],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(open) = toks.windows(3).position(|w| {
        w[0].kind == TokKind::Ident
            && w[0].text == "mod"
            && w[1].kind == TokKind::Ident
            && w[1].text == "families"
            && lexer::is_punct(&w[2], '{')
    }) else {
        return;
    };
    let body = module_body(toks, open + 2);
    let mut names: Vec<&Token> = Vec::new();
    let mut all: Vec<String> = Vec::new();
    for k in 0..body.len().saturating_sub(3) {
        // const NAME : … = …;
        if !(body[k].kind == TokKind::Ident
            && body[k].text == "const"
            && body[k + 1].kind == TokKind::Ident
            && lexer::is_punct(&body[k + 2], ':'))
        {
            continue;
        }
        let name = &body[k + 1];
        if name.text == "ALL" {
            // The registry itself: collect the identifiers of its
            // bracketed initialiser.
            let Some(bracket) = body[k..].iter().position(|t| lexer::is_punct(t, '[')) else {
                continue;
            };
            // Skip the `& [ & str ]` of the type: the initialiser list
            // is the *last* bracket group, after the `=`.
            let Some(eq) = body[k..].iter().position(|t| lexer::is_punct(t, '=')) else {
                continue;
            };
            let start = body[k..]
                .iter()
                .enumerate()
                .position(|(i, t)| i > eq && lexer::is_punct(t, '['))
                .unwrap_or(bracket);
            for t in &body[k + start..] {
                if lexer::is_punct(t, ']') {
                    break;
                }
                if t.kind == TokKind::Ident {
                    all.push(t.text.clone());
                }
            }
        } else if body[k + 3..]
            .iter()
            .take_while(|t| !lexer::is_punct(t, '='))
            .any(|t| t.kind == TokKind::Ident && t.text == "str")
        {
            names.push(name);
        }
    }
    for name in names {
        if !all.contains(&name.text) && !lexer::in_regions(name.pos, exempt) {
            diags.push(Diagnostic::new(
                "E014",
                rel,
                name.line,
                format!(
                    "span family constant `{}` is not listed in `families::ALL`; \
                     an unlisted family never aggregates (histograms, /spans and \
                     flamegraphs all key off the ALL table)",
                    name.text
                ),
            ));
        }
    }
}

/// `wall::span("…")` / `.enter("…")` with a raw string literal.
fn check_literal_call_sites(
    rel: &str,
    toks: &[Token],
    exempt: &[lexer::Region],
    diags: &mut Vec<Diagnostic>,
) {
    for k in 0..toks.len().saturating_sub(2) {
        let [f, paren, arg] = [&toks[k], &toks[k + 1], &toks[k + 2]];
        if !(f.kind == TokKind::Ident
            && lexer::is_punct(paren, '(')
            && arg.kind == TokKind::Str
            && !lexer::in_regions(f.pos, exempt))
        {
            continue;
        }
        let qualified = |name: &str| -> bool {
            // wall :: span — `::` lexes as two single-colon puncts.
            f.text == name
                && k >= 3
                && toks[k - 3].kind == TokKind::Ident
                && toks[k - 3].text == "wall"
                && lexer::is_punct(&toks[k - 2], ':')
                && lexer::is_punct(&toks[k - 1], ':')
        };
        let method =
            |name: &str| -> bool { f.text == name && k >= 1 && lexer::is_punct(&toks[k - 1], '.') };
        if qualified("span")
            || qualified("span_with_parent")
            || method("enter")
            || method("enter_with_parent")
        {
            diags.push(Diagnostic::new(
                "E014",
                rel,
                arg.line,
                format!(
                    "wall span family is the raw string literal \"{}\"; pass a \
                     `wall::families::…` constant so the family table stays \
                     closed (a literal typo becomes an invisible dead span)",
                    arg.text
                ),
            ));
        }
    }
}

/// The tokens of a brace-delimited module body starting at its `{`.
fn module_body(toks: &[Token], open: usize) -> &[Token] {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if lexer::is_punct(t, '{') {
            depth += 1;
        } else if lexer::is_punct(t, '}') {
            depth -= 1;
            if depth == 0 {
                return &toks[open + 1..k];
            }
        }
    }
    &toks[open + 1..]
}
