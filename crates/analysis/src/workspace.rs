//! Loads a workspace into memory: manifests parsed, sources lexed.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};
use crate::manifest::{self, Manifest};

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the linted root, with `/` separators.
    pub rel: String,
    /// File name (`sat.rs`).
    pub name: String,
    /// Raw text.
    pub text: String,
    /// Token stream.
    pub toks: Vec<Token>,
}

/// One crate: manifest plus every `src/**/*.rs` file.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from the manifest.
    pub name: String,
    /// Manifest path relative to the root.
    pub manifest_rel: String,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Lexed sources.
    pub files: Vec<SourceFile>,
}

/// The whole workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root.
    pub root: PathBuf,
    /// Member crates (including a root `[package]`, if any), sorted by
    /// manifest path for deterministic diagnostics.
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// The crate named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Loads the workspace rooted at `root`: the root manifest's package
/// (if any) plus every `crates/*/Cargo.toml` package.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", root.display()))?;
    let mut crates = Vec::new();
    let mut manifest_dirs = vec![root.clone()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
        for entry in entries.flatten() {
            if entry.path().join("Cargo.toml").is_file() {
                manifest_dirs.push(entry.path());
            }
        }
    }
    for dir in manifest_dirs {
        let manifest_path = dir.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let manifest = manifest::parse(&text);
        let Some(name) = manifest.package_name.clone() else {
            continue; // a pure [workspace] manifest
        };
        let mut files = Vec::new();
        let src = dir.join("src");
        if src.is_dir() {
            collect_sources(&root, &src, &mut files)?;
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        crates.push(CrateInfo {
            name,
            manifest_rel: rel_to(&root, &manifest_path),
            manifest,
            files,
        });
    }
    if crates.is_empty() {
        return Err(format!("no crates found under {}", root.display()));
    }
    crates.sort_by(|a, b| a.manifest_rel.cmp(&b.manifest_rel));
    Ok(Workspace { root, crates })
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let toks = lexer::lex(&text);
            out.push(SourceFile {
                rel: rel_to(root, &path),
                name: path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                text,
                toks,
            });
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
