//! Hot-path fixture file: every construct below must be flagged.

pub fn miss_rate(misses: u64, total: u64) -> f64 {
    // E005 ×3: f64 in the signature and both casts
    misses as f64 / total as f64
}

pub fn lookup(v: &[u64]) -> u64 {
    let head = v.first().unwrap(); // E004 (and E009)
    if *head == 0 {
        panic!("empty fixture cache"); // E004
    }
    *head * 2
}
