//! Fixture crate mirroring `execmig-cache`, seeded with violations.

use execmig_machine::Machine; // E002: names a crate above its layer
use execmig_obs::Tracer; // fine: obs is a side layer

pub mod cache;
pub mod spin;

/// Never serialised: E008.
pub struct ProbeConfig {
    pub depth: u64,
}

pub fn drain(t: &Tracer) -> usize {
    t.events().len() // E006: ungated ring-buffer read
}

pub fn sample(p: &mut execmig_obs::Profiler, c: &execmig_obs::ProfileCumulative) -> usize {
    p.record_sample(c); // E010: ungated sampler write
    p.records().len() // E010: ungated sampler read
}

pub fn beat(w: &execmig_obs::HubWorker, b: execmig_obs::Beat) {
    w.publish(b); // E011: ungated hub publish
}

pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap() // E009: unwrap in library code
}

pub fn attach(_m: &Machine) {}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_unwrap() {
        // Unwraps in test modules must NOT be flagged.
        assert_eq!(Some(5u64).unwrap(), 5);
    }
}
