//! Fixture: raw concurrency paths and unjustified orderings.

use std::sync::atomic::{AtomicU64, Ordering}; // E012: raw atomic path
use std::thread; // E012: raw thread path

pub static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::Relaxed) // E013: no justification
}

pub fn park() {
    thread::yield_now();
    // a stray comment that is not a justification
    COUNT.store(0, Ordering::SeqCst); // E013: comment above lacks the tag
}

pub fn gated() -> u64 {
    // ord: Acquire pairs with the Release store in publish(); clean.
    COUNT.load(Ordering::Acquire)
}

pub fn inline_note() {
    COUNT.store(1, Ordering::Release); // ord: publishes the flag; clean
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn exempt_in_tests() {
        // Raw atomics and bare orderings in test modules are exempt
        // from E012/E013.
        let a = AtomicU64::new(1);
        thread::yield_now();
        assert_eq!(a.load(Ordering::SeqCst), 1);
    }
}
