//! E014 fixture: a span-family table with one orphan constant, plus
//! one call site that bypasses the table with a raw string literal.
//! The test module's literal probe must stay exempt.

pub mod families {
    pub const REGISTERED: &str = "fixture/registered";
    // Violation: declared but missing from ALL — it would lint as a
    // registered family yet never aggregate.
    pub const ORPHAN: &str = "fixture/orphan";
    pub const ALL: &[&str] = &[REGISTERED];
}

pub mod wall {
    pub fn span(_family: &str) -> u64 {
        0
    }
}

pub fn well_behaved() -> u64 {
    wall::span(families::REGISTERED)
}

pub fn leaky() -> u64 {
    // Violation: a raw literal family bypasses the ALL table.
    wall::span("fixture/raw-literal")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_literals_are_exempt() {
        assert_eq!(super::wall::span("fixture/test-probe"), 0);
    }
}
