//! Clean fixture crate: must produce zero diagnostics.

pub mod sat;

/// Serialisable via a manual impl — satisfies E008.
pub struct TunableConfig {
    pub bits: u32,
}

impl ToJson for TunableConfig {
    fn to_json(&self) -> Json {
        Json::UInt(u64::from(self.bits))
    }
}
