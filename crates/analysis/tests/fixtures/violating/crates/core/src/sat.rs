//! Hot fixture file, clean outside tests: the test module and doc
//! examples below must all be exempt.

pub fn clamp(x: i64, lo: i64, hi: i64) -> i64 {
    x.max(lo).min(hi)
}

/// Doc examples never count:
///
/// ```
/// let v = vec![1.5f64];
/// assert_eq!(v.first().unwrap(), &1.5);
/// ```
pub fn range(bits: u32) -> i64 {
    (1_i64 << bits) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_and_unwraps_are_fine_in_tests() {
        let f = 0.5_f64;
        assert!(f < 1.0);
        assert_eq!(Some(clamp(9, 0, 3)).unwrap(), 3);
    }
}
