//! E015 fixture: per-event overheads inside event-replay loops.

use execmig_obs::Profiler;

use crate::stats::MachineStats;

pub struct Replayer {
    bus: UpdateBus,
    profiler: Profiler,
    stats: MachineStats,
    samples: u64,
}

impl Replayer {
    /// Per-event overheads left in the loop body: both flagged.
    pub fn replay(&mut self, events: &[u64]) {
        for &at in events {
            self.stats.bus = self.bus.stats(); // E015: per-event mirror copy
            if self.profiler.sample_due(at) {
                // E015: ungated probe
                self.samples += 1;
            }
        }
    }

    /// The hoisted twin: gate inside the loop, mirror at the flush
    /// point after it. Must stay clean.
    pub fn replay_hoisted(&mut self, events: &[u64]) {
        for &at in events {
            if Profiler::ACTIVE && self.profiler.sample_due(at) {
                self.samples += 1;
            }
        }
        self.stats.bus = self.bus.stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_loops_may_probe_per_event() {
        let p = Profiler::new(0);
        for at in 0..4 {
            assert!(!p.sample_due(at));
        }
    }
}
