//! Fixture machine crate: one unregistered stats counter.

pub mod machine;
pub mod stats;
