use execmig_obs::Tracer;

use crate::stats::MachineStats;

pub fn metrics(s: &MachineStats) -> Vec<(&'static str, u64)> {
    vec![("instructions", s.instructions)]
}

pub fn gated_drain(t: &Tracer) -> usize {
    if Tracer::ACTIVE {
        t.events().len() // gated: must NOT be flagged
    } else {
        0
    }
}
