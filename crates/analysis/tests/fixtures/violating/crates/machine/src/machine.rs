use execmig_obs::{Beat, Hub, HubWorker, Profiler, Tracer};

use crate::stats::MachineStats;

pub fn metrics(s: &MachineStats) -> Vec<(&'static str, u64)> {
    vec![("instructions", s.instructions)]
}

pub fn gated_drain(t: &Tracer) -> usize {
    if Tracer::ACTIVE {
        t.events().len() // gated: must NOT be flagged
    } else {
        0
    }
}

pub fn gated_sample(p: &Profiler) -> usize {
    if Profiler::ACTIVE {
        p.records().len() // gated: must NOT be flagged
    } else {
        0
    }
}

pub fn gated_beat(w: &HubWorker, b: Beat) {
    if Hub::ACTIVE {
        w.publish(b); // gated: must NOT be flagged
    }
}
