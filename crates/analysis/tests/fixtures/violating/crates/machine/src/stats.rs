/// Counters; `lost_counter` is never registered by name (E007).
pub struct MachineStats {
    pub instructions: u64,
    pub lost_counter: u64,
}
