//! Golden tests: run the linter over the seeded fixture workspace and
//! pin every expected diagnostic (and every expected exemption).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use execmig_analysis::{diag, Diagnostic};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violating")
}

fn fixture_diags() -> Vec<Diagnostic> {
    execmig_analysis::run(&fixture_root()).expect("fixture workspace loads")
}

fn by_rule(diags: &[Diagnostic], rule: &str) -> Vec<Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).cloned().collect()
}

#[test]
fn golden_rule_counts() {
    let diags = fixture_diags();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &diags {
        *counts.entry(d.rule).or_default() += 1;
    }
    let expected: BTreeMap<&str, usize> = [
        ("E001", 2),
        ("E002", 1),
        ("E003", 1),
        ("E004", 2),
        ("E005", 3),
        ("E006", 1),
        ("E007", 1),
        ("E008", 1),
        ("E009", 2),
        ("E010", 2),
        ("E011", 1),
        ("E012", 2),
        ("E013", 2),
        ("E014", 2),
        ("E015", 2),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        counts,
        expected,
        "full diagnostics:\n{}",
        diag::render_text(&diags)
    );
}

#[test]
fn layering_flags_manifest_and_source() {
    let diags = fixture_diags();
    let e001 = by_rule(&diags, "E001");
    assert!(e001.iter().all(|d| d.path == "crates/cache/Cargo.toml"));
    assert!(e001.iter().any(|d| d.message.contains("execmig-machine")));
    assert!(e001
        .iter()
        .any(|d| d.message.contains("serde") && d.message.contains("dependency-free")));
    let e002 = by_rule(&diags, "E002");
    assert_eq!(e002[0].path, "crates/cache/src/lib.rs");
    assert!(e002[0].message.contains("execmig_machine"));
}

#[test]
fn feature_gate_flags_hardwired_trace_but_not_forwarding() {
    let diags = fixture_diags();
    let e003 = by_rule(&diags, "E003");
    assert_eq!(e003.len(), 1);
    assert_eq!(e003[0].path, "crates/cache/Cargo.toml");
    // The machine fixture forwards trace through [features]: clean.
    assert!(!diags.iter().any(|d| d.path == "crates/machine/Cargo.toml"));
}

#[test]
fn hot_path_violations_name_the_constructs() {
    let diags = fixture_diags();
    let e004 = by_rule(&diags, "E004");
    assert!(e004.iter().all(|d| d.path == "crates/cache/src/cache.rs"));
    assert!(e004.iter().any(|d| d.message.contains(".unwrap()")));
    assert!(e004.iter().any(|d| d.message.contains("`panic!`")));
    let e005 = by_rule(&diags, "E005");
    assert!(e005.iter().all(|d| d.path == "crates/cache/src/cache.rs"));
    assert!(e005.iter().all(|d| d.line > 0));
}

#[test]
fn test_modules_and_doc_examples_are_exempt() {
    let diags = fixture_diags();
    // sat.rs is a hot file full of floats and unwraps — all in tests
    // or doc examples, so none may be flagged.
    assert!(
        !diags.iter().any(|d| d.path.contains("core/src/sat.rs")),
        "false positives:\n{}",
        diag::render_text(&diags)
    );
    // The cache test module's unwrap is exempt too: E009 hits exactly
    // lib.rs (non-test) and cache.rs (hot file), once each.
    let e009 = by_rule(&diags, "E009");
    let mut paths: Vec<&str> = e009.iter().map(|d| d.path.as_str()).collect();
    paths.sort_unstable();
    assert_eq!(
        paths,
        ["crates/cache/src/cache.rs", "crates/cache/src/lib.rs"]
    );
}

#[test]
fn gated_tracer_read_is_clean() {
    let diags = fixture_diags();
    let e006 = by_rule(&diags, "E006");
    assert_eq!(e006.len(), 1);
    assert_eq!(e006[0].path, "crates/cache/src/lib.rs");
    // machine.rs reads the ring inside `if Tracer::ACTIVE { … }`.
    assert!(!diags
        .iter()
        .any(|d| d.path == "crates/machine/src/machine.rs"));
}

#[test]
fn gated_profiler_read_is_clean() {
    let diags = fixture_diags();
    let e010 = by_rule(&diags, "E010");
    assert_eq!(e010.len(), 2);
    assert!(e010.iter().all(|d| d.path == "crates/cache/src/lib.rs"));
    assert!(e010.iter().any(|d| d.message.contains("record_sample")));
    assert!(e010.iter().any(|d| d.message.contains("`records`")));
    // machine.rs reads the sampler inside `if Profiler::ACTIVE { … }`.
    assert!(!diags
        .iter()
        .any(|d| d.path == "crates/machine/src/machine.rs"));
}

#[test]
fn gated_hub_publish_is_clean() {
    let diags = fixture_diags();
    let e011 = by_rule(&diags, "E011");
    assert_eq!(e011.len(), 1);
    assert_eq!(e011[0].path, "crates/cache/src/lib.rs");
    assert!(e011[0].message.contains("publish"));
    // machine.rs publishes inside `if Hub::ACTIVE { … }`.
    assert!(!diags
        .iter()
        .any(|d| d.rule == "E011" && d.path == "crates/machine/src/machine.rs"));
}

#[test]
fn unregistered_counter_is_named() {
    let diags = fixture_diags();
    let e007 = by_rule(&diags, "E007");
    assert_eq!(e007.len(), 1);
    assert!(e007[0].message.contains("lost_counter"));
    assert_eq!(e007[0].path, "crates/machine/src/stats.rs");
}

#[test]
fn manual_to_json_impl_satisfies_e008() {
    let diags = fixture_diags();
    let e008 = by_rule(&diags, "E008");
    assert_eq!(e008.len(), 1);
    assert!(e008[0].message.contains("ProbeConfig"));
    assert!(!diags.iter().any(|d| d.message.contains("TunableConfig")));
}

#[test]
fn raw_concurrency_paths_and_bare_orderings_are_flagged() {
    let diags = fixture_diags();
    let e012 = by_rule(&diags, "E012");
    assert_eq!(e012.len(), 2);
    assert!(e012.iter().all(|d| d.path == "crates/cache/src/spin.rs"));
    assert!(e012.iter().any(|d| d.message.contains("std::sync::atomic")));
    assert!(e012.iter().any(|d| d.message.contains("std::thread")));
    let e013 = by_rule(&diags, "E013");
    assert_eq!(e013.len(), 2);
    assert!(e013.iter().all(|d| d.path == "crates/cache/src/spin.rs"));
    assert!(e013.iter().any(|d| d.message.contains("Ordering::Relaxed")));
    assert!(e013.iter().any(|d| d.message.contains("Ordering::SeqCst")));
    // The `// ord:`-annotated loads (same-line and comment-above) and
    // the test module's raw atomics are exempt: exactly two of each.
}

#[test]
fn span_family_table_must_be_closed() {
    let diags = fixture_diags();
    let e014 = by_rule(&diags, "E014");
    assert_eq!(e014.len(), 2);
    assert!(e014
        .iter()
        .all(|d| d.path == "crates/cache/src/wallspans.rs"));
    // One orphan constant, one raw-literal call site; the constant
    // call site and the test module's literal probe stay clean.
    assert!(e014
        .iter()
        .any(|d| d.message.contains("ORPHAN") && d.message.contains("families::ALL")));
    assert!(e014
        .iter()
        .any(|d| d.message.contains("fixture/raw-literal")));
    assert!(!diags
        .iter()
        .any(|d| d.message.contains("fixture/test-probe")));
    assert!(!diags.iter().any(|d| d.message.contains("REGISTERED")));
}

#[test]
fn loop_body_overheads_are_flagged_only_inside_loops() {
    let diags = fixture_diags();
    let e015 = by_rule(&diags, "E015");
    assert_eq!(e015.len(), 2);
    assert!(e015
        .iter()
        .all(|d| d.path == "crates/machine/src/blockloop.rs"));
    assert!(e015.iter().any(|d| d.message.contains("bus.stats()")));
    assert!(e015.iter().any(|d| d.message.contains("sample_due")));
    // `replay_hoisted` (gated probe in-loop, mirror copy after the
    // loop) and the test module's per-event probe stay clean: the
    // count above pins exactly the two in-loop sites in `replay`.
}

#[test]
fn json_report_is_stable() {
    let diags = fixture_diags();
    let json = diag::render_json(&diags);
    assert!(json.starts_with("{\"count\":25,"));
    assert!(json.contains("\"rule\":\"E001\""));
    assert!(json.contains("\"rule\":\"E009\""));
}

#[test]
fn every_reported_rule_is_in_the_catalog() {
    for d in fixture_diags() {
        assert!(
            execmig_analysis::catalog::rule(d.rule).is_some(),
            "rule {} missing from catalog",
            d.rule
        );
    }
}
