//! The gate's own gate: the real workspace must be clean, and the
//! runtime half of the catalog must actually exist in the code.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels under the root")
}

#[test]
fn real_workspace_is_clean() {
    let diags = execmig_analysis::run(workspace_root()).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "the workspace violates its own static rules:\n{}",
        execmig_analysis::diag::render_text(&diags)
    );
}

/// Every runtime invariant id in the catalog must appear as an
/// `"I1xx:"` message prefix somewhere in the workspace sources — the
/// debug_assert! checkers and the catalog must not drift apart.
#[test]
fn runtime_catalog_ids_have_debug_assert_twins() {
    let ws = execmig_analysis::workspace::load(workspace_root()).expect("workspace loads");
    for rule in execmig_analysis::catalog::CATALOG {
        if !rule.id.starts_with('I') {
            continue;
        }
        let tag = format!("{}:", rule.id);
        let found = ws
            .crates
            .iter()
            .flat_map(|c| &c.files)
            .any(|f| f.text.contains(&tag));
        assert!(
            found,
            "catalog lists runtime invariant {} but no source carries a \"{tag}\" message",
            rule.id
        );
    }
}

/// And the reverse: the workspace loader sees the crates we think it
/// does (guards against the walker silently skipping a member).
#[test]
fn loader_sees_all_members() {
    let ws = execmig_analysis::workspace::load(workspace_root()).expect("workspace loads");
    for name in [
        "execution-migration",
        "execmig-analysis",
        "execmig-bench",
        "execmig-cache",
        "execmig-core",
        "execmig-experiments",
        "execmig-machine",
        "execmig-model",
        "execmig-obs",
        "execmig-trace",
    ] {
        assert!(ws.get(name).is_some(), "loader missed crate {name}");
    }
}
