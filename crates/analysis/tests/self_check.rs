//! The gate's own gate: the real workspace must be clean, and the
//! runtime half of the catalog must actually exist in the code.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels under the root")
}

#[test]
fn real_workspace_is_clean() {
    let diags = execmig_analysis::run(workspace_root()).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "the workspace violates its own static rules:\n{}",
        execmig_analysis::diag::render_text(&diags)
    );
}

/// Every runtime invariant id in the catalog must appear as an
/// `"I1xx:"` message prefix somewhere in the workspace sources — the
/// debug_assert! checkers and the catalog must not drift apart.
#[test]
fn runtime_catalog_ids_have_debug_assert_twins() {
    let ws = execmig_analysis::workspace::load(workspace_root()).expect("workspace loads");
    for rule in execmig_analysis::catalog::CATALOG {
        if !rule.id.starts_with('I') {
            continue;
        }
        let tag = format!("{}:", rule.id);
        let found = ws
            .crates
            .iter()
            .flat_map(|c| &c.files)
            .any(|f| f.text.contains(&tag));
        assert!(
            found,
            "catalog lists runtime invariant {} but no source carries a \"{tag}\" message",
            rule.id
        );
    }
}

/// And the reverse: the workspace loader sees the crates we think it
/// does (guards against the walker silently skipping a member).
#[test]
fn loader_sees_all_members() {
    let ws = execmig_analysis::workspace::load(workspace_root()).expect("workspace loads");
    for name in [
        "execution-migration",
        "execmig-analysis",
        "execmig-bench",
        "execmig-cache",
        "execmig-core",
        "execmig-experiments",
        "execmig-machine",
        "execmig-model",
        "execmig-obs",
        "execmig-trace",
    ] {
        assert!(ws.get(name).is_some(), "loader missed crate {name}");
    }
}

/// The coherence seam added in PR 8 must sit inside the layering
/// gate's scan set — if the walker ever skipped these files, E002
/// would silently stop policing the protocol modules' layer
/// references (and E007/E008 their counters).
#[test]
fn layering_scan_covers_the_coherence_modules() {
    let ws = execmig_analysis::workspace::load(workspace_root()).expect("workspace loads");
    for (krate, rel) in [
        ("execmig-machine", "crates/machine/src/coherence.rs"),
        ("execmig-machine", "crates/machine/src/invariants.rs"),
        ("execmig-check", "crates/check/src/refmachine.rs"),
        (
            "execmig-experiments",
            "crates/experiments/src/coherence_compare.rs",
        ),
    ] {
        let c = ws
            .get(krate)
            .unwrap_or_else(|| panic!("loader missed crate {krate}"));
        assert!(
            c.files.iter().any(|f| f.rel == rel),
            "{krate} scan missed {rel}; the layering rules no longer cover it"
        );
    }
}
