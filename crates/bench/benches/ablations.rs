//! Ablation kernels: the parameter-sweep building blocks at reduced
//! budgets (R-window sweep point, filter-width point, protocol
//! penalty simulation).

use execmig_bench::harness::Runner;
use execmig_experiments::ablations::{filter, rwindow};
use execmig_machine::{MigrationProtocol, PipelineConfig};
use std::hint::black_box;

fn bench_rwindow_point(c: &mut Runner) {
    let mut g = c.benchmark_group("ablation_rwindow");
    g.sample_size(10);
    g.bench_function("circular_point/200k_refs", |b| {
        b.iter(|| black_box(rwindow::circular_sweep(100, &[450], 200_000)));
    });
    g.finish();
}

fn bench_filter_point(c: &mut Runner) {
    let mut g = c.benchmark_group("ablation_filter");
    g.sample_size(10);
    g.bench_function("random_point/200k_refs", |b| {
        b.iter(|| black_box(filter::sweep(16, &[18], 4000, 200_000)));
    });
    g.finish();
}

fn bench_protocol(c: &mut Runner) {
    let mut g = c.benchmark_group("migration_protocol");
    g.throughput(1);
    g.bench_function("simulate_migration", |b| {
        let mut p = MigrationProtocol::new(PipelineConfig::default(), 17);
        b.iter(|| black_box(p.simulate_migration()));
    });
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_rwindow_point(&mut c);
    bench_filter_point(&mut c);
    bench_protocol(&mut c);
    c.finish();
}
