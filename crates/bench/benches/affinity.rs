//! Hot paths of the affinity algorithm: the Figure 2 datapath per
//! reference, with unbounded and finite affinity caches, and the full
//! 4-way splitter. These bound the simulated migration controller's
//! per-L1-miss cost.

use execmig_bench::harness::Runner;
use execmig_bench::LineStream;
use execmig_core::{
    Mechanism, MechanismConfig, Sampler, SkewedAffinityCache, Splitter2, Splitter4,
    Splitter4Config, SplitterConfig, UnboundedAffinityTable,
};
use std::hint::black_box;

fn bench_mechanism(c: &mut Runner) {
    let mut g = c.benchmark_group("mechanism");
    g.throughput(1);

    g.bench_function("on_reference/unbounded_table", |b| {
        let mut m = Mechanism::new(MechanismConfig::default());
        let mut t = UnboundedAffinityTable::new();
        let mut lines = LineStream::new(1, 15);
        // Warm the table so steady-state cost is measured.
        for _ in 0..50_000 {
            m.on_reference(lines.next_line(), &mut t);
        }
        b.iter(|| black_box(m.on_reference(lines.next_line(), &mut t)));
    });

    g.bench_function("on_reference/skewed_8k_table", |b| {
        let mut m = Mechanism::new(MechanismConfig::default());
        let mut t = SkewedAffinityCache::new(8 << 10, 4);
        let mut lines = LineStream::new(2, 15);
        for _ in 0..50_000 {
            m.on_reference(lines.next_line(), &mut t);
        }
        b.iter(|| black_box(m.on_reference(lines.next_line(), &mut t)));
    });
    g.finish();
}

fn bench_splitters(c: &mut Runner) {
    let mut g = c.benchmark_group("splitter");
    g.throughput(1);

    g.bench_function("splitter2/circular", |b| {
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 100,
            filter_bits: Some(20),
            ..SplitterConfig::default()
        });
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(s.on_reference(t % 4000))
        });
    });

    g.bench_function("splitter4/full_sampling", |b| {
        let mut s = Splitter4::new(Splitter4Config::default());
        let mut lines = LineStream::new(3, 14);
        b.iter(|| black_box(s.on_reference(lines.next_line())));
    });

    g.bench_function("splitter4/quarter_sampling", |b| {
        let mut s = Splitter4::new(Splitter4Config {
            sampler: Sampler::quarter(),
            ..Splitter4Config::default()
        });
        let mut lines = LineStream::new(4, 14);
        b.iter(|| black_box(s.on_reference(lines.next_line())));
    });
    g.finish();
}

fn bench_controller(c: &mut Runner) {
    use execmig_core::{ControllerConfig, MigrationController};
    let mut g = c.benchmark_group("controller");
    g.throughput(1);

    g.bench_function("paper_4core/per_request", |b| {
        b.iter_batched_ref(
            || {
                (
                    MigrationController::new(ControllerConfig::paper_4core()),
                    LineStream::new(5, 15),
                )
            },
            |(mc, lines)| {
                for _ in 0..1000 {
                    black_box(mc.on_request(lines.next_line(), true));
                }
            },
        );
    });
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_mechanism(&mut c);
    bench_splitters(&mut c);
    bench_controller(&mut c);
    c.finish();
}
