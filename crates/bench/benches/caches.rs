//! Cache-substrate throughput: these dominate the simulator's run time
//! (every access touches an L1; every L1 miss touches L2s and stacks).

use execmig_bench::harness::Runner;
use execmig_bench::LineStream;
use execmig_cache::{Cache, CacheConfig, FullyAssocLru, LruStack};
use execmig_trace::LineAddr;
use std::hint::black_box;

fn bench_set_assoc(c: &mut Runner) {
    let mut g = c.benchmark_group("cache");
    g.throughput(1);

    for (label, config) in [
        (
            "modulo_512k_4w",
            CacheConfig::set_associative(512 << 10, 4, 64),
        ),
        ("skewed_512k_4w", CacheConfig::skewed(512 << 10, 4, 64)),
    ] {
        g.bench_function(format!("lookup_fill/{label}"), |b| {
            let mut cache = Cache::new(config);
            let mut lines = LineStream::new(7, 14);
            // Warm to steady state (evictions happening).
            for _ in 0..50_000 {
                let l = LineAddr::new(lines.next_line());
                if !cache.lookup(l) {
                    cache.fill(l, false);
                }
            }
            b.iter(|| {
                let l = LineAddr::new(lines.next_line());
                if !cache.lookup(l) {
                    black_box(cache.fill(l, false));
                }
            });
        });
    }
    g.finish();
}

fn bench_fully_assoc(c: &mut Runner) {
    let mut g = c.benchmark_group("fully_assoc_lru");
    g.throughput(1);
    g.bench_function("access/256_lines", |b| {
        let mut cache = FullyAssocLru::new(256);
        let mut lines = LineStream::new(9, 10);
        b.iter(|| black_box(cache.access(lines.next_line())));
    });
    g.finish();
}

fn bench_stack(c: &mut Runner) {
    let mut g = c.benchmark_group("lru_stack");
    g.throughput(1);
    for bits in [10u32, 16, 18] {
        g.bench_function(format!("access/{}_distinct_lines", 1u64 << bits), |b| {
            let mut stack = LruStack::new();
            let mut lines = LineStream::new(11, bits);
            for _ in 0..(1u64 << bits) * 2 {
                stack.access(lines.next_line());
            }
            b.iter(|| black_box(stack.access(lines.next_line())));
        });
    }
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_set_assoc(&mut c);
    bench_fully_assoc(&mut c);
    bench_stack(&mut c);
    c.finish();
}
