//! Cache-substrate throughput: these dominate the simulator's run time
//! (every access touches an L1; every L1 miss touches L2s and stacks).
//! Kernel bodies live in `execmig_bench::kernels`.

use execmig_bench::harness::Runner;
use execmig_bench::kernels;

fn main() {
    let mut c = Runner::from_env();
    kernels::bench_set_assoc(&mut c);
    kernels::bench_fully_assoc(&mut c);
    kernels::bench_stack(&mut c);
    c.finish();
}
