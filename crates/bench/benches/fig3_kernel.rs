//! Figure 3 kernel: the affinity algorithm over the §3.3 abstract
//! streams, measured end to end (workload generation + Figure 2
//! datapath) at a reduced reference budget.

use execmig_bench::harness::Runner;
use execmig_core::{Splitter2, SplitterConfig};
use execmig_trace::gen::{CircularWorkload, HalfRandomWorkload};
use execmig_trace::Workload;
use std::hint::black_box;

const REFS: u64 = 100_000;

fn bench_fig3(c: &mut Runner) {
    let mut g = c.benchmark_group("fig3");
    g.throughput(REFS);
    g.sample_size(20);

    g.bench_function("circular_4000_r100/100k_refs", |b| {
        b.iter_batched_ref(
            || {
                (
                    CircularWorkload::new(4000),
                    Splitter2::new(SplitterConfig {
                        r_window: 100,
                        filter_bits: None,
                        ..SplitterConfig::default()
                    }),
                )
            },
            |(w, s)| {
                for _ in 0..REFS {
                    let e = w.next_access().addr.raw() / 64;
                    black_box(s.on_reference(e));
                }
            },
        );
    });

    g.bench_function("half_random_300/100k_refs", |b| {
        b.iter_batched_ref(
            || {
                (
                    HalfRandomWorkload::new(4000, 300, 0x5eed),
                    Splitter2::new(SplitterConfig {
                        r_window: 100,
                        filter_bits: None,
                        ..SplitterConfig::default()
                    }),
                )
            },
            |(w, s)| {
                for _ in 0..REFS {
                    let e = w.next_access().addr.raw() / 64;
                    black_box(s.on_reference(e));
                }
            },
        );
    });
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_fig3(&mut c);
    c.finish();
}
