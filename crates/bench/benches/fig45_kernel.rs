//! Figures 4-5 kernel: the stack-profile pipeline (L1 filter → single
//! stack + 4-way affinity-split stacks) at a reduced budget.

use execmig_bench::harness::Runner;
use execmig_experiments::fig45::{run_workload, Fig45Config};
use execmig_trace::suite;
use std::hint::black_box;

const INSTRS: u64 = 1_000_000;

fn bench_fig45(c: &mut Runner) {
    let mut g = c.benchmark_group("fig45");
    g.throughput(INSTRS);
    g.sample_size(10);

    for name in ["art", "vpr"] {
        g.bench_function(format!("profiles/{name}/1M_instr"), |b| {
            let config = Fig45Config::paper(INSTRS);
            b.iter_batched_ref(
                || suite::by_name(name).expect("suite benchmark"),
                |w| black_box(run_workload(name, &mut **w, &config)),
            );
        });
    }
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_fig45(&mut c);
    c.finish();
}
