//! The combined perf-trajectory suite: caches + table1 + table2
//! kernels in one run, exported as `BENCH_<n>.json` by the CI bench
//! job (`cargo bench -p execmig-bench --bench suite -- --quick
//! --json-out BENCH_<n>.json`).

use execmig_bench::harness::Runner;
use execmig_bench::kernels;

fn main() {
    let mut c = Runner::from_env();
    kernels::bench_set_assoc(&mut c);
    kernels::bench_fully_assoc(&mut c);
    kernels::bench_stack(&mut c);
    kernels::bench_table1(&mut c);
    kernels::bench_table2(&mut c);
    c.finish();
}
