//! Table 1 kernel: workload generation plus the 16 KB fully-associative
//! L1 filter, per benchmark class. Kernel body lives in
//! `execmig_bench::kernels`.

use execmig_bench::harness::Runner;
use execmig_bench::kernels;

fn main() {
    let mut c = Runner::from_env();
    kernels::bench_table1(&mut c);
    c.finish();
}
