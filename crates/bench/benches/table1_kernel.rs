//! Table 1 kernel: workload generation plus the 16 KB fully-associative
//! L1 filter, per benchmark class.

use execmig_bench::harness::Runner;
use execmig_bench::workload;
use execmig_experiments::l1filter::L1Filter;
use execmig_trace::{LineSize, Workload};
use std::hint::black_box;

const INSTRS: u64 = 500_000;

fn bench_table1(c: &mut Runner) {
    let mut g = c.benchmark_group("table1");
    g.throughput(INSTRS);
    g.sample_size(10);

    // One representative per generator engine.
    for name in ["art", "mcf", "gzip", "gcc", "bzip2"] {
        g.bench_function(format!("l1_filter/{name}/500k_instr"), |b| {
            b.iter_batched_ref(
                || (workload(name), L1Filter::paper(LineSize::DEFAULT)),
                |(w, filter)| {
                    while w.instructions() < INSTRS {
                        black_box(filter.filter(w.next_access()));
                    }
                },
            );
        });
    }
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_table1(&mut c);
    c.finish();
}
