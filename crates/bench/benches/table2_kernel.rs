//! Table 2 kernel: the full machine (caches + coherence + controller)
//! per simulated instruction, baseline vs migration mode.

use execmig_bench::harness::Runner;
use execmig_bench::workload;
use execmig_machine::{Machine, MachineConfig};
use std::hint::black_box;

const INSTRS: u64 = 1_000_000;

fn bench_table2(c: &mut Runner) {
    let mut g = c.benchmark_group("table2");
    g.throughput(INSTRS);
    g.sample_size(10);

    for name in ["art", "gzip"] {
        g.bench_function(format!("baseline/{name}/1M_instr"), |b| {
            b.iter_batched_ref(
                || (Machine::new(MachineConfig::single_core()), workload(name)),
                |(m, w)| {
                    m.run(&mut **w, INSTRS);
                    black_box(m.stats().l2_misses)
                },
            );
        });
        g.bench_function(format!("migration/{name}/1M_instr"), |b| {
            b.iter_batched_ref(
                || {
                    (
                        Machine::new(MachineConfig::four_core_migration()),
                        workload(name),
                    )
                },
                |(m, w)| {
                    m.run(&mut **w, INSTRS);
                    black_box(m.stats().migrations)
                },
            );
        });
    }
    g.finish();
}

fn main() {
    let mut c = Runner::from_env();
    bench_table2(&mut c);
    c.finish();
}
