//! Table 2 kernel: the full machine (caches + coherence + controller)
//! per simulated instruction, baseline vs migration mode. Kernel body
//! lives in `execmig_bench::kernels`.

use execmig_bench::harness::Runner;
use execmig_bench::kernels;

fn main() {
    let mut c = Runner::from_env();
    kernels::bench_table2(&mut c);
    c.finish();
}
