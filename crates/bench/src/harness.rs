//! A small benchmark harness for `harness = false` bench targets.
//!
//! Mirrors the slice of the Criterion API the benches use —
//! `benchmark_group` / `throughput` / `sample_size` / `bench_function`
//! with `Bencher::iter` and `Bencher::iter_batched_ref` — on top of a
//! calibrated measurement loop: `iter` doubles the batch size until one
//! batch runs ≥ 1 ms, then times `sample_size` batches; batched
//! benchmarks run one untimed warmup pass (first-touch page faults and
//! cache fills happen off the clock) and then time one (internally
//! looping) routine call per sample. Reported figures are the median,
//! minimum, and p90 ns/iteration; quantiles use the floor index, so
//! with small sample counts the p90 is never the single worst sample —
//! together with the warmup this keeps p90 stable across runs instead
//! of flapping on one cold outlier.
//!
//! Runner arguments: a bare substring filters benchmark ids, `--quick`
//! cuts the sample count for smoke runs, `--json` prints the results
//! as a JSON array (via `execmig-obs`) after the human-readable lines.

use std::hint::black_box;
use std::time::Instant;

use execmig_obs::ToJson;

/// One benchmark's summary statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Median ns per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// 90th-percentile sample, ns per iteration.
    pub p90_ns: f64,
    /// Samples measured.
    pub samples: usize,
    /// Elements processed per iteration (for throughput).
    pub elements_per_iter: u64,
}

execmig_obs::impl_to_json!(BenchResult {
    id,
    median_ns,
    min_ns,
    p90_ns,
    samples,
    elements_per_iter
});

impl BenchResult {
    /// Elements per second at the median.
    pub fn elements_per_second(&self) -> f64 {
        if self.median_ns <= 0.0 {
            return 0.0;
        }
        self.elements_per_iter as f64 * 1e9 / self.median_ns
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.1} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} elem/s")
    }
}

/// Top-level bench driver: parses arguments, owns the results.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
    quick: bool,
    json: bool,
    json_out: Option<std::path::PathBuf>,
    results: Vec<BenchResult>,
}

impl Runner {
    /// A runner configured from the process arguments.
    pub fn from_env() -> Runner {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let json_out = args
            .iter()
            .position(|a| a == "--json-out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        Runner {
            // cargo may append harness flags; any non-flag that is not
            // the --json-out operand is a filter.
            filter: args
                .iter()
                .enumerate()
                .find(|(i, a)| !a.starts_with('-') && (*i == 0 || args[i - 1] != "--json-out"))
                .map(|(_, a)| a.clone()),
            quick: args.iter().any(|a| a == "--quick")
                || std::env::var_os("EXECMIG_BENCH_QUICK").is_some(),
            json: args.iter().any(|a| a == "--json"),
            json_out,
            results: Vec::new(),
        }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            throughput: 1,
            sample_size: 20,
        }
    }

    /// Prints the JSON tail (when `--json`), writes the JSON file
    /// (when `--json-out PATH`), and drops the runner.
    pub fn finish(self) {
        let json = (self.json || self.json_out.is_some()).then(|| self.results.to_json().pretty());
        if self.json {
            println!("{}", json.as_deref().unwrap_or("[]"));
        }
        if let (Some(path), Some(json)) = (&self.json_out, &json) {
            match std::fs::write(path, format!("{json}\n")) {
                Ok(()) => eprintln!("wrote {} results to {}", self.results.len(), path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }

    /// Results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing throughput and sample count.
#[derive(Debug)]
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    throughput: u64,
    sample_size: usize,
}

impl Group<'_> {
    /// Declares how many elements one iteration processes.
    pub fn throughput(&mut self, elements_per_iter: u64) {
        self.throughput = elements_per_iter;
    }

    /// Sets the number of measured samples (default 20).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(3);
    }

    /// Measures one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let id = format!("{}/{}", self.name, name.as_ref());
        if let Some(filter) = &self.runner.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.runner.quick {
            (self.sample_size / 4).max(3)
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            target_samples: samples,
            quick: self.runner.quick,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let mut sorted = b.samples_ns.clone();
        sorted.sort_by(|a, c| a.total_cmp(c));
        let pick = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            // Floor, not round: with n = 5 samples a rounded p90 index
            // lands on the maximum, so a single cold sample (page
            // faults, a scheduler hiccup) dominated the statistic.
            let i = ((sorted.len() - 1) as f64 * q).floor() as usize;
            sorted[i]
        };
        let result = BenchResult {
            id: id.clone(),
            median_ns: pick(0.5),
            min_ns: sorted.first().copied().unwrap_or(0.0),
            p90_ns: pick(0.9),
            samples: sorted.len(),
            elements_per_iter: self.throughput,
        };
        println!(
            "{id:<48} median {:>10}  min {:>10}  p90 {:>10}  {:>14}  n={}",
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.p90_ns),
            fmt_rate(result.elements_per_second()),
            result.samples
        );
        self.runner.results.push(result);
    }

    /// Ends the group (kept for call-site symmetry).
    pub fn finish(self) {}
}

/// Hands the benchmark body a measurement loop.
#[derive(Debug)]
pub struct Bencher {
    target_samples: usize,
    quick: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `f`, calibrating the batch size so each
    /// measured batch runs at least ~1 ms (100 µs under `--quick`).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let floor_ns = if self.quick { 100_000 } else { 1_000_000 };
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos();
            if ns >= floor_ns || iters >= 1 << 30 {
                break;
            }
            // Jump straight towards the floor when far below it.
            iters = (iters as u128 * floor_ns)
                .checked_div(ns)
                .map(|j| j.clamp(iters as u128 + 1, iters as u128 * 16) as u64)
                .unwrap_or(iters * 16);
        }
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times one `routine` call per sample over fresh, untimed
    /// `setup` state. The routine is expected to loop internally (it is
    /// the "iteration" the group throughput refers to). One untimed
    /// warmup pass runs first: freshly set-up state starts cold (lazy
    /// page faults, empty caches, unprimed branch predictors), and
    /// without the warmup that first-call cost landed in the timed
    /// samples and inflated the tail quantiles.
    pub fn iter_batched_ref<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> R,
    ) {
        {
            let mut state = setup();
            black_box(routine(&mut state));
        }
        for _ in 0..self.target_samples {
            let mut state = setup();
            let t = Instant::now();
            black_box(routine(&mut state));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner() -> Runner {
        Runner {
            filter: None,
            quick: true,
            json: false,
            json_out: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn iter_produces_sane_stats() {
        let mut r = test_runner();
        let mut g = r.benchmark_group("unit");
        g.sample_size(16); // quick mode measures a quarter of these
        g.throughput(1);
        let mut x = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                x = x.wrapping_add(0x9e3779b9);
                x
            })
        });
        g.finish();
        let res = &r.results()[0];
        assert_eq!(res.id, "unit/add");
        assert_eq!(res.samples, 4);
        assert!(res.median_ns > 0.0);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.median_ns <= res.p90_ns);
        assert!(res.elements_per_second() > 0.0);
    }

    #[test]
    fn batched_counts_one_routine_per_sample_plus_warmup() {
        let mut r = test_runner();
        let mut g = r.benchmark_group("unit");
        g.sample_size(3);
        let mut setups = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched_ref(
                || {
                    setups += 1;
                    vec![0u8; 1024]
                },
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
            )
        });
        assert_eq!(setups, 4, "one untimed warmup setup plus 3 samples");
        assert_eq!(r.results()[0].samples, 3, "the warmup pass is not timed");
    }

    #[test]
    fn small_sample_p90_excludes_the_worst_sample() {
        // Five samples, one wild outlier (the cold-start shape that
        // made checked-in p90s flap): the floor-index p90 reports the
        // second-worst sample, never the outlier itself.
        let mut r = test_runner();
        let mut g = r.benchmark_group("unit");
        g.sample_size(5);
        g.bench_function("p90", |b| {
            b.samples_ns = vec![100.0, 110.0, 1900.0, 105.0, 112.0];
        });
        let res = &r.results()[0];
        assert_eq!(res.p90_ns, 112.0, "p90 index floors below the maximum");
        assert_eq!(res.median_ns, 110.0);
        assert_eq!(res.min_ns, 100.0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = test_runner();
        r.filter = Some("nothing-matches-this".to_string());
        let mut g = r.benchmark_group("unit");
        g.bench_function("skipped", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(r.results().is_empty());
    }

    #[test]
    fn results_serialise() {
        let mut r = test_runner();
        let mut g = r.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("json", |b| b.iter(|| 2 * 2));
        g.finish();
        let j = r.results().to_json();
        assert!(j.compact().contains("\"unit/json\""));
    }
}
