//! The perf-trajectory bench kernels, shared between the per-artefact
//! bench targets and the combined `suite` target that exports
//! `BENCH_<n>.json` for the CI perf gate.
//!
//! Three kernels cover the simulator's cost structure end to end:
//!
//! - `caches` — the [`execmig_cache::Cache`] per-reference hot path
//!   (fused lookup+fill via [`Cache::access`]), plus the
//!   fully-associative LRU and Mattson-stack substrates;
//! - `table1` — workload generation through the 16 KB fully-associative
//!   L1 filter (the front half of every experiment);
//! - `table2` — the full machine (caches + coherence + controller) per
//!   simulated instruction, baseline vs migration mode.

use crate::harness::Runner;
use crate::{workload, LineStream};
use execmig_cache::{Cache, CacheConfig, FullyAssocLru, LruStack};
use execmig_experiments::l1filter::L1Filter;
use execmig_machine::{Machine, MachineConfig};
use execmig_trace::{LineAddr, LineSize, Workload};
use std::hint::black_box;

/// Set-associative / skewed-associative per-reference throughput.
pub fn bench_set_assoc(c: &mut Runner) {
    let mut g = c.benchmark_group("cache");
    g.throughput(1);

    for (label, config) in [
        (
            "modulo_512k_4w",
            CacheConfig::set_associative(512 << 10, 4, 64),
        ),
        ("skewed_512k_4w", CacheConfig::skewed(512 << 10, 4, 64)),
    ] {
        g.bench_function(format!("lookup_fill/{label}"), |b| {
            let mut cache = Cache::new(config);
            let mut lines = LineStream::new(7, 14);
            // Warm to steady state (evictions happening).
            for _ in 0..50_000 {
                cache.access(LineAddr::new(lines.next_line()), false);
            }
            b.iter(|| {
                // The machine's L1/L2 read path: one fused probe.
                black_box(cache.access(LineAddr::new(lines.next_line()), false))
            });
        });
    }
    g.finish();
}

/// Fully-associative LRU per-access throughput.
pub fn bench_fully_assoc(c: &mut Runner) {
    let mut g = c.benchmark_group("fully_assoc_lru");
    g.throughput(1);
    g.bench_function("access/256_lines", |b| {
        let mut cache = FullyAssocLru::new(256);
        let mut lines = LineStream::new(9, 10);
        b.iter(|| black_box(cache.access(lines.next_line())));
    });
    g.finish();
}

/// Mattson LRU-stack per-access throughput.
pub fn bench_stack(c: &mut Runner) {
    let mut g = c.benchmark_group("lru_stack");
    g.throughput(1);
    for bits in [10u32, 16, 18] {
        g.bench_function(format!("access/{}_distinct_lines", 1u64 << bits), |b| {
            let mut stack = LruStack::new();
            let mut lines = LineStream::new(11, bits);
            for _ in 0..(1u64 << bits) * 2 {
                stack.access(lines.next_line());
            }
            b.iter(|| black_box(stack.access(lines.next_line())));
        });
    }
    g.finish();
}

/// Instructions simulated per Table 1 L1-filter iteration.
pub const TABLE1_INSTRS: u64 = 500_000;

/// Workload generation + the 16 KB fully-associative L1 filter.
pub fn bench_table1(c: &mut Runner) {
    let mut g = c.benchmark_group("table1");
    g.throughput(TABLE1_INSTRS);
    g.sample_size(10);

    // One representative per generator engine.
    for name in ["art", "mcf", "gzip", "gcc", "bzip2"] {
        g.bench_function(format!("l1_filter/{name}/500k_instr"), |b| {
            b.iter_batched_ref(
                || (workload(name), L1Filter::paper(LineSize::DEFAULT)),
                |(w, filter)| {
                    while w.instructions() < TABLE1_INSTRS {
                        black_box(filter.filter(w.next_access()));
                    }
                },
            );
        });
    }
    g.finish();
}

/// Instructions simulated per Table 2 machine iteration.
pub const TABLE2_INSTRS: u64 = 1_000_000;

/// The full machine per simulated instruction.
pub fn bench_table2(c: &mut Runner) {
    let mut g = c.benchmark_group("table2");
    g.throughput(TABLE2_INSTRS);
    g.sample_size(10);

    for name in ["art", "gzip"] {
        g.bench_function(format!("baseline/{name}/1M_instr"), |b| {
            b.iter_batched_ref(
                || (Machine::new(MachineConfig::single_core()), workload(name)),
                |(m, w)| {
                    m.run(&mut **w, TABLE2_INSTRS);
                    black_box(m.stats().l2_misses)
                },
            );
        });
        g.bench_function(format!("migration/{name}/1M_instr"), |b| {
            b.iter_batched_ref(
                || {
                    (
                        Machine::new(MachineConfig::four_core_migration()),
                        workload(name),
                    )
                },
                |(m, w)| {
                    m.run(&mut **w, TABLE2_INSTRS);
                    black_box(m.stats().migrations)
                },
            );
        });
    }
    g.finish();
}
