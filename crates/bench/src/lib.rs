//! Shared helpers and the hand-rolled harness for the benchmarks.
//!
//! The benches live in `benches/`, one file per paper artefact:
//!
//! - `affinity` — hot paths of the affinity algorithm (Figure 2
//!   datapath, 4-way splitter, affinity-cache variants);
//! - `caches` — cache-substrate throughput (set/skewed lookup+fill,
//!   fully-associative LRU, Mattson stack);
//! - `fig3_kernel`, `fig45_kernel`, `table1_kernel`, `table2_kernel` —
//!   the per-figure/table experiment kernels at reduced budgets;
//! - `ablations` — the parameter-sweep kernels.
//!
//! All benches are `harness = false` binaries driven by
//! [`harness::Runner`] — a small, dependency-free measurement loop
//! (calibrated batches, median/p90 over N samples). Pass a substring
//! to filter benchmarks, `--quick` for a fast pass, `--json` for
//! machine-readable results on stdout, or `--json-out PATH` to write
//! them to a file (the CI perf-trajectory gate uses the `suite`
//! target with `--json-out BENCH_<n>.json`).
//!
//! The kernels shared by the per-artefact targets and the combined
//! `suite` target live in [`kernels`].

pub mod harness;
pub mod kernels;

use execmig_trace::{suite, BoxedWorkload};

/// A deterministic pseudo-random line-address stream for
/// micro-benchmarks (xorshift64*).
pub struct LineStream {
    state: u64,
    mask: u64,
}

impl LineStream {
    /// Lines uniformly distributed over `[0, 2^bits)`.
    pub fn new(seed: u64, bits: u32) -> Self {
        LineStream {
            state: seed | 1,
            mask: (1 << bits) - 1,
        }
    }

    /// The next line address.
    #[inline]
    pub fn next_line(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        (self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 16) & self.mask
    }
}

/// Instantiates a suite workload for a bench, panicking on bad names.
pub fn workload(name: &str) -> BoxedWorkload {
    suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_stream_respects_mask() {
        let mut s = LineStream::new(3, 10);
        for _ in 0..1000 {
            assert!(s.next_line() < 1024);
        }
    }

    #[test]
    fn workload_helper_resolves() {
        let mut w = workload("art");
        use execmig_trace::Workload;
        let _ = w.next_access();
    }
}
