//! Set-associative and skewed-associative caches with per-line
//! valid/modified state.
//!
//! The §4.2 machine uses 16 KB 4-way set-associative L1 caches and
//! 512 KB 4-way *skewed*-associative L2 caches (Bodin & Seznec); the
//! affinity cache is also 4-way skewed-associative. Skewed associativity
//! gives each way its own index hash, so two lines conflicting in one way
//! rarely conflict in the others.
//!
//! The cache exposes *mechanism*, not policy: `lookup`, `fill`,
//! `invalidate`, modified-bit manipulation. Write-through/write-back and
//! allocation decisions live in the machine model, which is where the
//! paper defines them (§2.1).

use execmig_obs::{impl_to_json, Json, ToJson};
use execmig_trace::LineAddr;

/// How a line maps to sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indexing {
    /// Conventional: one index hash shared by all ways (modulo sets).
    Modulo,
    /// Skewed associativity: each way has its own index hash.
    Skewed,
}

/// Geometry and indexing of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Index mapping.
    pub indexing: Indexing,
}

impl CacheConfig {
    /// A conventional set-associative cache.
    pub fn set_associative(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
            indexing: Indexing::Modulo,
        }
    }

    /// A skewed-associative cache.
    pub fn skewed(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
            indexing: Indexing::Skewed,
        }
    }

    /// Lines per way.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Total line frames.
    pub fn frames(&self) -> u64 {
        self.sets() * self.ways as u64
    }

    fn validate(&self) {
        assert!(self.ways > 0, "cache needs at least one way");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.capacity_bytes
                .is_multiple_of(self.line_bytes * self.ways as u64),
            "capacity must be a whole number of sets"
        );
        let sets = self.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (capacity {}, ways {}, line {})",
            self.capacity_bytes,
            self.ways,
            self.line_bytes
        );
    }
}

impl ToJson for Indexing {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Indexing::Modulo => "modulo",
                Indexing::Skewed => "skewed",
            }
            .to_string(),
        )
    }
}

impl_to_json!(CacheConfig {
    capacity_bytes,
    ways,
    line_bytes,
    indexing,
});

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether its modified bit was set (write-back needed).
    pub modified: bool,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    line: u64,
    valid: bool,
    modified: bool,
    /// LRU timestamp (larger = more recent).
    last: u64,
}

const EMPTY: Frame = Frame {
    line: 0,
    valid: false,
    modified: false,
    last: 0,
};

/// Per-way keys for the skewing hashes.
const SKEW_KEYS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xca5a_8263_95fc_9dd7,
    0x8cb9_2ba7_2f3d_8dd7,
    0xa24b_aed4_963e_e407,
    0x9fb2_1c65_1e98_df25,
];

/// A set-associative or skewed-associative cache with true-LRU
/// replacement among the candidate frames.
///
/// ```
/// use execmig_cache::{Cache, CacheConfig};
/// use execmig_trace::LineAddr;
///
/// let mut l2 = Cache::new(CacheConfig::skewed(512 << 10, 4, 64));
/// let line = LineAddr::new(42);
/// assert!(!l2.lookup(line));
/// let evicted = l2.fill(line, false);
/// assert!(evicted.is_none());
/// assert!(l2.lookup(line));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u64,
    frames: Vec<Frame>,
    clock: u64,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig`]): zero
    /// ways, non-power-of-two line size or set count, more than 8 ways
    /// with skewed indexing.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        if config.indexing == Indexing::Skewed {
            assert!(
                (config.ways as usize) <= SKEW_KEYS.len(),
                "skewed indexing supports at most {} ways",
                SKEW_KEYS.len()
            );
        }
        let sets = config.sets();
        Cache {
            config,
            sets,
            frames: vec![EMPTY; (sets * config.ways as u64) as usize],
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Frame index of (way, set).
    fn frame_at(&self, way: u32, set: u64) -> usize {
        (way as u64 * self.sets + set) as usize
    }

    /// The set index `line` maps to in `way`.
    fn index(&self, line: u64, way: u32) -> u64 {
        match self.config.indexing {
            Indexing::Modulo => line & (self.sets - 1),
            Indexing::Skewed => {
                let mut z = line ^ SKEW_KEYS[way as usize];
                z ^= z >> 29;
                z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z ^= z >> 32;
                z & (self.sets - 1)
            }
        }
    }

    fn find(&self, line: u64) -> Option<usize> {
        for way in 0..self.config.ways {
            let f = self.frame_at(way, self.index(line, way));
            let frame = &self.frames[f];
            if frame.valid && frame.line == line {
                return Some(f);
            }
        }
        None
    }

    /// True if `line` is resident, updating its recency (a *use*).
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.clock += 1;
                self.frames[f].last = self.clock;
                true
            }
            None => false,
        }
    }

    /// True if `line` is resident; no recency update.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line.raw()).is_some()
    }

    /// The modified bit of `line`, if resident.
    pub fn modified(&self, line: LineAddr) -> Option<bool> {
        self.find(line.raw()).map(|f| self.frames[f].modified)
    }

    /// Sets or clears the modified bit of `line` if resident; returns
    /// whether the line was found. Does not update recency (coherence
    /// traffic is not a local use).
    pub fn set_modified(&mut self, line: LineAddr, modified: bool) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.frames[f].modified = modified;
                true
            }
            None => false,
        }
    }

    /// Inserts `line`, evicting the LRU candidate frame if every
    /// candidate is valid. Returns the eviction, if any.
    ///
    /// If the line is already resident this is a use: recency is
    /// refreshed, the modified bit is OR-ed in, and no eviction happens.
    pub fn fill(&mut self, line: LineAddr, modified: bool) -> Option<Evicted> {
        let raw = line.raw();
        if let Some(f) = self.find(raw) {
            self.clock += 1;
            self.frames[f].last = self.clock;
            self.frames[f].modified |= modified;
            return None;
        }
        // Choose the victim among the candidate frames: first invalid,
        // else least recently used.
        let mut victim = self.frame_at(0, self.index(raw, 0));
        for way in 0..self.config.ways {
            let f = self.frame_at(way, self.index(raw, way));
            if !self.frames[f].valid {
                victim = f;
                break;
            }
            if self.frames[f].last < self.frames[victim].last {
                victim = f;
            }
        }
        let evicted = if self.frames[victim].valid {
            Some(Evicted {
                line: LineAddr::new(self.frames[victim].line),
                modified: self.frames[victim].modified,
            })
        } else {
            None
        };
        self.clock += 1;
        self.frames[victim] = Frame {
            line: raw,
            valid: true,
            modified,
            last: self.clock,
        };
        evicted
    }

    /// Removes `line` if resident, returning its state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        self.find(line.raw()).map(|f| {
            let frame = &mut self.frames[f];
            frame.valid = false;
            Evicted {
                line: LineAddr::new(frame.line),
                modified: frame.modified,
            }
        })
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u64 {
        self.frames.iter().filter(|f| f.valid).count() as u64
    }

    /// Iterates over resident lines (and their modified bits), in no
    /// particular order.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        self.frames
            .iter()
            .filter(|f| f.valid)
            .map(|f| (LineAddr::new(f.line), f.modified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 sets x 2 ways x 64 B = 1 KB
        Cache::new(CacheConfig::set_associative(1 << 10, 2, 64))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 8);
        assert_eq!(c.config().frames(), 16);
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = small();
        let l = LineAddr::new(5);
        assert!(!c.lookup(l));
        assert_eq!(c.fill(l, false), None);
        assert!(c.lookup(l));
        assert!(c.contains(l));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conflict_eviction_is_lru() {
        let mut c = small();
        // Lines 0, 8, 16 all map to set 0 (8 sets, modulo).
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(8), false);
        // Touch 0 so 8 is LRU.
        assert!(c.lookup(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(16), false).expect("must evict");
        assert_eq!(ev.line, LineAddr::new(8));
        assert!(!ev.modified);
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(16)));
    }

    #[test]
    fn modified_bit_tracks_through_eviction() {
        let mut c = small();
        c.fill(LineAddr::new(0), true);
        c.fill(LineAddr::new(8), false);
        c.fill(LineAddr::new(16), false); // evicts 0 (LRU)
        let mut c2 = small();
        c2.fill(LineAddr::new(0), true);
        c2.fill(LineAddr::new(8), false);
        c2.lookup(LineAddr::new(8));
        let ev = c2.fill(LineAddr::new(16), false).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(ev.modified, "dirty eviction must report modified");
    }

    #[test]
    fn refill_ors_modified_and_refreshes() {
        let mut c = small();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.modified(LineAddr::new(0)), Some(false));
        assert_eq!(c.fill(LineAddr::new(0), true), None);
        assert_eq!(c.modified(LineAddr::new(0)), Some(true));
        // A clean refill must not clear the bit.
        assert_eq!(c.fill(LineAddr::new(0), false), None);
        assert_eq!(c.modified(LineAddr::new(0)), Some(true));
    }

    #[test]
    fn set_modified_reports_presence() {
        let mut c = small();
        assert!(!c.set_modified(LineAddr::new(3), true));
        c.fill(LineAddr::new(3), false);
        assert!(c.set_modified(LineAddr::new(3), true));
        assert_eq!(c.modified(LineAddr::new(3)), Some(true));
        assert!(c.set_modified(LineAddr::new(3), false));
        assert_eq!(c.modified(LineAddr::new(3)), Some(false));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(LineAddr::new(7), true);
        let ev = c.invalidate(LineAddr::new(7)).unwrap();
        assert!(ev.modified);
        assert!(!c.contains(LineAddr::new(7)));
        assert!(c.invalidate(LineAddr::new(7)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small();
        for i in 0..100u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 16);
    }

    #[test]
    fn skewed_spreads_conflicts() {
        // 64 sets x 4 ways. Lines that collide in a modulo cache
        // (same low bits) should mostly not collide in all skewed ways.
        let cfg = CacheConfig::skewed(16 << 10, 4, 64);
        let mut c = Cache::new(cfg);
        // 8 lines, all equal mod 64: a modulo 4-way cache keeps only 4.
        for i in 0..8u64 {
            c.fill(LineAddr::new(i * 64), false);
        }
        let resident = (0..8u64)
            .filter(|&i| c.contains(LineAddr::new(i * 64)))
            .count();
        assert!(resident >= 6, "skewing kept only {resident}/8 lines");

        let mut m = Cache::new(CacheConfig::set_associative(16 << 10, 4, 64));
        for i in 0..8u64 {
            m.fill(LineAddr::new(i * 64), false);
        }
        let resident_m = (0..8u64)
            .filter(|&i| m.contains(LineAddr::new(i * 64)))
            .count();
        assert_eq!(resident_m, 4, "modulo cache must thrash the shared set");
    }

    #[test]
    fn resident_lines_iterates_all() {
        let mut c = small();
        c.fill(LineAddr::new(1), false);
        c.fill(LineAddr::new(2), true);
        let mut lines: Vec<(u64, bool)> = c.resident_lines().map(|(l, m)| (l.raw(), m)).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![(1, false), (2, true)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        Cache::new(CacheConfig::set_associative(192, 1, 64));
    }

    #[test]
    fn fully_associative_shape_works() {
        // 1 set x 16 ways.
        let mut c = Cache::new(CacheConfig::set_associative(1 << 10, 16, 64));
        assert_eq!(c.config().sets(), 1);
        for i in 0..16u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 16);
        c.lookup(LineAddr::new(0));
        let ev = c.fill(LineAddr::new(99), false).unwrap();
        assert_eq!(ev.line, LineAddr::new(1), "LRU among all ways");
    }
}
