//! Set-associative and skewed-associative caches with per-line
//! valid/modified/shared state.
//!
//! The §4.2 machine uses 16 KB 4-way set-associative L1 caches and
//! 512 KB 4-way *skewed*-associative L2 caches (Bodin & Seznec); the
//! affinity cache is also 4-way skewed-associative. Skewed associativity
//! gives each way its own index hash, so two lines conflicting in one way
//! rarely conflict in the others.
//!
//! The cache exposes *mechanism*, not policy: `lookup`, `fill`,
//! `invalidate`, modified-bit manipulation. Write-through/write-back and
//! allocation decisions live in the machine model, which is where the
//! paper defines them (§2.1).

use execmig_obs::{impl_to_json, Json, ToJson};
use execmig_trace::LineAddr;

/// How a line maps to sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indexing {
    /// Conventional: one index hash shared by all ways (modulo sets).
    Modulo,
    /// Skewed associativity: each way has its own index hash.
    Skewed,
}

/// Geometry and indexing of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Index mapping.
    pub indexing: Indexing,
}

impl CacheConfig {
    /// A conventional set-associative cache.
    pub fn set_associative(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
            indexing: Indexing::Modulo,
        }
    }

    /// A skewed-associative cache.
    pub fn skewed(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
            indexing: Indexing::Skewed,
        }
    }

    /// Lines per way.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Total line frames.
    pub fn frames(&self) -> u64 {
        self.sets() * self.ways as u64
    }

    fn validate(&self) {
        assert!(self.ways > 0, "cache needs at least one way");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.capacity_bytes
                .is_multiple_of(self.line_bytes * self.ways as u64),
            "capacity must be a whole number of sets"
        );
        let sets = self.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (capacity {}, ways {}, line {})",
            self.capacity_bytes,
            self.ways,
            self.line_bytes
        );
    }
}

impl ToJson for Indexing {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Indexing::Modulo => "modulo",
                Indexing::Skewed => "skewed",
            }
            .to_string(),
        )
    }
}

impl_to_json!(CacheConfig {
    capacity_bytes,
    ways,
    line_bytes,
    indexing,
});

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether its modified bit was set (write-back needed).
    pub modified: bool,
}

/// Outcome of a combined [`Cache::access`] (lookup + fill-on-miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// True if the line was already resident (the access was a hit).
    pub hit: bool,
    /// The line evicted to make room, if the access missed a full set.
    pub evicted: Option<Evicted>,
}

/// Outcome of [`Cache::fill_if_absent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillIfAbsent {
    /// The line was already resident; nothing changed (not even
    /// recency — a conditional fill is not a use).
    Present,
    /// The line was inserted, evicting the carried line if any.
    Filled(Option<Evicted>),
}

/// Modified bit of [`Frame::meta`].
const MODIFIED: u64 = 1;
/// Valid bit of [`Frame::meta`].
const VALID: u64 = 2;
/// Shared bit of [`Frame::meta`]: set by coherence protocols that
/// track sharers (MESI's S, Dragon's Sc/Sm); migration-mode coherence
/// never sets it, keeping its meta words bit-identical to the
/// pre-shared-bit encoding.
const SHARED: u64 = 4;
/// LRU timestamp occupies the remaining high bits of [`Frame::meta`].
const LAST_SHIFT: u32 = 3;

/// One 16-byte cache frame: the line tag plus packed metadata.
///
/// `meta` packs `(last << 3) | shared << 2 | valid << 1 | modified`.
/// The packing makes `meta` itself the LRU victim-selection key:
/// invalid frames are zeroed (key 0, always preferred), and among valid
/// frames the timestamps are distinct (the clock ticks once per use),
/// so the low shared/valid/modified bits never reorder two candidates.
#[derive(Debug, Clone, Copy)]
struct Frame {
    line: u64,
    meta: u64,
}

impl Frame {
    #[inline(always)]
    fn is_valid(&self) -> bool {
        self.meta & VALID != 0
    }

    #[inline(always)]
    fn is_modified(&self) -> bool {
        self.meta & MODIFIED != 0
    }

    #[inline(always)]
    fn is_shared(&self) -> bool {
        self.meta & SHARED != 0
    }
}

const EMPTY: Frame = Frame { line: 0, meta: 0 };

/// A fused set scan: either the matching frame, or the victim the LRU
/// policy selects for this set (first invalid frame, else smallest
/// timestamp, earliest way on ties).
enum Probe {
    Hit(usize),
    Miss(usize),
}

/// Per-way keys for the skewing hashes.
const SKEW_KEYS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xca5a_8263_95fc_9dd7,
    0x8cb9_2ba7_2f3d_8dd7,
    0xa24b_aed4_963e_e407,
    0x9fb2_1c65_1e98_df25,
];

/// A set-associative or skewed-associative cache with true-LRU
/// replacement among the candidate frames.
///
/// Frames are stored *set-major*: the `ways` candidate frames of a
/// modulo set are one contiguous 64-byte block reached with a single
/// index computation, and a fused probe both matches the tag and tracks
/// the LRU victim (branchless min over the packed metadata word) in one
/// pass. Occupancy is maintained incrementally, so [`Cache::occupancy`]
/// is O(1) rather than a scan over every frame.
///
/// ```
/// use execmig_cache::{Cache, CacheConfig};
/// use execmig_trace::LineAddr;
///
/// let mut l2 = Cache::new(CacheConfig::skewed(512 << 10, 4, 64));
/// let line = LineAddr::new(42);
/// assert!(!l2.lookup(line));
/// let evicted = l2.fill(line, false);
/// assert!(evicted.is_none());
/// assert!(l2.lookup(line));
/// assert_eq!(l2.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets - 1`; the set count is a power of two.
    set_mask: u64,
    /// Per-way skewing keys, fixed at construction (ways ≤ 8 for
    /// skewed indexing).
    skew: [u64; 8],
    frames: Vec<Frame>,
    clock: u64,
    /// Valid-frame count, maintained by fill/invalidate.
    live: u64,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig`]): zero
    /// ways, non-power-of-two line size or set count, more than 8 ways
    /// with skewed indexing.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        if config.indexing == Indexing::Skewed {
            assert!(
                (config.ways as usize) <= SKEW_KEYS.len(),
                "skewed indexing supports at most {} ways",
                SKEW_KEYS.len()
            );
        }
        let sets = config.sets();
        Cache {
            config,
            set_mask: sets - 1,
            skew: SKEW_KEYS,
            frames: vec![EMPTY; (sets * config.ways as u64) as usize],
            clock: 0,
            live: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The skewing hash of way `key` (identical across cache sizes up
    /// to the final mask, so skewed caches of different capacities
    /// spread conflicts the same way).
    #[inline(always)]
    fn mix(z: u64) -> u64 {
        let mut z = z;
        z ^= z >> 29;
        z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z ^= z >> 32;
        z
    }

    /// One fused pass over the candidate frames of `raw`: returns the
    /// matching frame, or the LRU victim (first invalid way, else the
    /// smallest timestamp; earliest way on ties — `meta` is the
    /// comparison key, see [`Frame`]).
    #[inline]
    fn probe(&self, raw: u64) -> Probe {
        let ways = self.config.ways as usize;
        match self.config.indexing {
            Indexing::Modulo => {
                let base = ((raw & self.set_mask) as usize) * ways;
                let set = &self.frames[base..base + ways];
                let mut victim = base;
                let mut vkey = u64::MAX;
                for (w, frame) in set.iter().enumerate() {
                    if frame.is_valid() && frame.line == raw {
                        return Probe::Hit(base + w);
                    }
                    // Branchless min; strict < keeps the earliest way.
                    let better = frame.meta < vkey;
                    victim = if better { base + w } else { victim };
                    vkey = if better { frame.meta } else { vkey };
                }
                Probe::Miss(victim)
            }
            Indexing::Skewed => {
                // Compute every way's hashed frame index first: the
                // (independent) frame loads can then issue in parallel
                // instead of serialising behind each way's hash.
                let mut fidx = [0usize; 8];
                for (w, slot) in fidx.iter_mut().enumerate().take(ways) {
                    let set = Self::mix(raw ^ self.skew[w]) & self.set_mask;
                    *slot = (set as usize) * ways + w;
                }
                let mut victim = 0usize;
                let mut vkey = u64::MAX;
                for &f in fidx.iter().take(ways) {
                    let frame = &self.frames[f];
                    if frame.is_valid() && frame.line == raw {
                        return Probe::Hit(f);
                    }
                    let better = frame.meta < vkey;
                    victim = if better { f } else { victim };
                    vkey = if better { frame.meta } else { vkey };
                }
                Probe::Miss(victim)
            }
        }
    }

    #[inline]
    fn find(&self, raw: u64) -> Option<usize> {
        match self.probe(raw) {
            Probe::Hit(f) => Some(f),
            Probe::Miss(_) => None,
        }
    }

    /// Refreshes recency of the frame at `f` and ORs in `modified`;
    /// the shared bit is preserved (a local use does not change who
    /// else holds the line).
    #[inline(always)]
    fn touch(&mut self, f: usize, modified: bool) {
        self.clock += 1;
        let frame = &mut self.frames[f];
        frame.meta = (self.clock << LAST_SHIFT)
            | VALID
            | (frame.meta & (MODIFIED | SHARED))
            | modified as u64;
    }

    /// Replaces the frame at `f` with `raw`, returning the eviction.
    /// The new line starts unshared; protocols that fill in a shared
    /// state call [`Cache::set_shared`] afterwards.
    #[inline(always)]
    fn replace(&mut self, f: usize, raw: u64, modified: bool) -> Option<Evicted> {
        let old = self.frames[f];
        let evicted = if old.is_valid() {
            Some(Evicted {
                line: LineAddr::new(old.line),
                modified: old.is_modified(),
            })
        } else {
            self.live += 1;
            None
        };
        self.clock += 1;
        self.frames[f] = Frame {
            line: raw,
            meta: (self.clock << LAST_SHIFT) | VALID | modified as u64,
        };
        evicted
    }

    /// True if `line` is resident, updating its recency (a *use*).
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.touch(f, false);
                true
            }
            None => false,
        }
    }

    /// True if `line` is resident; no recency update.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line.raw()).is_some()
    }

    /// The modified bit of `line`, if resident.
    pub fn modified(&self, line: LineAddr) -> Option<bool> {
        self.find(line.raw()).map(|f| self.frames[f].is_modified())
    }

    /// Sets or clears the modified bit of `line` if resident; returns
    /// whether the line was found. Does not update recency (coherence
    /// traffic is not a local use).
    pub fn set_modified(&mut self, line: LineAddr, modified: bool) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                let frame = &mut self.frames[f];
                frame.meta = (frame.meta & !MODIFIED) | modified as u64;
                true
            }
            None => false,
        }
    }

    /// The shared bit of `line`, if resident.
    pub fn shared(&self, line: LineAddr) -> Option<bool> {
        self.find(line.raw()).map(|f| self.frames[f].is_shared())
    }

    /// Sets or clears the shared bit of `line` if resident; returns
    /// whether the line was found. Does not update recency (coherence
    /// traffic is not a local use).
    pub fn set_shared(&mut self, line: LineAddr, shared: bool) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                let frame = &mut self.frames[f];
                frame.meta = (frame.meta & !SHARED) | if shared { SHARED } else { 0 };
                true
            }
            None => false,
        }
    }

    /// Like [`Cache::lookup`], but a hit also returns the frame index
    /// of the line, for follow-up state changes without a second set
    /// scan (see [`Cache::set_modified_at`]). The index is valid until
    /// the next fill or invalidation on this cache.
    pub fn lookup_at(&mut self, line: LineAddr) -> Option<usize> {
        match self.find(line.raw()) {
            Some(f) => {
                self.touch(f, false);
                Some(f)
            }
            None => None,
        }
    }

    /// Sets or clears the modified bit of the frame at `f`, as returned
    /// by [`Cache::lookup_at`]. Does not update recency.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `f` is out of range; a stale
    /// index within range silently edits whatever line now occupies the
    /// frame, so callers must not hold indices across fills.
    pub fn set_modified_at(&mut self, f: usize, modified: bool) {
        let frame = &mut self.frames[f];
        frame.meta = (frame.meta & !MODIFIED) | modified as u64;
    }

    /// Sets or clears the shared bit of the frame at `f` (see
    /// [`Cache::set_modified_at`] for index validity). Does not update
    /// recency.
    pub fn set_shared_at(&mut self, f: usize, shared: bool) {
        let frame = &mut self.frames[f];
        frame.meta = (frame.meta & !SHARED) | if shared { SHARED } else { 0 };
    }

    /// The shared bit of the frame at `f` (see
    /// [`Cache::set_modified_at`] for index validity).
    pub fn shared_at(&self, f: usize) -> bool {
        self.frames[f].is_shared()
    }

    /// Combined lookup + fill-on-miss in a single probe: the per-access
    /// hot path of the machine's L1s. A hit refreshes recency and ORs
    /// in `modified`; a miss inserts the line, evicting the LRU
    /// candidate if every candidate frame is valid.
    ///
    /// State-equivalent to `if !lookup(l) { fill(l, m) }` for clean
    /// accesses (`m == false`, the L1 read path) — same LRU clock
    /// sequence, one set probe instead of two. With `m == true` a hit
    /// ORs the bit in, matching [`Cache::fill`].
    pub fn access(&mut self, line: LineAddr, modified: bool) -> AccessOutcome {
        let raw = line.raw();
        match self.probe(raw) {
            Probe::Hit(f) => {
                self.touch(f, modified);
                AccessOutcome {
                    hit: true,
                    evicted: None,
                }
            }
            Probe::Miss(victim) => AccessOutcome {
                hit: false,
                evicted: self.replace(victim, raw, modified),
            },
        }
    }

    /// Inserts `line` only when absent, in a single probe. A resident
    /// line is left untouched — no recency refresh, no modified-bit
    /// change (a conditional fill, e.g. a prefetch probe, is not a
    /// use). State-equivalent to `if !contains(l) { fill(l, m) }`.
    pub fn fill_if_absent(&mut self, line: LineAddr, modified: bool) -> FillIfAbsent {
        let raw = line.raw();
        match self.probe(raw) {
            Probe::Hit(_) => FillIfAbsent::Present,
            Probe::Miss(victim) => FillIfAbsent::Filled(self.replace(victim, raw, modified)),
        }
    }

    /// Inserts `line`, evicting the LRU candidate frame if every
    /// candidate is valid. Returns the eviction, if any.
    ///
    /// If the line is already resident this is a use: recency is
    /// refreshed, the modified bit is OR-ed in, and no eviction happens.
    pub fn fill(&mut self, line: LineAddr, modified: bool) -> Option<Evicted> {
        self.access(line, modified).evicted
    }

    /// Removes `line` if resident, returning its state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        self.find(line.raw()).map(|f| {
            let frame = &mut self.frames[f];
            let evicted = Evicted {
                line: LineAddr::new(frame.line),
                modified: frame.is_modified(),
            };
            frame.meta = 0;
            self.live -= 1;
            evicted
        })
    }

    /// Number of valid lines currently resident. O(1): the count is
    /// maintained incrementally by fills and invalidations.
    pub fn occupancy(&self) -> u64 {
        self.live
    }

    /// Iterates over resident lines (and their modified bits), in no
    /// particular order.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        self.frames
            .iter()
            .filter(|f| f.is_valid())
            .map(|f| (LineAddr::new(f.line), f.is_modified()))
    }

    /// Iterates over resident lines as `(line, modified, shared)`
    /// triples, in no particular order — the full per-line coherence
    /// state an invariant kernel or contents differ needs.
    pub fn resident_states(&self) -> impl Iterator<Item = (LineAddr, bool, bool)> + '_ {
        self.frames
            .iter()
            .filter(|f| f.is_valid())
            .map(|f| (LineAddr::new(f.line), f.is_modified(), f.is_shared()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 sets x 2 ways x 64 B = 1 KB
        Cache::new(CacheConfig::set_associative(1 << 10, 2, 64))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 8);
        assert_eq!(c.config().frames(), 16);
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = small();
        let l = LineAddr::new(5);
        assert!(!c.lookup(l));
        assert_eq!(c.fill(l, false), None);
        assert!(c.lookup(l));
        assert!(c.contains(l));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conflict_eviction_is_lru() {
        let mut c = small();
        // Lines 0, 8, 16 all map to set 0 (8 sets, modulo).
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(8), false);
        // Touch 0 so 8 is LRU.
        assert!(c.lookup(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(16), false).expect("must evict");
        assert_eq!(ev.line, LineAddr::new(8));
        assert!(!ev.modified);
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(16)));
    }

    #[test]
    fn modified_bit_tracks_through_eviction() {
        let mut c = small();
        c.fill(LineAddr::new(0), true);
        c.fill(LineAddr::new(8), false);
        c.fill(LineAddr::new(16), false); // evicts 0 (LRU)
        let mut c2 = small();
        c2.fill(LineAddr::new(0), true);
        c2.fill(LineAddr::new(8), false);
        c2.lookup(LineAddr::new(8));
        let ev = c2.fill(LineAddr::new(16), false).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(ev.modified, "dirty eviction must report modified");
    }

    #[test]
    fn refill_ors_modified_and_refreshes() {
        let mut c = small();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.modified(LineAddr::new(0)), Some(false));
        assert_eq!(c.fill(LineAddr::new(0), true), None);
        assert_eq!(c.modified(LineAddr::new(0)), Some(true));
        // A clean refill must not clear the bit.
        assert_eq!(c.fill(LineAddr::new(0), false), None);
        assert_eq!(c.modified(LineAddr::new(0)), Some(true));
    }

    #[test]
    fn set_modified_reports_presence() {
        let mut c = small();
        assert!(!c.set_modified(LineAddr::new(3), true));
        c.fill(LineAddr::new(3), false);
        assert!(c.set_modified(LineAddr::new(3), true));
        assert_eq!(c.modified(LineAddr::new(3)), Some(true));
        assert!(c.set_modified(LineAddr::new(3), false));
        assert_eq!(c.modified(LineAddr::new(3)), Some(false));
    }

    #[test]
    fn shared_bit_round_trips_and_survives_uses() {
        let mut c = small();
        assert!(!c.set_shared(LineAddr::new(3), true), "absent line");
        c.fill(LineAddr::new(3), false);
        assert_eq!(c.shared(LineAddr::new(3)), Some(false));
        assert!(c.set_shared(LineAddr::new(3), true));
        assert_eq!(c.shared(LineAddr::new(3)), Some(true));
        // A local use (lookup) refreshes recency but must not clear
        // the shared bit, and modified-bit traffic must not either.
        assert!(c.lookup(LineAddr::new(3)));
        assert_eq!(c.shared(LineAddr::new(3)), Some(true));
        assert!(c.set_modified(LineAddr::new(3), true));
        assert_eq!(c.shared(LineAddr::new(3)), Some(true));
        assert_eq!(c.modified(LineAddr::new(3)), Some(true));
        assert!(c.set_shared(LineAddr::new(3), false));
        assert_eq!(c.shared(LineAddr::new(3)), Some(false));
        assert_eq!(c.modified(LineAddr::new(3)), Some(true));
    }

    #[test]
    fn refill_after_eviction_starts_unshared() {
        let mut c = small();
        // Set 0 holds lines 0 and 8; mark 0 shared, then evict it.
        c.fill(LineAddr::new(0), false);
        c.set_shared(LineAddr::new(0), true);
        c.fill(LineAddr::new(8), false);
        c.fill(LineAddr::new(16), false); // evicts 0 (LRU)
        assert!(!c.contains(LineAddr::new(0)));
        // Refill into the same frame: the stale shared bit is gone.
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.shared(LineAddr::new(0)), Some(false));
    }

    #[test]
    fn shared_bit_does_not_perturb_lru_order() {
        // Identical reference streams with and without shared-bit
        // traffic must evict identically: the timestamp dominates the
        // packed key.
        let mut plain = small();
        let mut marked = small();
        let mut x = 1u64;
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr::new(x % 40);
            let a = plain.fill(line, false);
            let b = marked.fill(line, false);
            marked.set_shared(line, x.is_multiple_of(3));
            assert_eq!(a, b, "step {i}");
        }
        let mut a: Vec<u64> = plain.resident_lines().map(|(l, _)| l.raw()).collect();
        let mut b: Vec<u64> = marked.resident_lines().map(|(l, _)| l.raw()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn resident_states_reports_all_three_bits() {
        let mut c = small();
        c.fill(LineAddr::new(1), false);
        c.fill(LineAddr::new(2), true);
        c.set_shared(LineAddr::new(2), true);
        let mut states: Vec<(u64, bool, bool)> = c
            .resident_states()
            .map(|(l, m, s)| (l.raw(), m, s))
            .collect();
        states.sort_unstable();
        assert_eq!(states, vec![(1, false, false), (2, true, true)]);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(LineAddr::new(7), true);
        let ev = c.invalidate(LineAddr::new(7)).unwrap();
        assert!(ev.modified);
        assert!(!c.contains(LineAddr::new(7)));
        assert!(c.invalidate(LineAddr::new(7)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small();
        for i in 0..100u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 16);
    }

    #[test]
    fn skewed_spreads_conflicts() {
        // 64 sets x 4 ways. Lines that collide in a modulo cache
        // (same low bits) should mostly not collide in all skewed ways.
        let cfg = CacheConfig::skewed(16 << 10, 4, 64);
        let mut c = Cache::new(cfg);
        // 8 lines, all equal mod 64: a modulo 4-way cache keeps only 4.
        for i in 0..8u64 {
            c.fill(LineAddr::new(i * 64), false);
        }
        let resident = (0..8u64)
            .filter(|&i| c.contains(LineAddr::new(i * 64)))
            .count();
        assert!(resident >= 6, "skewing kept only {resident}/8 lines");

        let mut m = Cache::new(CacheConfig::set_associative(16 << 10, 4, 64));
        for i in 0..8u64 {
            m.fill(LineAddr::new(i * 64), false);
        }
        let resident_m = (0..8u64)
            .filter(|&i| m.contains(LineAddr::new(i * 64)))
            .count();
        assert_eq!(resident_m, 4, "modulo cache must thrash the shared set");
    }

    #[test]
    fn resident_lines_iterates_all() {
        let mut c = small();
        c.fill(LineAddr::new(1), false);
        c.fill(LineAddr::new(2), true);
        let mut lines: Vec<(u64, bool)> = c.resident_lines().map(|(l, m)| (l.raw(), m)).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![(1, false), (2, true)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        Cache::new(CacheConfig::set_associative(192, 1, 64));
    }

    /// The incremental occupancy counter always matches a full scan.
    fn scan_occupancy(c: &Cache) -> u64 {
        c.resident_lines().count() as u64
    }

    #[test]
    fn access_equals_lookup_then_fill() {
        // Drive two caches through the same reference stream, one with
        // the fused access(), one with the legacy lookup-then-fill
        // sequence; every observable must stay identical.
        let mut fused = small();
        let mut split = small();
        let mut x = 7u64;
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr::new(x % 40);
            // The L1 read path: clean accesses only (a hit with
            // modified=true ORs the bit in, which plain lookup would
            // not — see the access() contract).
            let out = fused.access(line, false);
            let hit = split.lookup(line);
            let evicted = if hit { None } else { split.fill(line, false) };
            assert_eq!(out.hit, hit, "step {i}");
            assert_eq!(out.evicted, evicted, "step {i}");
            assert_eq!(fused.occupancy(), split.occupancy(), "step {i}");
            assert_eq!(fused.occupancy(), scan_occupancy(&fused), "step {i}");
        }
        let mut a: Vec<_> = fused.resident_lines().collect();
        let mut b: Vec<_> = split.resident_lines().collect();
        a.sort_unstable_by_key(|(l, _)| l.raw());
        b.sort_unstable_by_key(|(l, _)| l.raw());
        assert_eq!(a, b);
    }

    #[test]
    fn fill_if_absent_does_not_touch_resident_lines() {
        let mut c = small();
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(8), false);
        // 0 is LRU. A conditional fill of 8 must NOT refresh it…
        assert_eq!(
            c.fill_if_absent(LineAddr::new(8), true),
            FillIfAbsent::Present
        );
        // …so its modified bit is untouched and 0 is still evicted
        // first? No: 0 is LRU, so 16 evicts 0.
        assert_eq!(c.modified(LineAddr::new(8)), Some(false));
        let ev = c.fill(LineAddr::new(16), false).expect("set is full");
        assert_eq!(
            ev.line,
            LineAddr::new(0),
            "fill_if_absent refreshed recency"
        );
        // An absent line is inserted with the given modified bit.
        match c.fill_if_absent(LineAddr::new(24), true) {
            FillIfAbsent::Filled(ev) => assert!(ev.is_some(), "set was full"),
            FillIfAbsent::Present => panic!("24 was absent"),
        }
        assert_eq!(c.modified(LineAddr::new(24)), Some(true));
    }

    #[test]
    fn occupancy_counter_tracks_invalidate_and_refill() {
        let mut c = small();
        for i in 0..100u64 {
            c.fill(LineAddr::new(i), i % 2 == 0);
            if i % 7 == 0 {
                c.invalidate(LineAddr::new(i / 2));
            }
            assert_eq!(c.occupancy(), scan_occupancy(&c), "step {i}");
        }
        for i in 0..100u64 {
            c.invalidate(LineAddr::new(i));
        }
        assert_eq!(c.occupancy(), 0);
        assert_eq!(scan_occupancy(&c), 0);
    }

    #[test]
    fn skewed_access_matches_legacy_sequence() {
        let cfg = CacheConfig::skewed(16 << 10, 4, 64);
        let mut fused = Cache::new(cfg);
        let mut split = Cache::new(cfg);
        let mut x = 99u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr::new(x % 600);
            let out = fused.access(line, false);
            let hit = split.lookup(line);
            let evicted = if hit { None } else { split.fill(line, false) };
            assert_eq!((out.hit, out.evicted), (hit, evicted), "step {i}");
        }
        assert_eq!(fused.occupancy(), split.occupancy());
        assert_eq!(fused.occupancy(), scan_occupancy(&fused));
    }

    #[test]
    fn fully_associative_shape_works() {
        // 1 set x 16 ways.
        let mut c = Cache::new(CacheConfig::set_associative(1 << 10, 16, 64));
        assert_eq!(c.config().sets(), 1);
        for i in 0..16u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 16);
        c.lookup(LineAddr::new(0));
        let ev = c.fill(LineAddr::new(99), false).unwrap();
        assert_eq!(ev.line, LineAddr::new(1), "LRU among all ways");
    }
}
