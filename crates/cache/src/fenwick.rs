//! A Fenwick (binary indexed) tree over a 0/1 occupancy array.
//!
//! Backs [`LruStack`](crate::LruStack): each access slot is marked
//! occupied while it is the most recent access of some line, and a stack
//! distance is a range-count of occupied slots.

/// Fenwick tree counting occupied slots in `[0, len)`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Creates a tree over `len` initially-empty slots.
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn add(&mut self, slot: usize, delta: i32) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Marks `slot` occupied.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `slot` is out of range; marking an
    /// already-occupied slot corrupts the counts, which callers prevent.
    pub fn set(&mut self, slot: usize) {
        debug_assert!(slot < self.len());
        self.add(slot, 1);
    }

    /// Marks `slot` empty.
    pub fn clear(&mut self, slot: usize) {
        debug_assert!(slot < self.len());
        self.add(slot, -1);
    }

    /// Number of occupied slots in `[0, end)`.
    pub fn prefix(&self, end: usize) -> u32 {
        let mut i = end.min(self.len());
        let mut sum = 0u32;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Number of occupied slots in `[lo, hi)`.
    pub fn count_range(&self, lo: usize, hi: usize) -> u32 {
        if lo >= hi {
            return 0;
        }
        self.prefix(hi) - self.prefix(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_counts_zero() {
        let f = Fenwick::new(16);
        assert_eq!(f.prefix(16), 0);
        assert_eq!(f.count_range(0, 16), 0);
        assert!(!f.is_empty());
        assert!(Fenwick::new(0).is_empty());
    }

    #[test]
    fn set_and_count() {
        let mut f = Fenwick::new(10);
        f.set(0);
        f.set(4);
        f.set(9);
        assert_eq!(f.prefix(10), 3);
        assert_eq!(f.prefix(5), 2);
        assert_eq!(f.prefix(4), 1);
        assert_eq!(f.count_range(1, 10), 2);
        assert_eq!(f.count_range(5, 9), 0);
        assert_eq!(f.count_range(4, 5), 1);
    }

    #[test]
    fn clear_removes() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.set(i);
        }
        f.clear(3);
        f.clear(7);
        assert_eq!(f.prefix(8), 6);
        assert_eq!(f.count_range(3, 4), 0);
    }

    #[test]
    fn count_range_degenerate() {
        let mut f = Fenwick::new(4);
        f.set(2);
        assert_eq!(f.count_range(3, 2), 0);
        assert_eq!(f.count_range(2, 2), 0);
    }

    #[test]
    fn matches_naive_reference() {
        // Deterministic pseudo-random workout against a boolean array.
        let n = 200;
        let mut f = Fenwick::new(n);
        let mut naive = vec![false; n];
        let mut state = 12345u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let slot = (state >> 33) as usize % n;
            if naive[slot] {
                f.clear(slot);
                naive[slot] = false;
            } else {
                f.set(slot);
                naive[slot] = true;
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lo = (state >> 40) as usize % n;
            let hi = lo + (state >> 20) as usize % (n - lo + 1);
            let expect = naive[lo..hi].iter().filter(|&&b| b).count() as u32;
            assert_eq!(f.count_range(lo, hi), expect);
        }
    }
}
