//! An O(1) fully-associative LRU cache.
//!
//! §4.1 filters the reference stream through 16 KB *fully-associative*
//! LRU L1 caches before profiling. A way-scan implementation would cost
//! O(capacity) per access; this one keeps an intrusive doubly-linked
//! recency list over an arena plus a hash map, for O(1) expected time.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    line: u64,
    prev: u32,
    next: u32,
}

/// Fully-associative cache with true LRU replacement.
///
/// ```
/// use execmig_cache::FullyAssocLru;
/// let mut c = FullyAssocLru::new(2);
/// assert!(!c.access(1)); // miss, fill
/// assert!(!c.access(2)); // miss, fill
/// assert!(c.access(1));  // hit
/// assert!(!c.access(3)); // miss, evicts 2 (LRU)
/// assert!(!c.access(2)); // miss again
/// ```
#[derive(Debug, Clone)]
pub struct FullyAssocLru {
    capacity: usize,
    nodes: Vec<Node>,
    index: HashMap<u64, u32>,
    /// Most recently used node, or NIL.
    head: u32,
    /// Least recently used node, or NIL.
    tail: u32,
}

impl FullyAssocLru {
    /// Creates a cache holding `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one line");
        assert!(capacity < NIL as usize, "capacity too large");
        FullyAssocLru {
            capacity,
            nodes: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    /// Lines the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `line` is resident (no recency update).
    pub fn contains(&self, line: u64) -> bool {
        self.index.contains_key(&line)
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[i as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    /// Accesses `line`: returns true on hit. On a miss the line is
    /// filled, evicting the LRU line if the cache is full.
    pub fn access(&mut self, line: u64) -> bool {
        if let Some(&i) = self.index.get(&line) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return true;
        }
        let i = if self.index.len() < self.capacity {
            let i = self.nodes.len() as u32;
            self.nodes.push(Node {
                line,
                prev: NIL,
                next: NIL,
            });
            i
        } else {
            // Reuse the LRU node.
            let i = self.tail;
            let victim = self.nodes[i as usize].line;
            self.index.remove(&victim);
            self.unlink(i);
            self.nodes[i as usize].line = line;
            i
        };
        self.index.insert(line, i);
        self.push_front(i);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: recency-ordered Vec.
    struct NaiveLru {
        cap: usize,
        order: Vec<u64>, // most recent last
    }

    impl NaiveLru {
        fn access(&mut self, line: u64) -> bool {
            let hit = self.order.contains(&line);
            self.order.retain(|&l| l != line);
            self.order.push(line);
            if self.order.len() > self.cap {
                self.order.remove(0);
            }
            hit
        }
    }

    #[test]
    fn basic_hit_miss_evict() {
        let mut c = FullyAssocLru::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert_eq!(c.len(), 2);
        assert!(c.access(1));
        assert!(!c.access(3)); // evicts 2
        assert!(!c.contains(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn capacity_one() {
        let mut c = FullyAssocLru::new(1);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(1));
    }

    #[test]
    fn matches_naive_on_random_stream() {
        for cap in [1usize, 2, 7, 64] {
            let mut fast = FullyAssocLru::new(cap);
            let mut naive = NaiveLru {
                cap,
                order: Vec::new(),
            };
            let mut state = 7u64;
            for i in 0..20_000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let line = (state >> 33) % (cap as u64 * 3);
                assert_eq!(
                    fast.access(line),
                    naive.access(line),
                    "cap {cap} step {i} line {line}"
                );
            }
        }
    }

    #[test]
    fn circular_over_capacity_always_misses() {
        let mut c = FullyAssocLru::new(100);
        // Warm up.
        for e in 0..150u64 {
            c.access(e);
        }
        // LRU on a circular stream larger than capacity: every miss.
        for round in 0..3 {
            for e in 0..150u64 {
                assert!(!c.access(e), "round {round} element {e}");
            }
        }
    }

    #[test]
    fn circular_within_capacity_always_hits() {
        let mut c = FullyAssocLru::new(100);
        for e in 0..100u64 {
            c.access(e);
        }
        for _ in 0..3 {
            for e in 0..100u64 {
                assert!(c.access(e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_zero_capacity() {
        FullyAssocLru::new(0);
    }
}
