#![warn(missing_docs)]

//! Cache-simulation substrate for the execution-migration study.
//!
//! The paper's evaluation needs three cache mechanisms:
//!
//! - set-associative and **skewed-associative** caches ([`Cache`]) — the
//!   4-core experiment of §4.2 uses 4-way set-associative 16 KB L1s and
//!   512 KB 4-way *skewed*-associative L2s (after Bodin & Seznec), plus a
//!   skewed-associative affinity cache;
//! - an O(1) **fully-associative LRU** cache ([`FullyAssocLru`]) — the
//!   LRU-stack experiment of §4.1 filters the reference stream through
//!   16 KB fully-associative LRU L1 caches;
//! - **Mattson LRU stack-distance profiling** ([`LruStack`],
//!   [`StackProfile`]) — Figures 4 and 5 plot, for each benchmark, the
//!   fraction of L1-filtered references whose stack depth exceeds a given
//!   cache size, for a single stack (`p1`) and for four affinity-split
//!   stacks (`p4`).
//!
//! ```
//! use execmig_cache::{LruStack, StackProfile};
//!
//! let mut stack = LruStack::new();
//! let mut profile = StackProfile::new(1 << 20);
//! for line in [1u64, 2, 3, 1, 2, 3] {
//!     profile.record(stack.access(line));
//! }
//! assert_eq!(profile.total(), 6);
//! // The three re-references have stack depth 3; the three first
//! // touches count as infinitely deep.
//! assert_eq!(profile.frac_deeper_than(2), 1.0);
//! assert_eq!(profile.frac_deeper_than(3), 0.5);
//! ```

pub mod cache;
pub mod fenwick;
pub mod fully_assoc;
pub mod profile;
pub mod stack;

pub use cache::{AccessOutcome, Cache, CacheConfig, Evicted, FillIfAbsent, Indexing};
pub use fully_assoc::FullyAssocLru;
pub use profile::StackProfile;
pub use stack::LruStack;
