//! Stack-depth histograms and the `p(x)` miss-ratio curves of
//! Figures 4 and 5.

/// Histogram of stack depths, yielding the fraction of references whose
/// depth exceeds any given cache size.
///
/// The paper's `p(x)` "gives the fraction of dynamic references (i.e.,
/// L1 misses) with a LRU stack depth greater than `x`, considering that a
/// reference which is encountered for the first time has an infinite LRU
/// stack depth" (§4.1).
///
/// ```
/// use execmig_cache::StackProfile;
/// let mut p = StackProfile::new(1024);
/// p.record(Some(5));
/// p.record(Some(100));
/// p.record(None); // first touch
/// assert_eq!(p.frac_deeper_than(4), 1.0);
/// assert_eq!(p.frac_deeper_than(5), 2.0 / 3.0);
/// assert_eq!(p.frac_deeper_than(1000), 1.0 / 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct StackProfile {
    /// counts[d] = references with depth d (1-based; index 0 unused).
    counts: Vec<u64>,
    /// References deeper than the tracked range.
    overflow: u64,
    /// First-touch references (infinite depth).
    infinite: u64,
    total: u64,
}

impl StackProfile {
    /// Creates a profile tracking depths up to `max_depth` lines
    /// exactly; deeper references fall into an overflow bucket that
    /// still counts as "deeper than x" for every tracked `x`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth == 0`.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth > 0, "profile needs a positive depth range");
        StackProfile {
            counts: vec![0; max_depth + 1],
            overflow: 0,
            infinite: 0,
            total: 0,
        }
    }

    /// Records one reference's stack depth (`None` = first touch).
    pub fn record(&mut self, depth: Option<u64>) {
        self.total += 1;
        match depth {
            None => self.infinite += 1,
            Some(d) if (d as usize) < self.counts.len() => self.counts[d as usize] += 1,
            Some(_) => self.overflow += 1,
        }
    }

    /// Total references recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First-touch references recorded.
    pub fn first_touches(&self) -> u64 {
        self.infinite
    }

    /// Number of references with depth strictly greater than `x` lines
    /// (including overflow and first touches).
    pub fn count_deeper_than(&self, x: u64) -> u64 {
        let start = (x as usize + 1).min(self.counts.len());
        let tracked: u64 = self.counts[start..].iter().sum();
        tracked + self.overflow + self.infinite
    }

    /// Fraction of references with depth strictly greater than `x`
    /// lines — the miss ratio of a fully-associative LRU cache holding
    /// `x` lines. Returns 0 when nothing was recorded.
    pub fn frac_deeper_than(&self, x: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_deeper_than(x) as f64 / self.total as f64
    }

    /// Merges another profile into this one.
    ///
    /// # Panics
    ///
    /// Panics if the profiles track different depth ranges.
    pub fn merge(&mut self, other: &StackProfile) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge profiles with different depth ranges"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.infinite += other.infinite;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_zero() {
        let p = StackProfile::new(10);
        assert_eq!(p.total(), 0);
        assert_eq!(p.frac_deeper_than(5), 0.0);
    }

    #[test]
    fn monotone_in_x() {
        let mut p = StackProfile::new(100);
        for d in 1..=100 {
            p.record(Some(d));
        }
        let mut prev = 2.0;
        for x in 0..=100 {
            let f = p.frac_deeper_than(x);
            assert!(f <= prev, "p({x}) = {f} rose above {prev}");
            prev = f;
        }
        assert_eq!(p.frac_deeper_than(0), 1.0);
        assert_eq!(p.frac_deeper_than(100), 0.0);
    }

    #[test]
    fn overflow_counts_as_deep() {
        let mut p = StackProfile::new(10);
        p.record(Some(1_000_000));
        assert_eq!(p.frac_deeper_than(10), 1.0);
        assert_eq!(p.frac_deeper_than(0), 1.0);
    }

    #[test]
    fn first_touches_always_deeper() {
        let mut p = StackProfile::new(10);
        p.record(None);
        p.record(Some(2));
        assert_eq!(p.first_touches(), 1);
        assert_eq!(p.frac_deeper_than(10), 0.5);
    }

    #[test]
    fn exact_boundary_semantics() {
        // Depth d counts as deeper than x iff d > x: a cache of x lines
        // hits depths <= x.
        let mut p = StackProfile::new(10);
        p.record(Some(5));
        assert_eq!(p.frac_deeper_than(4), 1.0);
        assert_eq!(p.frac_deeper_than(5), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = StackProfile::new(10);
        let mut b = StackProfile::new(10);
        a.record(Some(3));
        b.record(Some(7));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_deeper_than(3), 2);
        assert_eq!(a.count_deeper_than(7), 1);
    }

    #[test]
    #[should_panic(expected = "different depth ranges")]
    fn merge_rejects_mismatched() {
        let mut a = StackProfile::new(10);
        let b = StackProfile::new(20);
        a.merge(&b);
    }
}
