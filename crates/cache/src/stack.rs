//! Mattson LRU stack-distance computation.
//!
//! For each reference, the *stack depth* is the line's position in the
//! LRU stack: 1 if it is the most recently used line, `k` if `k − 1`
//! distinct other lines were referenced since its previous access. A
//! fully-associative LRU cache of `C` lines hits exactly the references
//! with depth ≤ `C` (Mattson et al., 1970), so one pass yields the miss
//! ratio for *every* cache size — the `p(x)` curves of Figures 4 and 5.
//!
//! First-touch references have no previous access; the paper treats them
//! as infinitely deep, represented here as `None`.
//!
//! Complexity is O(log n) per access via a Fenwick tree over access
//! slots, with periodic compaction.

use crate::fenwick::Fenwick;
use std::collections::HashMap;

const MIN_CAPACITY: usize = 1024;

/// An LRU stack producing a stack depth per reference.
///
/// ```
/// use execmig_cache::LruStack;
/// let mut s = LruStack::new();
/// assert_eq!(s.access(10), None);    // first touch: infinite depth
/// assert_eq!(s.access(20), None);
/// assert_eq!(s.access(10), Some(2)); // one distinct line in between
/// assert_eq!(s.access(10), Some(1)); // immediate re-reference
/// ```
#[derive(Debug, Clone)]
pub struct LruStack {
    /// line -> slot of its most recent access.
    pos: HashMap<u64, usize>,
    occupied: Fenwick,
    next_slot: usize,
}

impl LruStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LruStack {
            pos: HashMap::new(),
            occupied: Fenwick::new(MIN_CAPACITY),
            next_slot: 0,
        }
    }

    /// Number of distinct lines ever referenced (the stack height).
    pub fn distinct_lines(&self) -> usize {
        self.pos.len()
    }

    /// References `line`; returns its stack depth (1-based), or `None`
    /// on first touch.
    pub fn access(&mut self, line: u64) -> Option<u64> {
        let depth = match self.pos.remove(&line) {
            Some(slot) => {
                let after = self.occupied.count_range(slot + 1, self.next_slot);
                self.occupied.clear(slot);
                Some(after as u64 + 1)
            }
            None => None,
        };
        if self.next_slot == self.occupied.len() {
            self.compact();
        }
        self.occupied.set(self.next_slot);
        self.pos.insert(line, self.next_slot);
        self.next_slot += 1;
        depth
    }

    /// Reassigns slots compactly, preserving recency order. Called with
    /// the current line already removed from `pos`, so every `pos` entry
    /// owns exactly one occupied slot.
    fn compact(&mut self) {
        let mut entries: Vec<(u64, usize)> = self.pos.iter().map(|(&l, &s)| (l, s)).collect();
        entries.sort_unstable_by_key(|&(_, s)| s);
        let live = entries.len();
        let capacity = (live * 2).max(MIN_CAPACITY);
        self.occupied = Fenwick::new(capacity);
        for (new_slot, (line, _)) in entries.into_iter().enumerate() {
            self.occupied.set(new_slot);
            self.pos.insert(line, new_slot);
        }
        self.next_slot = live;
    }
}

impl Default for LruStack {
    fn default() -> Self {
        LruStack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference implementation: a vector ordered by recency.
    struct NaiveStack {
        order: Vec<u64>,
    }

    impl NaiveStack {
        fn new() -> Self {
            NaiveStack { order: Vec::new() }
        }

        fn access(&mut self, line: u64) -> Option<u64> {
            let depth = self
                .order
                .iter()
                .rev()
                .position(|&l| l == line)
                .map(|p| p as u64 + 1);
            self.order.retain(|&l| l != line);
            self.order.push(line);
            depth
        }
    }

    #[test]
    fn first_touch_is_infinite() {
        let mut s = LruStack::new();
        assert_eq!(s.access(1), None);
        assert_eq!(s.access(2), None);
        assert_eq!(s.distinct_lines(), 2);
    }

    #[test]
    fn immediate_reref_is_depth_one() {
        let mut s = LruStack::new();
        s.access(5);
        assert_eq!(s.access(5), Some(1));
        assert_eq!(s.access(5), Some(1));
    }

    #[test]
    fn circular_pattern_has_depth_n() {
        let n = 100u64;
        let mut s = LruStack::new();
        for e in 0..n {
            assert_eq!(s.access(e), None);
        }
        for round in 0..5 {
            for e in 0..n {
                assert_eq!(s.access(e), Some(n), "round {round} element {e}");
            }
        }
    }

    #[test]
    fn matches_naive_on_random_stream() {
        let mut fast = LruStack::new();
        let mut naive = NaiveStack::new();
        let mut state = 99u64;
        for i in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (state >> 33) % 300;
            assert_eq!(fast.access(line), naive.access(line), "step {i}");
        }
    }

    #[test]
    fn compaction_preserves_depths() {
        // Force many compactions with a tiny live set and lots of
        // accesses: capacity stays at MIN_CAPACITY while slots churn.
        let mut fast = LruStack::new();
        let mut naive = NaiveStack::new();
        for i in 0..50_000u64 {
            let line = i % 7;
            assert_eq!(fast.access(line), naive.access(line), "step {i}");
        }
    }

    #[test]
    fn distinct_lines_counts() {
        let mut s = LruStack::new();
        for i in 0..1000 {
            s.access(i % 37);
        }
        assert_eq!(s.distinct_lines(), 37);
    }
}
