//! The lockstep differ: `execmig_machine::Machine` vs
//! [`RefMachine`](crate::refmachine::RefMachine) on the same access
//! stream.
//!
//! After every access the differ compares the full per-step observable
//! surface — hit/miss class counters, the executing core, the
//! controller's `F`/`A_R`/subset and its request/migration counters,
//! and the update-bus byte totals — and stops at the first divergent
//! step with both machine states pretty-printed. An end-of-run
//! [`final_check`](Lockstep::final_check) additionally compares cache
//! *contents* (resident lines and modified bits per level), which is
//! too expensive to scan per step but catches recency/victim drift
//! that identical miss counters can hide.

use std::fmt;

use execmig_machine::{Machine, MachineConfig, MachineStats};
use execmig_trace::{Access, LineSize, Workload, WorkloadEvent};

use crate::refmachine::{config_supported, RefMachine};

/// One captured access: what the workload produced and the cumulative
/// instruction count after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The access itself.
    pub access: Access,
    /// Workload instruction total after this access.
    pub instructions: u64,
}

/// One observable that differs between the two implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Dotted observable name (e.g. `stats.l2_misses`).
    pub field: String,
    /// The optimized machine's value.
    pub machine: i128,
    /// The reference model's value.
    pub reference: i128,
}

/// The first divergent step of a lockstep run.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Zero-based index of the divergent access in the stream.
    pub step: usize,
    /// The access that exposed the divergence.
    pub access: Access,
    /// Workload instruction total at that access.
    pub instructions: u64,
    /// Every observable that differs, in declaration order.
    pub diffs: Vec<FieldDiff>,
    /// Pretty-printed optimized-machine state.
    pub machine_state: String,
    /// Pretty-printed reference-model state.
    pub reference_state: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at step {} (instruction {}): {}",
            self.step, self.instructions, self.access
        )?;
        for d in &self.diffs {
            writeln!(
                f,
                "  {:<28} machine={} reference={}",
                d.field, d.machine, d.reference
            )?;
        }
        writeln!(f, "machine state:")?;
        writeln!(f, "{}", self.machine_state)?;
        writeln!(f, "reference state:")?;
        write!(f, "{}", self.reference_state)
    }
}

/// Per-`MachineStats` observable list, shared by the per-step and the
/// end-of-run comparison.
fn stats_diffs(m: &MachineStats, r: &MachineStats, out: &mut Vec<FieldDiff>) {
    let pairs: [(&str, u64, u64); 24] = [
        ("stats.instructions", m.instructions, r.instructions),
        ("stats.accesses", m.accesses, r.accesses),
        ("stats.ifetches", m.ifetches, r.ifetches),
        ("stats.loads", m.loads, r.loads),
        ("stats.stores", m.stores, r.stores),
        ("stats.il1_misses", m.il1_misses, r.il1_misses),
        ("stats.dl1_misses", m.dl1_misses, r.dl1_misses),
        ("stats.l1_requests", m.l1_requests, r.l1_requests),
        ("stats.l2_accesses", m.l2_accesses, r.l2_accesses),
        ("stats.l2_misses", m.l2_misses, r.l2_misses),
        (
            "stats.l2_to_l2_forwards",
            m.l2_to_l2_forwards,
            r.l2_to_l2_forwards,
        ),
        ("stats.l3_fetches", m.l3_fetches, r.l3_fetches),
        ("stats.l3_writebacks", m.l3_writebacks, r.l3_writebacks),
        ("stats.migrations", m.migrations, r.migrations),
        (
            "stats.store_broadcast_updates",
            m.store_broadcast_updates,
            r.store_broadcast_updates,
        ),
        ("stats.prefetch_fills", m.prefetch_fills, r.prefetch_fills),
        ("stats.l3_misses", m.l3_misses, r.l3_misses),
        ("stats.invalidations", m.invalidations, r.invalidations),
        (
            "stats.coherence_updates",
            m.coherence_updates,
            r.coherence_updates,
        ),
        (
            "stats.coherence_bus_bytes",
            m.coherence_bus_bytes,
            r.coherence_bus_bytes,
        ),
        ("bus.reg_bytes", m.bus.reg_bytes, r.bus.reg_bytes),
        ("bus.store_bytes", m.bus.store_bytes, r.bus.store_bytes),
        ("bus.branch_bytes", m.bus.branch_bytes, r.bus.branch_bytes),
        (
            "bus.l1_mirror_bytes",
            m.bus.l1_mirror_bytes,
            r.bus.l1_mirror_bytes,
        ),
    ];
    for (name, a, b) in pairs {
        if a != b {
            out.push(FieldDiff {
                field: name.to_string(),
                machine: i128::from(a),
                reference: i128::from(b),
            });
        }
    }
}

fn push_diff(out: &mut Vec<FieldDiff>, field: &str, machine: i128, reference: i128) {
    if machine != reference {
        out.push(FieldDiff {
            field: field.to_string(),
            machine,
            reference,
        });
    }
}

/// Runs the optimized machine and the reference model in lockstep.
pub struct Lockstep {
    machine: Machine,
    reference: RefMachine,
    line: LineSize,
    steps: usize,
}

impl Lockstep {
    /// Builds both implementations from the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or outside the reference
    /// model's coverage (see
    /// [`config_supported`](crate::refmachine::config_supported)).
    pub fn new(config: MachineConfig) -> Self {
        assert!(
            config_supported(&config),
            "configuration outside reference-model coverage"
        );
        let line = config.validate();
        Lockstep {
            reference: RefMachine::new(&config),
            machine: Machine::new(config),
            line,
            steps: 0,
        }
    }

    /// Accesses processed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The optimized machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The reference model.
    pub fn reference(&self) -> &RefMachine {
        &self.reference
    }

    /// Feeds one access to both implementations and compares the
    /// per-step observables. Returns the report on first divergence.
    pub fn step(&mut self, access: Access, instructions_now: u64) -> Option<DivergenceReport> {
        let line = self.line.line_of(access.addr);
        self.machine
            .step_tagged(access.kind, line, instructions_now, access.pointer);
        self.reference
            .step_tagged(access.kind, line, instructions_now, access.pointer);
        let step = self.steps;
        self.steps += 1;
        let diffs = self.observable_diffs();
        if diffs.is_empty() {
            return None;
        }
        Some(self.report(step, access, instructions_now, diffs))
    }

    /// Replays a captured trace; returns the first divergence.
    pub fn run_trace(&mut self, trace: &[TraceStep]) -> Option<DivergenceReport> {
        for t in trace {
            if let Some(report) = self.step(t.access, t.instructions) {
                return Some(report);
            }
        }
        None
    }

    /// Replays a captured trace through the *block* API: the optimized
    /// machine consumes it in `run_block` chunks whose sizes cycle
    /// through `block_sizes` (clamped to the events remaining, so
    /// oversized entries exercise the overshooting-final-block case),
    /// while the reference model steps event by event. Observables are
    /// compared at every block boundary — the granularity at which
    /// [`Machine::run_block`] promises bit-identity with per-step
    /// execution. Returns the first divergent boundary.
    ///
    /// # Panics
    ///
    /// Panics if `block_sizes` is empty or contains 0.
    pub fn run_trace_blocks(
        &mut self,
        trace: &[TraceStep],
        block_sizes: &[usize],
    ) -> Option<DivergenceReport> {
        assert!(
            block_sizes.iter().all(|&n| n > 0),
            "block sizes must be positive"
        );
        let mut sizes = block_sizes.iter().cycle();
        let mut at = 0usize;
        let mut buf: Vec<WorkloadEvent> = Vec::new();
        while at < trace.len() {
            let n = (*sizes.next().expect("non-empty sizes")).min(trace.len() - at);
            let block = &trace[at..at + n];
            buf.clear();
            buf.extend(block.iter().map(|t| WorkloadEvent {
                access: t.access,
                instructions: t.instructions,
            }));
            self.machine.run_block(&buf);
            for t in block {
                let line = self.line.line_of(t.access.addr);
                self.reference
                    .step_tagged(t.access.kind, line, t.instructions, t.access.pointer);
            }
            self.steps += n;
            at += n;
            let diffs = self.observable_diffs();
            if !diffs.is_empty() {
                let last = block.last().expect("non-empty block");
                return Some(self.report(at - 1, last.access, last.instructions, diffs));
            }
        }
        None
    }

    /// Drives both implementations from `workload` until at least
    /// `instructions` have retired; returns the first divergence.
    pub fn run_workload<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        instructions: u64,
    ) -> Option<DivergenceReport> {
        while workload.instructions() < instructions {
            let access = workload.next_access();
            let now = workload.instructions();
            if let Some(report) = self.step(access, now) {
                return Some(report);
            }
        }
        None
    }

    /// End-of-run deep comparison: per-step observables *plus* cache
    /// contents (occupancy and the resident-line sets of every level,
    /// including per-line modified and shared bits). Returns a report
    /// attributed to the last processed step.
    pub fn final_check(&self) -> Option<DivergenceReport> {
        let mut diffs = self.observable_diffs();
        self.contents_diffs(&mut diffs);
        if diffs.is_empty() {
            return None;
        }
        let step = self.steps.saturating_sub(1);
        Some(self.report(
            step,
            Access::new(execmig_trace::AccessKind::Load, execmig_trace::Addr::new(0)),
            self.machine.stats().instructions,
            diffs,
        ))
    }

    fn observable_diffs(&self) -> Vec<FieldDiff> {
        let mut diffs = Vec::new();
        stats_diffs(self.machine.stats(), self.reference.stats(), &mut diffs);
        push_diff(
            &mut diffs,
            "active_core",
            self.machine.active_core() as i128,
            self.reference.active_core() as i128,
        );
        match (self.machine.controller(), self.reference.controller()) {
            (Some(mc), Some(rc)) => {
                push_diff(
                    &mut diffs,
                    "controller.filter_value",
                    i128::from(mc.filter_value()),
                    i128::from(rc.filter_value()),
                );
                push_diff(
                    &mut diffs,
                    "controller.a_r",
                    i128::from(mc.ar()),
                    i128::from(rc.ar()),
                );
                push_diff(
                    &mut diffs,
                    "controller.subset",
                    mc.current_subset() as i128,
                    rc.current_subset() as i128,
                );
                push_diff(
                    &mut diffs,
                    "controller.current_core",
                    mc.current_core() as i128,
                    rc.current_core() as i128,
                );
                let ms = mc.stats();
                push_diff(
                    &mut diffs,
                    "controller.requests",
                    i128::from(ms.requests),
                    i128::from(rc.requests),
                );
                push_diff(
                    &mut diffs,
                    "controller.l2_misses",
                    i128::from(ms.l2_misses),
                    i128::from(rc.l2_misses),
                );
                push_diff(
                    &mut diffs,
                    "controller.migrations",
                    i128::from(ms.migrations),
                    i128::from(rc.migrations),
                );
                let ts = mc.table_stats();
                let (rh, rm) = rc.table_stats();
                push_diff(
                    &mut diffs,
                    "controller.table_hits",
                    i128::from(ts.hits),
                    i128::from(rh),
                );
                push_diff(
                    &mut diffs,
                    "controller.table_misses",
                    i128::from(ts.misses),
                    i128::from(rm),
                );
            }
            (None, None) => {}
            (m, r) => push_diff(
                &mut diffs,
                "controller.present",
                i128::from(m.is_some()),
                i128::from(r.is_some()),
            ),
        }
        diffs
    }

    fn contents_diffs(&self, diffs: &mut Vec<FieldDiff>) {
        let cores = self.machine.config().cores;
        let mut levels: Vec<(String, &execmig_cache::Cache, &crate::refcache::RefCache)> = vec![
            (
                "il1".to_string(),
                self.machine.il1_cache(),
                self.reference.il1_cache(),
            ),
            (
                "dl1".to_string(),
                self.machine.dl1_cache(),
                self.reference.dl1_cache(),
            ),
        ];
        for c in 0..cores {
            levels.push((
                format!("l2[{c}]"),
                self.machine.l2_cache(c),
                self.reference.l2_cache(c),
            ));
        }
        if let (Some(m), Some(r)) = (self.machine.l3_cache(), self.reference.l3_cache()) {
            levels.push(("l3".to_string(), m, r));
        }
        for (name, fast, naive) in levels {
            push_diff(
                diffs,
                &format!("{name}.occupancy"),
                i128::from(fast.occupancy()),
                i128::from(naive.occupancy()),
            );
            let mut a: Vec<(u64, bool, bool)> = fast
                .resident_states()
                .map(|(l, m, s)| (l.raw(), m, s))
                .collect();
            let mut b: Vec<(u64, bool, bool)> = naive
                .resident_states()
                .map(|(l, m, s)| (l.raw(), m, s))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            push_diff(
                diffs,
                &format!("{name}.contents_equal"),
                i128::from(a == b),
                1,
            );
        }
    }

    fn report(
        &self,
        step: usize,
        access: Access,
        instructions: u64,
        diffs: Vec<FieldDiff>,
    ) -> DivergenceReport {
        DivergenceReport {
            step,
            access,
            instructions,
            diffs,
            machine_state: machine_state(&self.machine),
            reference_state: reference_state(&self.reference),
        }
    }
}

fn machine_state(m: &Machine) -> String {
    let mut s = String::new();
    let cores = m.config().cores;
    state_header(&mut s, m.active_core(), m.stats());
    for c in 0..cores {
        let l2 = m.l2_cache(c);
        state_l2_line(
            &mut s,
            c,
            l2.occupancy(),
            modified_count(l2.resident_lines()),
        );
    }
    if let Some(mc) = m.controller() {
        state_controller_line(
            &mut s,
            mc.filter_value(),
            mc.ar(),
            mc.current_subset(),
            mc.stats().requests,
            mc.stats().migrations,
        );
    }
    s
}

fn reference_state(r: &RefMachine) -> String {
    let mut s = String::new();
    state_header(&mut s, r.active_core(), r.stats());
    for c in 0..r.cores() {
        let l2 = r.l2_cache(c);
        state_l2_line(&mut s, c, l2.occupancy(), l2.modified_count());
    }
    if let Some(rc) = r.controller() {
        let (f, ar, subset) = (rc.filter_value(), rc.ar(), rc.current_subset());
        state_controller_line(&mut s, f, ar, subset, rc.requests, rc.migrations);
    }
    s
}

fn modified_count(lines: impl Iterator<Item = (execmig_trace::LineAddr, bool)>) -> u64 {
    lines.filter(|&(_, m)| m).count() as u64
}

fn state_header(s: &mut String, active: usize, stats: &MachineStats) {
    use fmt::Write;
    let _ = writeln!(
        s,
        "  active core {active}; {} accesses, {} l2 misses, {} migrations",
        stats.accesses, stats.l2_misses, stats.migrations
    );
}

fn state_l2_line(s: &mut String, core: usize, occupancy: u64, modified: u64) {
    use fmt::Write;
    let _ = writeln!(s, "  L2[{core}]: {occupancy} lines, {modified} modified");
}

fn state_controller_line(
    s: &mut String,
    f: i64,
    ar: i64,
    subset: usize,
    requests: u64,
    migrations: u64,
) {
    use fmt::Write;
    let _ = writeln!(
        s,
        "  controller: F={f} A_R={ar} subset={subset} requests={requests} migrations={migrations}"
    );
}

/// Captures `workload`'s access stream up to `instructions`, mirroring
/// the `Machine::run` loop, so the same stream can be replayed into
/// both implementations (and shrunk on divergence).
pub fn capture<W: Workload + ?Sized>(workload: &mut W, instructions: u64) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    while workload.instructions() < instructions {
        let access = workload.next_access();
        let now = workload.instructions();
        steps.push(TraceStep {
            access,
            instructions: now,
        });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_trace::Addr;

    #[test]
    fn divergence_report_format_is_pinned() {
        // Golden: tooling (CI log scrapers, the differ binary's users)
        // may parse this report, so its shape is part of the contract.
        let report = DivergenceReport {
            step: 42,
            access: Access::load(Addr::new(0x2a40)),
            instructions: 137,
            diffs: vec![
                FieldDiff {
                    field: "stats.l2_misses".to_string(),
                    machine: 7,
                    reference: 8,
                },
                FieldDiff {
                    field: "controller.migrations".to_string(),
                    machine: 1,
                    reference: 0,
                },
            ],
            machine_state: "  active core 1; 43 accesses, 7 l2 misses, 1 migrations".to_string(),
            reference_state: "  active core 0; 43 accesses, 8 l2 misses, 0 migrations".to_string(),
        };
        let expected = "\
divergence at step 42 (instruction 137): load 0x2a40
  stats.l2_misses              machine=7 reference=8
  controller.migrations        machine=1 reference=0
machine state:
  active core 1; 43 accesses, 7 l2 misses, 1 migrations
reference state:
  active core 0; 43 accesses, 8 l2 misses, 0 migrations";
        assert_eq!(report.to_string(), expected);
    }

    #[test]
    fn lockstep_agrees_on_a_short_circular_run() {
        use execmig_trace::gen::CircularWorkload;
        let mut lockstep = Lockstep::new(MachineConfig::four_core_migration());
        let mut w = CircularWorkload::new(2048);
        let report = lockstep
            .run_workload(&mut w, 50_000)
            .or_else(|| lockstep.final_check());
        assert!(report.is_none(), "diverged:\n{}", report.unwrap());
        assert!(lockstep.steps() > 0);
    }

    #[test]
    fn lockstep_agrees_under_every_protocol() {
        use execmig_machine::Protocol;
        use execmig_trace::gen::CircularWorkload;
        for protocol in Protocol::ALL {
            let config = MachineConfig {
                protocol,
                ..MachineConfig::four_core_migration()
            };
            let mut lockstep = Lockstep::new(config);
            let mut w = CircularWorkload::new(2048);
            let report = lockstep
                .run_workload(&mut w, 50_000)
                .or_else(|| lockstep.final_check());
            assert!(
                report.is_none(),
                "{} diverged:\n{}",
                protocol.as_str(),
                report.unwrap()
            );
        }
    }
}
