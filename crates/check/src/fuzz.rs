//! Seeded workload fuzzing with delta-debugging shrink.
//!
//! [`generate`] derives a deterministic access stream from a
//! [`FuzzConfig`] seed; [`diverges`] replays it through the lockstep
//! differ; on divergence, [`shrink`] bisects the stream to a locally
//! minimal repro with the classic ddmin complement-removal loop, and
//! [`write_repro`]/[`read_repro`] round-trip it through the `EMT1`
//! trace format so the `differ` binary and `tests/` can replay it.

use std::io::{Read, Write};

use execmig_core::{ControllerConfig, Sampler, TableConfig};
use execmig_machine::{CacheGeometry, MachineConfig, PrefetchConfig, Protocol};
use execmig_trace::{Access, AccessKind, Addr, Rng, TraceIoResult, TraceReader, TraceWriter};

use crate::differ::{DivergenceReport, Lockstep, TraceStep};

/// Parameters of the deterministic stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Seed of the stream (same seed, same stream).
    pub seed: u64,
    /// Number of accesses to generate.
    pub accesses: u64,
    /// Lines in the full working set.
    pub working_set_lines: u64,
    /// Lines in the hot subset jumps prefer.
    pub hot_lines: u64,
    /// Per-mille chance an access jumps instead of walking.
    pub jump_permille: u64,
    /// Per-mille chance of a store.
    pub store_permille: u64,
    /// Per-mille chance of an ifetch.
    pub ifetch_permille: u64,
    /// Per-mille chance a load is a pointer load.
    pub pointer_permille: u64,
}

execmig_obs::impl_to_json!(FuzzConfig {
    seed,
    accesses,
    working_set_lines,
    hot_lines,
    jump_permille,
    store_permille,
    ifetch_permille,
    pointer_permille,
});

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            accesses: 40_000,
            working_set_lines: 6_000,
            hot_lines: 96,
            jump_permille: 120,
            store_permille: 180,
            ifetch_permille: 350,
            pointer_permille: 250,
        }
    }
}

/// Generates the deterministic access stream of `config`: a sequential
/// walk with occasional jumps (biased toward a hot subset), a retire
/// mix set by the per-mille knobs, and 1–3 instructions per access.
pub fn generate(config: &FuzzConfig) -> Vec<TraceStep> {
    let mut rng = Rng::seed_from(config.seed);
    let line_bytes = 64u64;
    let mut steps = Vec::with_capacity(config.accesses as usize);
    let mut line = rng.below(config.working_set_lines.max(1));
    let mut instructions = 0u64;
    for _ in 0..config.accesses {
        if rng.chance(config.jump_permille, 1000) {
            line = if rng.chance(1, 2) {
                rng.below(config.hot_lines.max(1))
            } else {
                rng.below(config.working_set_lines.max(1))
            };
        } else {
            line = (line + 1) % config.working_set_lines.max(1);
        }
        let addr = Addr::new(line * line_bytes + rng.below(line_bytes));
        let kind = if rng.chance(config.ifetch_permille, 1000) {
            AccessKind::IFetch
        } else if rng.chance(config.store_permille, 1000) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let pointer = kind == AccessKind::Load && rng.chance(config.pointer_permille, 1000);
        instructions += 1 + rng.below(3);
        steps.push(TraceStep {
            access: Access {
                kind,
                addr,
                pointer,
            },
            instructions,
        });
    }
    steps
}

/// Replays `trace` through a fresh lockstep pair under `config`;
/// returns the first per-step divergence, or the end-of-run deep
/// (cache-contents) divergence if the steps all matched.
pub fn diverges(config: &MachineConfig, trace: &[TraceStep]) -> Option<DivergenceReport> {
    let mut lockstep = Lockstep::new(config.clone());
    lockstep.run_trace(trace).or_else(|| lockstep.final_check())
}

/// Classic ddmin: removes complements of ever-finer chunkings while
/// `pred` (the "still fails" oracle) holds, converging to a locally
/// 1-minimal failing subsequence. `pred` must hold on the input.
pub fn ddmin<F: FnMut(&[TraceStep]) -> bool>(trace: &[TraceStep], mut pred: F) -> Vec<TraceStep> {
    let mut current: Vec<TraceStep> = trace.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // The complement: everything but current[start..end].
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && pred(&candidate) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// Shrinks a diverging `trace` to a locally minimal repro under
/// `config`, using [`diverges`] as the ddmin oracle.
pub fn shrink(config: &MachineConfig, trace: &[TraceStep]) -> Vec<TraceStep> {
    ddmin(trace, |candidate| diverges(config, candidate).is_some())
}

/// Writes `trace` as an `EMT1` artifact (subsequences keep their
/// non-decreasing instruction counts, so shrunk repros serialize
/// as-is).
///
/// # Errors
///
/// Fails on I/O errors from `sink`.
pub fn write_repro<W: Write>(sink: W, trace: &[TraceStep]) -> TraceIoResult<W> {
    let mut writer = TraceWriter::new(sink)?;
    for step in trace {
        writer.record(step.access, step.instructions)?;
    }
    writer.finish()
}

/// Reads a repro back from an `EMT1` stream.
///
/// # Errors
///
/// Fails on I/O errors or a corrupt/truncated trace.
pub fn read_repro<R: Read>(source: R) -> TraceIoResult<Vec<TraceStep>> {
    let mut reader = TraceReader::new(source)?;
    let mut steps = Vec::new();
    while let Some(access) = reader.try_next_access()? {
        steps.push(TraceStep {
            access,
            instructions: reader.instructions_so_far(),
        });
    }
    Ok(steps)
}

/// The fuzzer's machine configurations: small caches so eviction,
/// coherence and replacement corner cases fire within a CI-sized
/// stream, plus the full paper configuration.
pub fn stress_configs() -> Vec<(String, MachineConfig)> {
    let tiny_l1 = CacheGeometry {
        capacity_bytes: 1 << 10,
        ways: 2,
        indexing: execmig_cache::Indexing::Modulo,
    };
    let tiny_l2 = CacheGeometry {
        capacity_bytes: 8 << 10,
        ways: 4,
        indexing: execmig_cache::Indexing::Skewed,
    };
    let four = MachineConfig::four_core_migration();
    let small_controller = ControllerConfig {
        table: TableConfig::Skewed {
            entries: 256,
            ways: 4,
        },
        sampler: Sampler::full(),
        ..four
            .controller
            .expect("four_core_migration has a controller")
    };
    let mut configs = vec![
        (
            "tiny-4core-migration".to_string(),
            MachineConfig {
                cores: 4,
                il1: tiny_l1,
                dl1: tiny_l1,
                l2: tiny_l2,
                controller: Some(small_controller),
                ..MachineConfig::four_core_migration()
            },
        ),
        (
            "tiny-2core-migration".to_string(),
            MachineConfig {
                cores: 2,
                il1: tiny_l1,
                dl1: tiny_l1,
                l2: tiny_l2,
                controller: Some(ControllerConfig {
                    ways: execmig_core::SplitWays::Two,
                    ..small_controller
                }),
                ..MachineConfig::four_core_migration()
            },
        ),
        (
            "tiny-1core-prefetch-l3".to_string(),
            MachineConfig {
                il1: tiny_l1,
                dl1: tiny_l1,
                l2: tiny_l2,
                prefetch: Some(PrefetchConfig { degree: 2 }),
                l3: Some(CacheGeometry {
                    capacity_bytes: 32 << 10,
                    ways: 4,
                    indexing: execmig_cache::Indexing::Skewed,
                }),
                ..MachineConfig::single_core()
            },
        ),
        (
            "paper-4core".to_string(),
            MachineConfig::four_core_migration(),
        ),
    ];
    // Also exercise migration + prefetch + finite L3 together.
    configs.push((
        "tiny-4core-prefetch-l3".to_string(),
        MachineConfig {
            prefetch: Some(PrefetchConfig { degree: 2 }),
            l3: Some(CacheGeometry {
                capacity_bytes: 32 << 10,
                ways: 4,
                indexing: execmig_cache::Indexing::Skewed,
            }),
            ..configs[0].1.clone()
        },
    ));
    // The bus protocols, over the most stressful geometries: the
    // controller stays configured (migrations are what spread copies
    // across L2s and make coherence traffic fire), only the L2
    // protocol changes.
    for protocol in [Protocol::Mesi, Protocol::Dragon] {
        configs.push((
            format!("tiny-4core-{}", protocol.as_str()),
            MachineConfig {
                protocol,
                ..configs[0].1.clone()
            },
        ));
        configs.push((
            format!("tiny-4core-prefetch-l3-{}", protocol.as_str()),
            MachineConfig {
                protocol,
                ..configs[4].1.clone()
            },
        ));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = FuzzConfig::default();
        assert_eq!(generate(&config), generate(&config));
        let other = FuzzConfig { seed: 2, ..config };
        assert_ne!(generate(&config), generate(&other));
    }

    #[test]
    fn instructions_are_nondecreasing() {
        let steps = generate(&FuzzConfig::default());
        for pair in steps.windows(2) {
            assert!(pair[0].instructions <= pair[1].instructions);
        }
    }

    #[test]
    fn ddmin_finds_single_culprit() {
        let steps = generate(&FuzzConfig {
            accesses: 200,
            ..FuzzConfig::default()
        });
        // Synthetic oracle: "fails" iff the subsequence still contains
        // the step at original index 137 (identified by its payload).
        let culprit = steps[137];
        let shrunk = ddmin(&steps, |t| t.contains(&culprit));
        assert_eq!(shrunk, vec![culprit]);
    }

    #[test]
    fn ddmin_keeps_interacting_pair() {
        let steps = generate(&FuzzConfig {
            accesses: 300,
            ..FuzzConfig::default()
        });
        let a = steps[17];
        let b = steps[251];
        let shrunk = ddmin(&steps, |t| t.contains(&a) && t.contains(&b));
        assert_eq!(shrunk, vec![a, b]);
    }

    #[test]
    fn repro_roundtrip_preserves_steps() {
        let steps = generate(&FuzzConfig {
            accesses: 500,
            ..FuzzConfig::default()
        });
        let bytes = write_repro(Vec::new(), &steps).expect("write");
        let back = read_repro(bytes.as_slice()).expect("read");
        assert_eq!(steps, back);
    }

    /// The block API must be indistinguishable from per-step stepping
    /// at every block boundary, for *any* chunking of the same event
    /// stream: single-event blocks, tiny odd sizes, `BLOCK_EVENTS`-
    /// sized and oversized blocks (the final block then overshoots the
    /// remaining stream and is clamped), and a seeded random mix. The
    /// reference model inside the lockstep pair always steps one event
    /// at a time, so any per-event overhead wrongly hoisted to a block
    /// boundary (or vice versa) shows up as a divergence here.
    #[test]
    fn mixed_granularity_blocks_agree_with_per_step() {
        let trace = generate(&FuzzConfig {
            accesses: 20_000,
            ..FuzzConfig::default()
        });
        let mut rng = Rng::seed_from(0xb10c);
        let mut random_sizes: Vec<usize> = vec![1, 7, 4096];
        random_sizes.extend((0..16).map(|_| rng.below(512) as usize + 1));
        let chunkings: [&[usize]; 4] = [&[1], &[7], &[4096], &random_sizes];
        for (name, config) in stress_configs() {
            for sizes in chunkings {
                let mut lockstep = Lockstep::new(config.clone());
                let report = lockstep
                    .run_trace_blocks(&trace, sizes)
                    .or_else(|| lockstep.final_check());
                assert!(
                    report.is_none(),
                    "{name} with block sizes {sizes:?} diverged:\n{}",
                    report.unwrap()
                );
                assert_eq!(lockstep.steps(), trace.len());
            }
        }
    }

    #[test]
    fn stress_configs_are_valid_and_supported() {
        for (name, config) in stress_configs() {
            config.validate();
            assert!(
                crate::refmachine::config_supported(&config),
                "{name} outside reference coverage"
            );
        }
    }
}
