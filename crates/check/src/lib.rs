//! Differential checking of the migration machine.
//!
//! The optimized simulator (`execmig_machine` over `execmig_cache` and
//! `execmig_core`) earns its speed with packed metadata, fused probes
//! and early exits — exactly the kind of code where a transcription
//! error produces plausible-looking wrong numbers (PR 3's
//! prefetch-coherence bug skewed a headline result silently). This
//! crate is the ground-truth cross-check:
//!
//! - [`refcache`]/[`refcore`]/[`refmachine`] — a deliberately naive
//!   reference model: `Vec`-backed fully-scanned caches, the literal §2
//!   coherence rules, literal Equation-1 affinity with the FIFO
//!   relaxation, literal §3.4–§3.6 filter/sampling/4-way logic. It
//!   shares only the configuration and trace types with the optimized
//!   path.
//! - [`differ`] — runs both implementations in lockstep on one access
//!   stream, compares the full observable surface after every step, and
//!   pretty-prints the first divergence.
//! - [`fuzz`] — seeded stream generation, a ddmin shrinker that
//!   reduces a diverging stream to a locally minimal repro, and `EMT1`
//!   round-tripping so repros are replayable artifacts.
//!
//! The `differ` binary (in `execmig-experiments`) and
//! `tests/differential.rs` drive all of this in CI.

#![warn(missing_docs)]

pub mod differ;
pub mod fuzz;
pub mod refcache;
pub mod refcore;
pub mod refmachine;

pub use differ::{capture, DivergenceReport, FieldDiff, Lockstep, TraceStep};
pub use fuzz::{
    ddmin, diverges, generate, read_repro, shrink, stress_configs, write_repro, FuzzConfig,
};
pub use refcache::RefCache;
pub use refcore::RefController;
pub use refmachine::{config_supported, RefMachine};
