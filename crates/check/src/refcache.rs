//! A deliberately naive cache model for differential checking.
//!
//! [`RefCache`] re-states the semantics of `execmig_cache::Cache` in the
//! most obvious form available: one plain struct per frame, a way-major
//! `Vec` (the optimized cache is set-major), full scans instead of fused
//! probes, and a two-pass victim search that says "first invalid way,
//! else smallest timestamp" in exactly those words. It shares *no code*
//! with the optimized cache beyond [`CacheConfig`] (the configuration is
//! the contract, not an implementation detail) — any packing bug,
//! recency-tick slip, or victim-selection tie-break error in the fast
//! path shows up as a divergence.
//!
//! The skewing hash and its per-way keys are re-stated here literally:
//! they are part of the modelled hardware (which frames a line may live
//! in), not an implementation strategy, so both models must agree on
//! them by construction.

use execmig_cache::{CacheConfig, Indexing};
use execmig_trace::LineAddr;

/// A line evicted by a reference-model fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefEvicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether its modified bit was set.
    pub modified: bool,
}

/// Outcome of a combined lookup + fill-on-miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefAccessOutcome {
    /// True if the line was already resident.
    pub hit: bool,
    /// The line evicted to make room, if the access missed a full set.
    pub evicted: Option<RefEvicted>,
}

/// One cache frame, spelled out field by field.
#[derive(Debug, Clone, Copy)]
struct RefFrame {
    line: u64,
    valid: bool,
    modified: bool,
    /// Coherence shared bit (MESI `S`, Dragon `Sc`/`Sm`); never set by
    /// migration mode. A use preserves it; a refill starts unshared.
    shared: bool,
    /// Recency timestamp; larger = more recently used. The shared clock
    /// ticks once per use (touch or replace), so timestamps of valid
    /// frames are distinct and LRU ties cannot arise among them.
    last: u64,
}

const EMPTY: RefFrame = RefFrame {
    line: 0,
    valid: false,
    modified: false,
    shared: false,
    last: 0,
};

/// The per-way skewing keys of the simulated hardware (the same
/// constants the optimized cache bakes in — re-stated, not imported).
const SKEW_KEYS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xca5a_8263_95fc_9dd7,
    0x8cb9_2ba7_2f3d_8dd7,
    0xa24b_aed4_963e_e407,
    0x9fb2_1c65_1e98_df25,
];

/// The skewing finalizer (splitmix64 tail), re-stated literally.
fn mix(z: u64) -> u64 {
    let mut z = z;
    z ^= z >> 29;
    z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 32;
    z
}

/// The naive cache: full scans, explicit frames, way-major layout.
#[derive(Debug, Clone)]
pub struct RefCache {
    config: CacheConfig,
    sets: u64,
    /// `frames[way * sets + set]` — the transpose of the optimized
    /// cache's set-major layout, so a layout confusion in either model
    /// cannot cancel out.
    frames: Vec<RefFrame>,
    clock: u64,
}

impl RefCache {
    /// Builds the reference cache.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig`]); skewed
    /// indexing supports at most 8 ways.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.ways > 0, "cache needs at least one way");
        if config.indexing == Indexing::Skewed {
            assert!(
                (config.ways as usize) <= SKEW_KEYS.len(),
                "skewed indexing supports at most {} ways",
                SKEW_KEYS.len()
            );
        }
        RefCache {
            sets,
            frames: vec![EMPTY; (sets * config.ways as u64) as usize],
            clock: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The frame index way `way` would hold `raw` in.
    fn frame_of(&self, raw: u64, way: u32) -> usize {
        let set = match self.config.indexing {
            Indexing::Modulo => raw % self.sets,
            Indexing::Skewed => mix(raw ^ SKEW_KEYS[way as usize]) & (self.sets - 1),
        };
        (way as u64 * self.sets + set) as usize
    }

    /// Full scan over every candidate way for `raw`.
    fn find(&self, raw: u64) -> Option<usize> {
        (0..self.config.ways)
            .map(|w| self.frame_of(raw, w))
            .find(|&f| self.frames[f].valid && self.frames[f].line == raw)
    }

    /// The LRU victim among the candidate frames of `raw`: the first
    /// invalid way in way order, else the smallest timestamp (earliest
    /// way on ties — unreachable for valid frames, whose timestamps are
    /// distinct, but stated for completeness).
    fn victim(&self, raw: u64) -> usize {
        for w in 0..self.config.ways {
            let f = self.frame_of(raw, w);
            if !self.frames[f].valid {
                return f;
            }
        }
        let mut victim = self.frame_of(raw, 0);
        for w in 1..self.config.ways {
            let f = self.frame_of(raw, w);
            if self.frames[f].last < self.frames[victim].last {
                victim = f;
            }
        }
        victim
    }

    /// A use: refresh recency and OR in `modified`.
    fn touch(&mut self, f: usize, modified: bool) {
        self.clock += 1;
        let frame = &mut self.frames[f];
        frame.last = self.clock;
        frame.modified |= modified;
    }

    /// Replaces the frame at `f` with `raw`, returning the eviction.
    fn replace(&mut self, f: usize, raw: u64, modified: bool) -> Option<RefEvicted> {
        let old = self.frames[f];
        let evicted = old.valid.then_some(RefEvicted {
            line: LineAddr::new(old.line),
            modified: old.modified,
        });
        self.clock += 1;
        self.frames[f] = RefFrame {
            line: raw,
            valid: true,
            modified,
            shared: false,
            last: self.clock,
        };
        evicted
    }

    /// True if `line` is resident, updating its recency (a use). A miss
    /// does not tick the clock.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.touch(f, false);
                true
            }
            None => false,
        }
    }

    /// True if `line` is resident; no state change.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line.raw()).is_some()
    }

    /// The modified bit of `line`, if resident; no state change.
    pub fn modified(&self, line: LineAddr) -> Option<bool> {
        self.find(line.raw()).map(|f| self.frames[f].modified)
    }

    /// Sets or clears the modified bit of `line` if resident (an
    /// assignment, not an OR); returns whether the line was found.
    /// Coherence traffic is not a local use: no recency update.
    pub fn set_modified(&mut self, line: LineAddr, modified: bool) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.frames[f].modified = modified;
                true
            }
            None => false,
        }
    }

    /// The shared bit of `line`, if resident; no state change.
    pub fn shared(&self, line: LineAddr) -> Option<bool> {
        self.find(line.raw()).map(|f| self.frames[f].shared)
    }

    /// Sets or clears the shared bit of `line` if resident; returns
    /// whether the line was found. Coherence traffic is not a local
    /// use: no recency update.
    pub fn set_shared(&mut self, line: LineAddr, shared: bool) -> bool {
        match self.find(line.raw()) {
            Some(f) => {
                self.frames[f].shared = shared;
                true
            }
            None => false,
        }
    }

    /// Combined lookup + fill-on-miss. A hit refreshes recency and ORs
    /// in `modified`; a miss inserts the line over the LRU victim.
    pub fn access(&mut self, line: LineAddr, modified: bool) -> RefAccessOutcome {
        let raw = line.raw();
        match self.find(raw) {
            Some(f) => {
                self.touch(f, modified);
                RefAccessOutcome {
                    hit: true,
                    evicted: None,
                }
            }
            None => {
                let victim = self.victim(raw);
                RefAccessOutcome {
                    hit: false,
                    evicted: self.replace(victim, raw, modified),
                }
            }
        }
    }

    /// Inserts `line`, returning the eviction if the set was full. A
    /// resident line is a use (recency refresh, modified OR-ed in).
    pub fn fill(&mut self, line: LineAddr, modified: bool) -> Option<RefEvicted> {
        self.access(line, modified).evicted
    }

    /// Inserts `line` only when absent. A resident line is left fully
    /// untouched — no recency tick, no modified-bit change. Returns
    /// `None` when the line was present, `Some(eviction)` when filled.
    pub fn fill_if_absent(&mut self, line: LineAddr, modified: bool) -> Option<Option<RefEvicted>> {
        let raw = line.raw();
        if self.find(raw).is_some() {
            return None;
        }
        let victim = self.victim(raw);
        Some(self.replace(victim, raw, modified))
    }

    /// Invalidates `line` if resident, returning its identity and
    /// modified bit (a coherence kill, e.g. MESI `BusRdX`/`BusUpgr`).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<RefEvicted> {
        self.find(line.raw()).map(|f| {
            let frame = &mut self.frames[f];
            let evicted = RefEvicted {
                line: LineAddr::new(frame.line),
                modified: frame.modified,
            };
            *frame = EMPTY;
            evicted
        })
    }

    /// Number of valid lines, by full scan.
    pub fn occupancy(&self) -> u64 {
        self.frames.iter().filter(|f| f.valid).count() as u64
    }

    /// Number of resident lines with the modified bit set, by full scan.
    pub fn modified_count(&self) -> u64 {
        self.frames.iter().filter(|f| f.valid && f.modified).count() as u64
    }

    /// Resident lines (and modified bits), in unspecified order.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        self.frames
            .iter()
            .filter(|f| f.valid)
            .map(|f| (LineAddr::new(f.line), f.modified))
    }

    /// Resident lines with full coherence state `(line, modified,
    /// shared)`, in unspecified order.
    pub fn resident_states(&self) -> impl Iterator<Item = (LineAddr, bool, bool)> + '_ {
        self.frames
            .iter()
            .filter(|f| f.valid)
            .map(|f| (LineAddr::new(f.line), f.modified, f.shared))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_cache::{Cache, FillIfAbsent};

    fn configs() -> Vec<CacheConfig> {
        vec![
            CacheConfig::set_associative(1 << 10, 2, 64),
            CacheConfig::set_associative(4 << 10, 4, 64),
            CacheConfig::skewed(8 << 10, 4, 64),
            CacheConfig::set_associative(1 << 10, 16, 64), // fully associative
        ]
    }

    /// Drive the optimized cache and the reference through the same
    /// randomized operation stream; every observable must agree at
    /// every step.
    #[test]
    fn matches_optimized_cache_on_random_streams() {
        for config in configs() {
            let mut fast = Cache::new(config);
            let mut naive = RefCache::new(config);
            let mut x = 0x1234_5678u64;
            for i in 0..30_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let line = LineAddr::new((x >> 33) % 300);
                let m = x & 1 == 0;
                match (x >> 8) % 9 {
                    0 => assert_eq!(fast.lookup(line), naive.lookup(line), "lookup step {i}"),
                    1 => {
                        let a = fast.access(line, m);
                        let b = naive.access(line, m);
                        assert_eq!(a.hit, b.hit, "access hit step {i}");
                        assert_eq!(
                            a.evicted.map(|e| (e.line, e.modified)),
                            b.evicted.map(|e| (e.line, e.modified)),
                            "access eviction step {i}"
                        );
                    }
                    2 => {
                        let a = fast.fill(line, m);
                        let b = naive.fill(line, m);
                        assert_eq!(
                            a.map(|e| (e.line, e.modified)),
                            b.map(|e| (e.line, e.modified)),
                            "fill step {i}"
                        );
                    }
                    3 => {
                        let a = fast.fill_if_absent(line, m);
                        let b = naive.fill_if_absent(line, m);
                        match (a, b) {
                            (FillIfAbsent::Present, None) => {}
                            (FillIfAbsent::Filled(ea), Some(eb)) => assert_eq!(
                                ea.map(|e| (e.line, e.modified)),
                                eb.map(|e| (e.line, e.modified)),
                                "fill_if_absent eviction step {i}"
                            ),
                            other => panic!("fill_if_absent mismatch step {i}: {other:?}"),
                        }
                    }
                    4 => assert_eq!(
                        fast.set_modified(line, m),
                        naive.set_modified(line, m),
                        "set_modified step {i}"
                    ),
                    5 => assert_eq!(
                        fast.set_shared(line, m),
                        naive.set_shared(line, m),
                        "set_shared step {i}"
                    ),
                    6 => assert_eq!(fast.shared(line), naive.shared(line), "shared step {i}"),
                    7 => assert_eq!(
                        fast.invalidate(line).map(|e| (e.line, e.modified)),
                        naive.invalidate(line).map(|e| (e.line, e.modified)),
                        "invalidate step {i}"
                    ),
                    _ => assert_eq!(fast.modified(line), naive.modified(line), "probe step {i}"),
                }
                assert_eq!(fast.occupancy(), naive.occupancy(), "occupancy step {i}");
            }
            let mut a: Vec<_> = fast
                .resident_states()
                .map(|(l, m, s)| (l.raw(), m, s))
                .collect();
            let mut b: Vec<_> = naive
                .resident_states()
                .map(|(l, m, s)| (l.raw(), m, s))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "final contents for {config:?}");
        }
    }

    #[test]
    fn victim_prefers_first_invalid_way() {
        let mut c = RefCache::new(CacheConfig::set_associative(1 << 10, 2, 64));
        // Set 0 holds lines 0 and 8 (8 sets). With one way free the
        // fill must not evict.
        assert!(c.fill(LineAddr::new(0), false).is_none());
        assert!(c.fill(LineAddr::new(8), false).is_none());
        // Touch 0 so 8 becomes LRU.
        assert!(c.lookup(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(16), true).expect("set full");
        assert_eq!(ev.line, LineAddr::new(8));
        assert!(!ev.modified);
    }

    #[test]
    fn fill_if_absent_present_is_a_pure_noop() {
        let mut c = RefCache::new(CacheConfig::set_associative(1 << 10, 2, 64));
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(8), false); // 0 is now LRU
        assert_eq!(c.fill_if_absent(LineAddr::new(0), true), None);
        assert_eq!(c.modified(LineAddr::new(0)), Some(false), "bit changed");
        let ev = c.fill(LineAddr::new(16), false).expect("set full");
        assert_eq!(ev.line, LineAddr::new(0), "recency was refreshed");
    }
}
