//! Literal re-statements of the §3 affinity machinery for differential
//! checking.
//!
//! Every component here is written directly from the paper's text —
//! Figure 2's datapath, the §3.2 widths, the §3.4 transition filter,
//! the §3.5 `H(e) = e mod 31` sampling, the §3.6 recursive 4-way
//! splitting, and the §2.2 migration-controller protocol — sharing only
//! the *configuration* types with `execmig_core`. Saturation, sign
//! conventions, FIFO semantics, affinity-cache clocking and quadrant
//! packing are all restated from scratch, so a transcription error in
//! either implementation surfaces as a lockstep divergence.

use std::collections::{HashMap, VecDeque};

use execmig_core::{ControllerConfig, DeltaMode, SignMode, SplitWays, TableConfig};

/// `sign(x)` per the paper: `+1` for `x ≥ 0`, `−1` otherwise.
fn sign(v: i64) -> i64 {
    if v >= 0 {
        1
    } else {
        -1
    }
}

/// 0 for the `+` subset, 1 for `−` (the workspace's stable indexing).
fn side_index(v: i64) -> usize {
    usize::from(v < 0)
}

/// Saturate `v` to an `bits`-bit two's-complement range.
fn clamp(v: i64, bits: u32) -> i64 {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    v.clamp(lo, hi)
}

/// `bits[A_R] = bits[O_e] + ceil(log2 |R|)` (§3.2), with the logarithm
/// computed by the obvious loop.
fn ar_bits(affinity_bits: u32, r_window: usize) -> u32 {
    let mut log2 = 0u32;
    while (1usize << log2) < r_window {
        log2 += 1;
    }
    affinity_bits + log2
}

/// The per-way skewing keys of the affinity cache (distinct from the
/// L2's keys; re-stated, not imported — they are part of the modelled
/// hardware).
const TABLE_SKEW_KEYS: [u64; 8] = [
    0x2545_f491_4f6c_dd1d,
    0x27d4_eb2f_1656_67c5,
    0x1656_67b1_9e37_79f9,
    0x85eb_ca6b_27d4_eb2f,
    0xc2b2_ae3d_27d4_eb4f,
    0x9e37_79b1_85eb_ca87,
    0x1b87_3593_27d4_eb2d,
    0xff51_afd7_ed55_8ccd,
];

/// One entry of the finite affinity cache.
#[derive(Debug, Clone, Copy)]
pub struct RefTableEntry {
    /// The sampled line.
    line: u64,
    o_e: i64,
    valid: bool,
    last: u64,
}

/// The affinity cache holding `O_e` per sampled line — either unlimited
/// (§4.1) or a finite skewed-associative structure with age-based
/// replacement (§4.2), restated naively.
#[derive(Debug, Clone)]
pub enum RefTable {
    /// Unlimited storage.
    Unbounded {
        /// `line → O_e`.
        map: HashMap<u64, i64>,
        /// Reads that found an entry.
        hits: u64,
        /// Reads that installed a fresh entry.
        misses: u64,
    },
    /// Finite skewed-associative cache.
    Skewed {
        /// Way-major entry array (`entries[way * sets + set]`).
        entries: Vec<RefTableEntry>,
        /// Sets per way.
        sets: u64,
        /// Associativity.
        ways: u32,
        /// Access clock for age-based replacement.
        clock: u64,
        /// Reads that found an entry.
        hits: u64,
        /// Reads that installed a fresh entry.
        misses: u64,
    },
}

impl RefTable {
    /// Builds the table from the shared configuration.
    pub fn new(config: TableConfig) -> Self {
        match config {
            TableConfig::Unbounded => RefTable::Unbounded {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
            },
            TableConfig::Skewed { entries, ways } => {
                assert!(ways > 0 && (ways as usize) <= TABLE_SKEW_KEYS.len());
                assert!(entries % ways as u64 == 0);
                let sets = entries / ways as u64;
                assert!(sets.is_power_of_two());
                RefTable::Skewed {
                    entries: vec![
                        RefTableEntry {
                            line: 0,
                            o_e: 0,
                            valid: false,
                            last: 0,
                        };
                        entries as usize
                    ],
                    sets,
                    ways,
                    clock: 0,
                    hits: 0,
                    misses: 0,
                }
            }
        }
    }

    /// `(hits, misses)` of the read path.
    pub fn stats(&self) -> (u64, u64) {
        match self {
            RefTable::Unbounded { hits, misses, .. } | RefTable::Skewed { hits, misses, .. } => {
                (*hits, *misses)
            }
        }
    }

    /// The skewing hash of `line` in `way` (splitmix-style finalizer,
    /// restated from the hardware definition).
    fn index(sets: u64, line: u64, way: u32) -> usize {
        let mut z = line ^ TABLE_SKEW_KEYS[way as usize];
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        (way as u64 * sets + (z & (sets - 1))) as usize
    }

    fn find(entries: &[RefTableEntry], sets: u64, ways: u32, line: u64) -> Option<usize> {
        (0..ways)
            .map(|w| Self::index(sets, line, w))
            .find(|&i| entries[i].valid && entries[i].line == line)
    }

    /// Age-based victim: first invalid way, else oldest `last`.
    fn victim(entries: &[RefTableEntry], sets: u64, ways: u32, line: u64) -> usize {
        let mut victim = Self::index(sets, line, 0);
        for w in 0..ways {
            let i = Self::index(sets, line, w);
            if !entries[i].valid {
                return i;
            }
            if entries[i].last < entries[victim].last {
                victim = i;
            }
        }
        victim
    }

    /// Reads `O_e`; on a miss installs `reset` (the caller's `∆`, so
    /// the fresh entry has `A_e = 0`) and returns it.
    pub fn read_or_insert(&mut self, line: u64, reset: i64) -> i64 {
        match self {
            RefTable::Unbounded { map, hits, misses } => {
                if let Some(&v) = map.get(&line) {
                    *hits += 1;
                    v
                } else {
                    *misses += 1;
                    map.insert(line, reset);
                    reset
                }
            }
            RefTable::Skewed {
                entries,
                sets,
                ways,
                clock,
                hits,
                misses,
            } => {
                *clock += 1;
                if let Some(i) = Self::find(entries, *sets, *ways, line) {
                    *hits += 1;
                    entries[i].last = *clock;
                    return entries[i].o_e;
                }
                *misses += 1;
                let i = Self::victim(entries, *sets, *ways, line);
                entries[i] = RefTableEntry {
                    line,
                    o_e: reset,
                    valid: true,
                    last: *clock,
                };
                reset
            }
        }
    }

    /// Writes `O_e` back on R-window exit, allocating if the entry was
    /// evicted in the meantime. Ticks the age clock (a write is an
    /// access to the structure).
    pub fn write(&mut self, line: u64, o_e: i64) {
        match self {
            RefTable::Unbounded { map, .. } => {
                map.insert(line, o_e);
            }
            RefTable::Skewed {
                entries,
                sets,
                ways,
                clock,
                ..
            } => {
                *clock += 1;
                match Self::find(entries, *sets, *ways, line) {
                    Some(i) => {
                        entries[i].o_e = o_e;
                        entries[i].last = *clock;
                    }
                    None => {
                        let i = Self::victim(entries, *sets, *ways, line);
                        entries[i] = RefTableEntry {
                            line,
                            o_e,
                            valid: true,
                            last: *clock,
                        };
                    }
                }
            }
        }
    }
}

/// Figure 2's datapath, written from the figure: a FIFO R-window (the
/// §3.2 relaxation of the distinct-LRU definition), the `A_R` register,
/// and the postponed-update counter `∆`.
#[derive(Debug, Clone)]
pub struct RefMechanism {
    affinity_bits: u32,
    capacity: usize,
    sign_mode: SignMode,
    delta_mode: DeltaMode,
    /// FIFO of `(element, I_e)`: push at the back, evict at the front.
    window: VecDeque<(u64, i64)>,
    ar: i64,
    delta: i64,
    ar_bits: u32,
    delta_bits: u32,
}

impl RefMechanism {
    /// Builds a mechanism with a `capacity`-entry R-window.
    pub fn new(
        affinity_bits: u32,
        capacity: usize,
        sign_mode: SignMode,
        delta_mode: DeltaMode,
    ) -> Self {
        assert!(capacity > 0, "R-window must be non-empty");
        RefMechanism {
            affinity_bits,
            capacity,
            sign_mode,
            delta_mode,
            window: VecDeque::with_capacity(capacity),
            ar: 0,
            delta: 0,
            ar_bits: ar_bits(affinity_bits, capacity),
            delta_bits: affinity_bits + 1,
        }
    }

    /// Current `A_R` register value.
    pub fn ar(&self) -> i64 {
        self.ar
    }

    /// Current `∆`.
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// One reference to `e`: reads/writes the shared affinity `table`,
    /// rotates the FIFO, updates `A_R` and `∆`; returns `A_e(t)`.
    pub fn on_reference(&mut self, e: u64, table: &mut RefTable) -> i64 {
        let bits = self.affinity_bits;
        match self.delta_mode {
            DeltaMode::Wide => {
                let o_e = table.read_or_insert(e, self.delta);
                let a_e = clamp(o_e - self.delta, bits);
                let i_e = a_e - self.delta;
                let a_f = if self.window.len() < self.capacity {
                    self.window.push_back((e, i_e));
                    0
                } else {
                    let (f, i_f) = self.window.pop_front().expect("window is full");
                    self.window.push_back((e, i_e));
                    let a_f = clamp(i_f + self.delta, bits);
                    table.write(f, a_f + self.delta);
                    a_f
                };
                self.ar += a_e - a_f;
                let sign_arg = match self.sign_mode {
                    SignMode::TrueSum => self.ar + self.window.len() as i64 * self.delta,
                    SignMode::RegisterOnly => self.ar,
                };
                self.delta += sign(sign_arg);
                a_e
            }
            DeltaMode::Saturating17 => {
                let o_e = table.read_or_insert(e, clamp(self.delta, bits));
                let a_e = clamp(o_e - self.delta, bits);
                let i_e = clamp(o_e - 2 * self.delta, bits);
                if self.window.len() < self.capacity {
                    self.window.push_back((e, i_e));
                    self.ar = clamp(self.ar + a_e, self.ar_bits);
                } else {
                    let (f, i_f) = self.window.pop_front().expect("window is full");
                    self.window.push_back((e, i_e));
                    let o_f = clamp(i_f + 2 * self.delta, bits);
                    table.write(f, o_f);
                    self.ar = clamp(self.ar + (o_e - o_f), self.ar_bits);
                }
                let sign_arg = match self.sign_mode {
                    SignMode::TrueSum => self.ar + self.window.len() as i64 * self.delta,
                    SignMode::RegisterOnly => self.ar,
                };
                self.delta = clamp(self.delta + sign(sign_arg), self.delta_bits);
                a_e
            }
        }
    }
}

/// The §3.4 transition filter: an up-down saturating counter whose sign
/// designates the executing subset.
#[derive(Debug, Clone)]
pub struct RefFilter {
    value: i64,
    bits: u32,
}

impl RefFilter {
    /// A zeroed filter of the given width.
    pub fn new(bits: u32) -> Self {
        RefFilter { value: 0, bits }
    }

    /// `F ← F + A_e`, saturating.
    pub fn update(&mut self, a_e: i64) {
        self.value = clamp(self.value + a_e, self.bits);
    }

    /// Current `F`.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// 0 when `F ≥ 0`, 1 otherwise.
    pub fn side(&self) -> usize {
        side_index(self.value)
    }
}

/// A literal 2-way splitter: one mechanism, one transition filter.
#[derive(Debug, Clone)]
pub struct RefSplitter2 {
    mechanism: RefMechanism,
    filter: RefFilter,
    table: RefTable,
    current: usize,
}

impl RefSplitter2 {
    /// Builds the splitter from the shared controller configuration.
    pub fn new(config: &ControllerConfig) -> Self {
        RefSplitter2 {
            mechanism: RefMechanism::new(
                config.affinity_bits,
                config.r_window_x,
                config.sign_mode,
                config.delta_mode,
            ),
            filter: RefFilter::new(config.filter_bits),
            table: RefTable::new(config.table),
            current: 0,
        }
    }

    /// One reference; returns the designated subset index (0 or 1).
    pub fn on_reference_filtered(&mut self, line: u64, update_filter: bool) -> usize {
        let a_e = self.mechanism.on_reference(line, &mut self.table);
        if update_filter {
            self.filter.update(a_e);
        }
        let side = self.filter.side();
        self.current = side;
        side
    }

    /// Current `F`.
    pub fn filter_value(&self) -> i64 {
        self.filter.value()
    }

    /// The top-level `A_R`.
    pub fn ar(&self) -> i64 {
        self.mechanism.ar()
    }

    /// The designated subset index.
    pub fn current_subset(&self) -> usize {
        self.current
    }

    /// Affinity-table `(hits, misses)`.
    pub fn table_stats(&self) -> (u64, u64) {
        self.table.stats()
    }
}

/// The §3.6 recursive 4-way splitter, written from the text: a sampled
/// line with odd `H(e)` updates `X`, one with even `H(e)` updates
/// `Y[sign(F_X)]`; the designated quadrant of *any* reference is
/// `(sign(F_X), sign(F_{Y[sign(F_X)]}))`, packed as
/// `x_index << 1 | y_index`.
#[derive(Debug, Clone)]
pub struct RefSplitter4 {
    x: RefMechanism,
    /// Indexed by the subset index of `sign(F_X)`.
    y: [RefMechanism; 2],
    f_x: RefFilter,
    f_y: [RefFilter; 2],
    /// Lines with `line mod 31 < threshold` are sampled (§3.5).
    threshold: u64,
    table: RefTable,
    current: usize,
    /// References that updated an affinity mechanism.
    sampled_refs: u64,
}

impl RefSplitter4 {
    /// Builds the splitter from the shared controller configuration.
    pub fn new(config: &ControllerConfig) -> Self {
        let mech =
            |r| RefMechanism::new(config.affinity_bits, r, config.sign_mode, config.delta_mode);
        RefSplitter4 {
            x: mech(config.r_window_x),
            y: [mech(config.r_window_y), mech(config.r_window_y)],
            f_x: RefFilter::new(config.filter_bits),
            f_y: [
                RefFilter::new(config.filter_bits),
                RefFilter::new(config.filter_bits),
            ],
            threshold: config.sampler.threshold(),
            table: RefTable::new(config.table),
            current: 0,
            sampled_refs: 0,
        }
    }

    /// One reference; returns the designated quadrant index (0..4).
    pub fn on_reference_filtered(&mut self, line: u64, update_filter: bool) -> usize {
        let h = line % 31;
        if h < self.threshold {
            self.sampled_refs += 1;
            if h % 2 == 1 {
                let a_e = self.x.on_reference(line, &mut self.table);
                if update_filter {
                    self.f_x.update(a_e);
                }
            } else {
                let yi = self.f_x.side();
                let a_e = self.y[yi].on_reference(line, &mut self.table);
                if update_filter {
                    self.f_y[yi].update(a_e);
                }
            }
        }
        let xi = self.f_x.side();
        let yi = self.f_y[xi].side();
        let q = (xi << 1) | yi;
        self.current = q;
        q
    }

    /// Current `F_X`.
    pub fn filter_value(&self) -> i64 {
        self.f_x.value()
    }

    /// Current `F_{Y[side]}`.
    pub fn y_filter_value(&self, side: usize) -> i64 {
        self.f_y[side].value()
    }

    /// The top-level (`X`) `A_R`.
    pub fn ar(&self) -> i64 {
        self.x.ar()
    }

    /// The designated quadrant index.
    pub fn current_subset(&self) -> usize {
        self.current
    }

    /// References that updated an affinity mechanism.
    pub fn sampled_references(&self) -> u64 {
        self.sampled_refs
    }

    /// Affinity-table `(hits, misses)`.
    pub fn table_stats(&self) -> (u64, u64) {
        self.table.stats()
    }
}

#[derive(Debug, Clone)]
enum RefSplit {
    Two(RefSplitter2),
    Four(RefSplitter4),
}

/// The §2.2 migration controller, restated: monitors L1-miss requests,
/// applies L2/pointer filtering to the transition-filter updates, and
/// designates the executing core.
#[derive(Debug, Clone)]
pub struct RefController {
    l2_filter: bool,
    pointer_filter: bool,
    inner: RefSplit,
    current_core: usize,
    /// Requests monitored.
    pub requests: u64,
    /// Requests flagged as L2 misses.
    pub l2_misses: u64,
    /// Designated-core changes.
    pub migrations: u64,
}

impl RefController {
    /// Builds the controller from the shared configuration.
    ///
    /// # Panics
    ///
    /// Panics on [`SplitWays::Eight`], which the reference model does
    /// not cover (the differ never configures it).
    pub fn new(config: &ControllerConfig) -> Self {
        let inner = match config.ways {
            SplitWays::Two => RefSplit::Two(RefSplitter2::new(config)),
            SplitWays::Four => RefSplit::Four(RefSplitter4::new(config)),
            SplitWays::Eight => {
                panic!("8-way splitting is not supported by the reference model")
            }
        };
        RefController {
            l2_filter: config.l2_filter,
            pointer_filter: config.pointer_filter,
            inner,
            current_core: 0,
            requests: 0,
            l2_misses: 0,
            migrations: 0,
        }
    }

    /// Processes one monitored request; returns the core that should
    /// execute next.
    pub fn on_request_tagged(&mut self, line: u64, l2_miss: bool, pointer: bool) -> usize {
        self.requests += 1;
        if l2_miss {
            self.l2_misses += 1;
        }
        let update_filter = (!self.l2_filter || l2_miss) && (!self.pointer_filter || pointer);
        let core = match &mut self.inner {
            RefSplit::Two(s) => s.on_reference_filtered(line, update_filter),
            RefSplit::Four(s) => s.on_reference_filtered(line, update_filter),
        };
        if core != self.current_core {
            self.migrations += 1;
            self.current_core = core;
        }
        core
    }

    /// The currently designated core.
    pub fn current_core(&self) -> usize {
        self.current_core
    }

    /// The top-level filter's `F` value.
    pub fn filter_value(&self) -> i64 {
        match &self.inner {
            RefSplit::Two(s) => s.filter_value(),
            RefSplit::Four(s) => s.filter_value(),
        }
    }

    /// The top-level mechanism's `A_R`.
    pub fn ar(&self) -> i64 {
        match &self.inner {
            RefSplit::Two(s) => s.ar(),
            RefSplit::Four(s) => s.ar(),
        }
    }

    /// The designated subset index.
    pub fn current_subset(&self) -> usize {
        match &self.inner {
            RefSplit::Two(s) => s.current_subset(),
            RefSplit::Four(s) => s.current_subset(),
        }
    }

    /// Affinity-table `(hits, misses)`.
    pub fn table_stats(&self) -> (u64, u64) {
        match &self.inner {
            RefSplit::Two(s) => s.table_stats(),
            RefSplit::Four(s) => s.table_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_core::{
        AffinityTable, AnyAffinityTable, Mechanism, MechanismConfig, MigrationController, Sampler,
        SkewedAffinityCache, Splitter4, Splitter4Config, UnboundedAffinityTable,
    };

    #[test]
    fn mechanism_matches_optimized_on_circular() {
        for delta_mode in [DeltaMode::Wide, DeltaMode::Saturating17] {
            for sign_mode in [SignMode::TrueSum, SignMode::RegisterOnly] {
                let mut fast = Mechanism::new(MechanismConfig {
                    affinity_bits: 16,
                    r_window: 100,
                    sign_mode,
                    delta_mode,
                });
                let mut fast_table = UnboundedAffinityTable::new();
                let mut naive = RefMechanism::new(16, 100, sign_mode, delta_mode);
                let mut naive_table = RefTable::new(TableConfig::Unbounded);
                for t in 0..200_000u64 {
                    let e = t % 3000;
                    let a = fast.on_reference(e, &mut fast_table);
                    let b = naive.on_reference(e, &mut naive_table);
                    assert_eq!(a, b, "A_e diverged at t={t} ({sign_mode:?}/{delta_mode:?})");
                    assert_eq!(fast.ar(), naive.ar(), "A_R diverged at t={t}");
                    assert_eq!(fast.delta(), naive.delta(), "∆ diverged at t={t}");
                }
            }
        }
    }

    #[test]
    fn skewed_table_matches_optimized() {
        let mut fast = SkewedAffinityCache::new(256, 4);
        let mut naive = RefTable::new(TableConfig::Skewed {
            entries: 256,
            ways: 4,
        });
        let mut x = 7u64;
        for i in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 2000;
            if x & 1 == 0 {
                let reset = (x % 100) as i64 - 50;
                assert_eq!(
                    fast.read_or_insert(line, reset),
                    naive.read_or_insert(line, reset),
                    "read step {i}"
                );
            } else {
                let v = (x % 1000) as i64 - 500;
                fast.write(line, v);
                naive.write(line, v);
            }
        }
        assert_eq!(
            (fast.stats().hits, fast.stats().misses),
            naive.stats(),
            "table stats"
        );
    }

    #[test]
    fn splitter4_matches_optimized_with_sampling() {
        let config = ControllerConfig {
            sampler: Sampler::quarter(),
            table: TableConfig::Skewed {
                entries: 512,
                ways: 4,
            },
            ..ControllerConfig::paper_4core()
        };
        let mut fast = Splitter4::with_table(
            Splitter4Config {
                affinity_bits: config.affinity_bits,
                r_window_x: config.r_window_x,
                r_window_y: config.r_window_y,
                filter_bits: config.filter_bits,
                sampler: config.sampler,
                sign_mode: config.sign_mode,
                delta_mode: config.delta_mode,
            },
            AnyAffinityTable::Skewed(SkewedAffinityCache::new(512, 4)),
        );
        let mut naive = RefSplitter4::new(&config);
        let mut x = 3u64;
        for i in 0..200_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 8000;
            let update = x & 3 != 0;
            let a = fast.on_reference_filtered(line, update);
            let b = naive.on_reference_filtered(line, update);
            assert_eq!(a.index(), b, "quadrant diverged at step {i}");
            assert_eq!(fast.filter_value(), naive.filter_value(), "F_X step {i}");
        }
        assert_eq!(fast.sampled_references(), naive.sampled_references());
    }

    #[test]
    fn controller_matches_optimized() {
        let config = ControllerConfig {
            table: TableConfig::Skewed {
                entries: 512,
                ways: 4,
            },
            ..ControllerConfig::paper_4core()
        };
        let mut fast = MigrationController::new(config);
        let mut naive = RefController::new(&config);
        let mut x = 11u64;
        for i in 0..200_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 6000;
            let l2_miss = x & 7 == 0;
            let pointer = x & 3 == 0;
            assert_eq!(
                fast.on_request_tagged(line, l2_miss, pointer),
                naive.on_request_tagged(line, l2_miss, pointer),
                "designated core diverged at step {i}"
            );
        }
        let s = fast.stats();
        assert_eq!(
            (s.requests, s.l2_misses, s.migrations),
            (naive.requests, naive.l2_misses, naive.migrations)
        );
    }

    #[test]
    fn fifo_relaxation_stays_within_sanction_on_duplicate_heavy_streams() {
        // The §3.2 FIFO relaxation lets a re-referenced element occupy
        // several window slots. Drive the hardware mechanism and the
        // distinct-LRU Definition-1 oracle with a duplicate-heavy
        // stream (every element referenced in a burst of 3, so ~2/3 of
        // pushes duplicate a slot already in the window): both must
        // still split the working set into balanced halves — the drift
        // is the sanctioned relaxation, not an A_R accounting bug.
        use execmig_core::{IdealAffinity, Side};
        let n = 400u64;
        let mut ideal = IdealAffinity::new(50);
        let mut mech = Mechanism::new(MechanismConfig {
            r_window: 50,
            ..MechanismConfig::default()
        });
        let mut table = UnboundedAffinityTable::new();
        for t in 0..120_000u64 {
            let e = (t / 3) % n;
            ideal.on_reference(e);
            mech.on_reference(e, &mut table);
        }
        let fi = ideal.positive_fraction(0..n);
        let fm = (0..n)
            .filter(|&e| mech.side_of(e, &table) == Some(Side::Plus))
            .count() as f64
            / n as f64;
        assert!((0.3..=0.7).contains(&fi), "ideal fraction {fi}");
        assert!((0.3..=0.7).contains(&fm), "mechanism fraction {fm}");
    }

    #[test]
    #[should_panic(expected = "not supported by the reference model")]
    fn eight_way_is_rejected() {
        RefController::new(&ControllerConfig {
            ways: SplitWays::Eight,
            ..ControllerConfig::paper_4core()
        });
    }
}
