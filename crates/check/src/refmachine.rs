//! The naive whole-machine reference model.
//!
//! [`RefMachine`] is a from-scratch restatement of the migration-mode
//! machine of §2: write-through non-allocating L1s shared by all cores
//! (inactive L1s mirror the active one, §2.3), per-core L2s with the
//! modified-bit ownership protocol (§2.2: a modified remote copy is
//! forwarded L2-to-L2 with a simultaneous L3 write-back; a clean remote
//! copy "cannot be forwarded" and is re-fetched from L3), the update
//! bus, sequential prefetch (§6) and the migration controller. The
//! MESI and Dragon coherence backends of `execmig_machine::coherence`
//! are restated here too, as explicit per-transaction scans (`BusRd`,
//! `BusRdX`/`BusUpgr`, `BusUpd`) selected by the configured
//! [`Protocol`]. It shares only [`MachineConfig`] (including the
//! protocol selector) and the trace types with `execmig_machine` — the
//! caches are the fully-scanned [`RefCache`](crate::refcache::RefCache),
//! the controller is the literal
//! [`RefController`](crate::refcore::RefController).
//!
//! [`MachineStats`] is reused as the *output record* the two
//! implementations are compared in: it is a plain bundle of counters
//! with no behaviour of its own, so sharing it cannot mask a modelling
//! divergence — it is the comparison language, not the model.

use execmig_core::ControllerConfig;
use execmig_machine::bus::UpdateBusStats;
use execmig_machine::{MachineConfig, MachineStats, Protocol, UpdateBusConfig};
use execmig_trace::{AccessKind, LineAddr, LineSize, Workload};

use crate::refcache::RefCache;
use crate::refcore::RefController;

/// Address/control bytes of one coherence bus transaction — the same
/// modelled-hardware constant the optimized machine bakes in
/// (re-stated, not imported).
const ADDR_BYTES: u64 = 8;
/// Data bytes of one Dragon `BusUpd` word (re-stated, not imported).
const UPDATE_WORD_BYTES: u64 = 8;

/// Restated update-bus accounting (§2.3): per-mille retire-mix rates
/// applied with exact fixed-point remainders, each retired broadcast
/// charged once regardless of how many cores mirror it.
#[derive(Debug, Clone, Default)]
struct RefBus {
    stats: UpdateBusStats,
    reg_acc: u64,
    branch_acc: u64,
}

impl RefBus {
    fn charge_instructions(&mut self, instructions: u64, stores: u64) {
        let config = UpdateBusConfig::default();
        self.reg_acc += instructions * config.reg_write_permille;
        self.stats.reg_bytes += (self.reg_acc / 1000) * config.bytes_per_reg_write;
        self.reg_acc %= 1000;
        self.branch_acc += instructions * config.branch_permille;
        self.stats.branch_bytes += (self.branch_acc / 1000) * config.bytes_per_branch;
        self.branch_acc %= 1000;
        self.stats.store_bytes += stores * config.bytes_per_store;
    }

    fn charge_l1_mirror(&mut self, line_bytes: u64) {
        self.stats.l1_mirror_bytes += line_bytes;
    }
}

/// The naive reference machine. Same step protocol as
/// `execmig_machine::Machine`, different implementation of everything
/// below the configuration.
#[derive(Debug)]
pub struct RefMachine {
    cores: usize,
    line: LineSize,
    prefetch_degree: u64,
    protocol: Protocol,
    il1: RefCache,
    dl1: RefCache,
    l2: Vec<RefCache>,
    l3: Option<RefCache>,
    controller: Option<RefController>,
    bus: RefBus,
    active: usize,
    stats: MachineStats,
    last_instructions: u64,
}

impl RefMachine {
    /// Builds the reference machine from the shared configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (same validation as
    /// `Machine::new`) or configures 8-way splitting, which the
    /// reference model does not cover.
    pub fn new(config: &MachineConfig) -> Self {
        let line = config.validate();
        RefMachine {
            cores: config.cores,
            line,
            prefetch_degree: config.prefetch.map_or(0, |p| u64::from(p.degree)),
            protocol: config.protocol,
            il1: RefCache::new(config.il1.to_cache_config(config.line_bytes)),
            dl1: RefCache::new(config.dl1.to_cache_config(config.line_bytes)),
            l2: (0..config.cores)
                .map(|_| RefCache::new(config.l2.to_cache_config(config.line_bytes)))
                .collect(),
            l3: config
                .l3
                .map(|g| RefCache::new(g.to_cache_config(config.line_bytes))),
            controller: config.controller.as_ref().map(RefController::new),
            bus: RefBus::default(),
            active: 0,
            stats: MachineStats::default(),
            last_instructions: 0,
        }
    }

    /// Collected statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The core currently executing.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// The configured core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The reference controller, if configured.
    pub fn controller(&self) -> Option<&RefController> {
        self.controller.as_ref()
    }

    /// Core `core`'s private L2.
    pub fn l2_cache(&self, core: usize) -> &RefCache {
        &self.l2[core]
    }

    /// The (shared) instruction L1.
    pub fn il1_cache(&self) -> &RefCache {
        &self.il1
    }

    /// The (shared) data L1.
    pub fn dl1_cache(&self) -> &RefCache {
        &self.dl1
    }

    /// The shared L3, when finite.
    pub fn l3_cache(&self) -> Option<&RefCache> {
        self.l3.as_ref()
    }

    /// Runs `workload` until at least `instructions` dynamic
    /// instructions have retired (same loop as `Machine::run`).
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, instructions: u64) {
        while workload.instructions() < instructions {
            let access = workload.next_access();
            let now = workload.instructions();
            self.step_tagged(
                access.kind,
                self.line.line_of(access.addr),
                now,
                access.pointer,
            );
        }
    }

    /// Processes one access; see `Machine::step_tagged`.
    pub fn step_tagged(
        &mut self,
        kind: AccessKind,
        line: LineAddr,
        instructions_now: u64,
        pointer: bool,
    ) {
        let delta_instr = instructions_now.saturating_sub(self.last_instructions);
        self.last_instructions = instructions_now;
        self.stats.instructions = instructions_now;
        self.bus
            .charge_instructions(delta_instr, u64::from(kind.is_store()));

        self.stats.accesses += 1;
        match kind {
            AccessKind::IFetch => {
                self.stats.ifetches += 1;
                if !self.il1.access(line, false).hit {
                    self.stats.il1_misses += 1;
                    self.bus.charge_l1_mirror(self.line.bytes());
                    self.l1_request(line, pointer);
                }
            }
            AccessKind::Load => {
                self.stats.loads += 1;
                if !self.dl1.access(line, false).hit {
                    self.stats.dl1_misses += 1;
                    self.bus.charge_l1_mirror(self.line.bytes());
                    self.l1_request(line, pointer);
                }
            }
            AccessKind::Store => {
                self.stats.stores += 1;
                // Write-through, non-allocating DL1 (§2.2): a hit
                // updates in place, a miss does not allocate; the write
                // always reaches the write-allocate L2.
                let dl1_hit = self.dl1.lookup(line);
                if !dl1_hit {
                    self.stats.dl1_misses += 1;
                }
                self.l2_write(line, !dl1_hit);
            }
        }
        self.stats.bus = self.bus.stats;
    }

    fn l1_request(&mut self, line: LineAddr, pointer: bool) {
        self.stats.l1_requests += 1;
        self.stats.l2_accesses += 1;
        let l2_hit = self.l2[self.active].lookup(line);
        if !l2_hit {
            self.stats.l2_misses += 1;
            self.serve_l2_miss(line, false);
            self.prefetch_after(line);
        }
        self.consult_controller(line, !l2_hit, pointer);
    }

    fn prefetch_after(&mut self, line: LineAddr) {
        for i in 1..=self.prefetch_degree {
            let Some(raw) = line.raw().checked_add(i) else {
                break;
            };
            let next = LineAddr::new(raw);
            // Prefetches are bus-free: under migration mode a modified
            // remote copy makes the L3 data stale (skip); the bus
            // protocols may only fill an exclusive copy, so any remote
            // copy at all blocks the prefetch.
            let blocked = match self.protocol {
                Protocol::MigrationMode => (0..self.cores)
                    .any(|c| c != self.active && self.l2[c].modified(next) == Some(true)),
                Protocol::Mesi | Protocol::Dragon => {
                    (0..self.cores).any(|c| c != self.active && self.l2[c].contains(next))
                }
            };
            if blocked {
                continue;
            }
            if let Some(evicted) = self.l2[self.active].fill_if_absent(next, false) {
                self.stats.prefetch_fills += 1;
                if let Some(e) = evicted {
                    if e.modified {
                        // A modified prefetch victim is written back
                        // and installed into the finite L3, exactly
                        // like a demand-fill victim.
                        self.stats.l3_writebacks += 1;
                        if let Some(l3) = &mut self.l3 {
                            l3.fill(e.line, true);
                        }
                    }
                }
            }
        }
    }

    fn l2_write(&mut self, line: LineAddr, was_l1_request: bool) {
        self.stats.l2_accesses += 1;
        let l2_hit = self.l2[self.active].lookup(line);
        if l2_hit {
            match self.protocol {
                Protocol::MigrationMode => {
                    self.l2[self.active].set_modified(line, true);
                }
                Protocol::Mesi => self.mesi_write_hit(line),
                Protocol::Dragon => self.dragon_write_hit(line),
            }
        } else {
            self.stats.l2_misses += 1;
            self.serve_l2_miss(line, true);
        }
        if self.protocol == Protocol::MigrationMode {
            // §2.3 store broadcast: inactive copies are refreshed, their
            // modified bits reset — at most one modified copy chip-wide.
            for c in 0..self.cores {
                if c != self.active && self.l2[c].set_modified(line, false) {
                    self.stats.store_broadcast_updates += 1;
                }
            }
        }
        if was_l1_request {
            self.stats.l1_requests += 1;
            // Stores are never pointer loads.
            self.consult_controller(line, !l2_hit, false);
        }
    }

    fn serve_l2_miss(&mut self, line: LineAddr, store: bool) {
        match self.protocol {
            Protocol::MigrationMode => self.migration_serve_miss(line, store),
            Protocol::Mesi => self.mesi_serve_miss(line, store),
            Protocol::Dragon => self.dragon_serve_miss(line, store),
        }
    }

    /// The "no cache supplied it" path: fetch from L3, going to memory
    /// past a finite L3 that misses.
    fn fetch_from_l3(&mut self, line: LineAddr) {
        self.stats.l3_fetches += 1;
        if let Some(l3) = &mut self.l3 {
            if !l3.lookup(line) {
                self.stats.l3_misses += 1;
                l3.fill(line, false);
            }
        }
    }

    /// Fills `line` into the active L2; a modified victim is written
    /// back and installed into the finite L3.
    fn fill_active(&mut self, line: LineAddr, modified: bool) {
        if let Some(evicted) = self.l2[self.active].fill(line, modified) {
            if evicted.modified {
                self.stats.l3_writebacks += 1;
                if let Some(l3) = &mut self.l3 {
                    l3.fill(evicted.line, true);
                }
            }
        }
    }

    fn migration_serve_miss(&mut self, line: LineAddr, store: bool) {
        let mut forwarded = false;
        for c in 0..self.cores {
            if c != self.active && self.l2[c].modified(line) == Some(true) {
                // §2.2: forward the modified copy L2-to-L2, write it
                // back to L3 simultaneously, reset the owner's bit.
                self.l2[c].set_modified(line, false);
                self.stats.l2_to_l2_forwards += 1;
                self.stats.l3_writebacks += 1;
                forwarded = true;
                break;
            }
        }
        if !forwarded {
            self.fetch_from_l3(line);
        }
        self.fill_active(line, store);
    }

    /// MESI `BusRdX` (write miss) / `BusRd` (read miss), as literal
    /// per-core scans.
    fn mesi_serve_miss(&mut self, line: LineAddr, store: bool) {
        if store {
            // BusRdX: every remote copy dies. A modified owner flushes
            // (forward + write-back + L3 install); failing that, the
            // first clean copy supplies the data (Illinois).
            let mut supplied = false;
            let mut killed = 0u64;
            for c in 0..self.cores {
                if c == self.active {
                    continue;
                }
                if let Some(ev) = self.l2[c].invalidate(line) {
                    killed += 1;
                    if ev.modified {
                        self.stats.l2_to_l2_forwards += 1;
                        self.stats.l3_writebacks += 1;
                        if let Some(l3) = &mut self.l3 {
                            l3.fill(line, true);
                        }
                        supplied = true;
                    } else if !supplied {
                        self.stats.l2_to_l2_forwards += 1;
                        supplied = true;
                    }
                }
            }
            if killed > 0 {
                self.stats.invalidations += killed;
                self.stats.coherence_bus_bytes += ADDR_BYTES;
            }
            if !supplied {
                self.fetch_from_l3(line);
            }
            // The requester ends in M: modified, unshared.
            self.fill_active(line, true);
        } else {
            // BusRd: a modified owner does M→S with a flush; otherwise
            // the first clean copy supplies the data (Illinois). Every
            // surviving copy — including the new one — becomes S.
            let mut supplied = false;
            let mut any_copy = false;
            for c in 0..self.cores {
                if c == self.active || !self.l2[c].contains(line) {
                    continue;
                }
                any_copy = true;
                if self.l2[c].modified(line) == Some(true) {
                    self.l2[c].set_modified(line, false);
                    self.stats.l2_to_l2_forwards += 1;
                    self.stats.l3_writebacks += 1;
                    if let Some(l3) = &mut self.l3 {
                        l3.fill(line, true);
                    }
                    supplied = true;
                } else if !supplied {
                    self.stats.l2_to_l2_forwards += 1;
                    supplied = true;
                }
                self.l2[c].set_shared(line, true);
            }
            if !supplied {
                self.fetch_from_l3(line);
            }
            self.fill_active(line, false);
            // S if anyone else holds it, E otherwise.
            self.l2[self.active].set_shared(line, any_copy);
        }
    }

    /// MESI write hit: `BusUpgr` from S (the writer believes the line
    /// is shared, so the upgrade goes on the bus even if every sharer
    /// has since been silently evicted); E→M and M→M are silent.
    fn mesi_write_hit(&mut self, line: LineAddr) {
        if self.l2[self.active].shared(line) == Some(true) {
            self.stats.coherence_bus_bytes += ADDR_BYTES;
            for c in 0..self.cores {
                if c != self.active && self.l2[c].invalidate(line).is_some() {
                    self.stats.invalidations += 1;
                }
            }
            self.l2[self.active].set_shared(line, false);
        }
        self.l2[self.active].set_modified(line, true);
    }

    /// Dragon `BusRd`: a dirty owner (M or Sm) supplies the line and
    /// stays dirty-shared — no memory write-back. A write miss chains a
    /// `BusUpd` when sharers remain.
    fn dragon_serve_miss(&mut self, line: LineAddr, store: bool) {
        let mut supplied = false;
        let mut any_copy = false;
        for c in 0..self.cores {
            if c == self.active || !self.l2[c].contains(line) {
                continue;
            }
            any_copy = true;
            if !supplied && self.l2[c].modified(line) == Some(true) {
                self.stats.l2_to_l2_forwards += 1;
                supplied = true;
            }
            self.l2[c].set_shared(line, true);
        }
        if !supplied {
            self.fetch_from_l3(line);
        }
        self.fill_active(line, false);
        self.l2[self.active].set_shared(line, any_copy);
        if store {
            if any_copy {
                self.dragon_bus_update(line);
            } else {
                self.l2[self.active].set_modified(line, true);
            }
        }
    }

    /// Dragon write hit: shared lines broadcast a `BusUpd`; E→M and
    /// M→M are silent.
    fn dragon_write_hit(&mut self, line: LineAddr) {
        if self.l2[self.active].shared(line) == Some(true) {
            self.dragon_bus_update(line);
        } else {
            self.l2[self.active].set_modified(line, true);
        }
    }

    /// Dragon `BusUpd`: remote copies snarf the written word (a remote
    /// owner degrades Sm→Sc); the writer ends Sm if a sharer remains, M
    /// otherwise.
    fn dragon_bus_update(&mut self, line: LineAddr) {
        let mut sharers = false;
        for c in 0..self.cores {
            if c == self.active || !self.l2[c].contains(line) {
                continue;
            }
            self.l2[c].set_modified(line, false);
            self.l2[c].set_shared(line, true);
            self.stats.coherence_updates += 1;
            sharers = true;
        }
        self.l2[self.active].set_modified(line, true);
        if sharers {
            self.stats.coherence_bus_bytes += ADDR_BYTES + UPDATE_WORD_BYTES;
            self.l2[self.active].set_shared(line, true);
        } else {
            self.l2[self.active].set_shared(line, false);
        }
    }

    fn consult_controller(&mut self, line: LineAddr, l2_miss: bool, pointer: bool) {
        let Some(mc) = self.controller.as_mut() else {
            return;
        };
        let target = mc.on_request_tagged(line.raw(), l2_miss, pointer);
        if target != self.active {
            self.active = target;
            self.stats.migrations += 1;
        }
    }
}

/// True when the shared configuration is within the reference model's
/// coverage (everything except 8-way splitting).
pub fn config_supported(config: &MachineConfig) -> bool {
    !matches!(
        config.controller,
        Some(ControllerConfig {
            ways: execmig_core::SplitWays::Eight,
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_way_configs_are_flagged_unsupported() {
        let mut config = MachineConfig::four_core_migration();
        assert!(config_supported(&config));
        config.cores = 8;
        if let Some(c) = &mut config.controller {
            c.ways = execmig_core::SplitWays::Eight;
        }
        assert!(!config_supported(&config));
    }

    #[test]
    fn single_core_counts_compulsory_misses() {
        let mut m = RefMachine::new(&MachineConfig::single_core());
        // Touch 100 distinct lines twice: first pass misses, second hits.
        for pass in 0..2u64 {
            for i in 0..100u64 {
                m.step_tagged(
                    AccessKind::Load,
                    LineAddr::new(i),
                    pass * 100 + i + 1,
                    false,
                );
            }
        }
        assert_eq!(m.stats().dl1_misses, 100);
        assert_eq!(m.stats().l2_misses, 100);
        assert_eq!(m.stats().accesses, 200);
    }
}
