//! The migration controller (§2.2, §3).
//!
//! "The migration controller monitors all the L1-miss requests issued
//! from the active processor, and it bases its decisions on current and
//! past requests." Each monitored request updates the affinity
//! mechanisms; the designated subset maps one-to-one onto a core, and a
//! change of designated core is a migration request.
//!
//! With *L2 filtering* (§3.4) the transition filters are updated only on
//! requests that miss the active L2, "so a migration can happen only
//! upon a L2 miss".

use crate::mechanism::{DeltaMode, SignMode};
use crate::sampler::Sampler;
use crate::splitter2::{Splitter2, SplitterConfig, SplitterStats};
use crate::splitter4::{Quadrant, Splitter4, Splitter4Config};
use crate::table::{
    AffinityTable, AnyAffinityTable, SkewedAffinityCache, TableStats, UnboundedAffinityTable,
};
use crate::tree::{SplitterTree, SplitterTreeConfig};
use crate::Side;
use execmig_obs::Histogram;

/// Degree of working-set splitting (= number of cores used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitWays {
    /// 2-way splitting (2-core machine).
    Two,
    /// 4-way recursive splitting (the paper's 4-core machine).
    Four,
    /// 8-way splitting — the §6 "larger number of cores" extension,
    /// via a third recursion level (see [`SplitterTree`]).
    Eight,
}

impl SplitWays {
    /// Number of subsets/cores.
    pub const fn count(self) -> usize {
        match self {
            SplitWays::Two => 2,
            SplitWays::Four => 4,
            SplitWays::Eight => 8,
        }
    }
}

/// Affinity-cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableConfig {
    /// Unlimited storage (§4.1).
    Unbounded,
    /// Finite skewed-associative cache (§4.2: 8k entries, 4 ways).
    Skewed {
        /// Total entries.
        entries: u64,
        /// Associativity.
        ways: u32,
    },
}

/// Configuration of a [`MigrationController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// 2-way or 4-way splitting.
    pub ways: SplitWays,
    /// Bits of the affinity values (paper: 16).
    pub affinity_bits: u32,
    /// `|R_X|` (paper: 128).
    pub r_window_x: usize,
    /// `|R_Y|` for the second-level mechanisms (paper: 64).
    pub r_window_y: usize,
    /// Transition-filter width.
    pub filter_bits: u32,
    /// Working-set sampling.
    pub sampler: Sampler,
    /// Affinity-cache sizing.
    pub table: TableConfig,
    /// Update transition filters only on L2 misses (§3.4 "L2
    /// filtering").
    pub l2_filter: bool,
    /// §6 extension: update transition filters only on requests coming
    /// from *pointer loads* ("restrict the class of applications
    /// triggering migrations"). Off in the paper's main configuration.
    pub pointer_filter: bool,
    /// Sign source for the `∆` updates.
    pub sign_mode: SignMode,
    /// Bounding of `∆` and the stored values.
    pub delta_mode: DeltaMode,
}

impl ControllerConfig {
    /// The §4.2 machine configuration: 4-way splitting, 8k-entry 4-way
    /// skewed affinity cache, 25 % sampling, 18-bit filters, L2
    /// filtering, `|R_X|` = 128, `|R_Y|` = 64.
    pub fn paper_4core() -> Self {
        ControllerConfig {
            ways: SplitWays::Four,
            affinity_bits: 16,
            r_window_x: 128,
            r_window_y: 64,
            filter_bits: 18,
            sampler: Sampler::quarter(),
            table: TableConfig::Skewed {
                entries: 8 << 10,
                ways: 4,
            },
            l2_filter: true,
            pointer_filter: false,
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }

    /// The §4.1 stack-profile configuration: 4-way splitting, unlimited
    /// affinity cache, every line sampled, 20-bit filters, no L2
    /// filtering.
    pub fn paper_stack_profile() -> Self {
        ControllerConfig {
            ways: SplitWays::Four,
            affinity_bits: 16,
            r_window_x: 128,
            r_window_y: 64,
            filter_bits: 20,
            sampler: Sampler::full(),
            table: TableConfig::Unbounded,
            l2_filter: false,
            pointer_filter: false,
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }

    fn build_table(&self) -> AnyAffinityTable {
        match self.table {
            TableConfig::Unbounded => AnyAffinityTable::Unbounded(UnboundedAffinityTable::new()),
            TableConfig::Skewed { entries, ways } => {
                AnyAffinityTable::Skewed(SkewedAffinityCache::new(entries, ways))
            }
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::paper_4core()
    }
}

/// Counters exposed by the controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// L1-miss requests monitored.
    pub requests: u64,
    /// Requests flagged as L2 misses.
    pub l2_misses: u64,
    /// Times the designated core changed (= migration requests).
    pub migrations: u64,
}

// One controller exists per machine, so the size spread between the
// 2-way and 8-way splitters is irrelevant; boxing the large variants
// would add a pointer chase to every per-request dispatch.
#[allow(clippy::large_enum_variant)]
enum Inner {
    Two(Splitter2<AnyAffinityTable>),
    Four(Splitter4<AnyAffinityTable>),
    Eight(SplitterTree<AnyAffinityTable>),
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inner::Two(_) => f.write_str("Inner::Two(..)"),
            Inner::Four(_) => f.write_str("Inner::Four(..)"),
            Inner::Eight(_) => f.write_str("Inner::Eight(..)"),
        }
    }
}

/// The migration controller: monitors L1-miss requests and designates
/// the core that should execute.
///
/// ```
/// use execmig_core::{ControllerConfig, MigrationController};
/// let mut mc = MigrationController::new(ControllerConfig::paper_4core());
/// let core = mc.on_request(0x1000, true);
/// assert!(core < 4);
/// assert_eq!(mc.stats().requests, 1);
/// ```
#[derive(Debug)]
pub struct MigrationController {
    config: ControllerConfig,
    inner: Inner,
    current_core: usize,
    stats: ControllerStats,
    /// Monitored requests between designated-core changes.
    dwell: Histogram,
    /// `stats.requests` at the last designated-core change.
    last_change_request: u64,
}

impl MigrationController {
    /// Builds a controller.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths or table geometry (see
    /// [`SkewedAffinityCache::new`]).
    pub fn new(config: ControllerConfig) -> Self {
        let table = config.build_table();
        let inner = match config.ways {
            SplitWays::Two => Inner::Two(Splitter2::with_table(
                SplitterConfig {
                    affinity_bits: config.affinity_bits,
                    r_window: config.r_window_x,
                    filter_bits: Some(config.filter_bits),
                    sign_mode: config.sign_mode,
                    delta_mode: config.delta_mode,
                },
                table,
            )),
            SplitWays::Four => Inner::Four(Splitter4::with_table(
                Splitter4Config {
                    affinity_bits: config.affinity_bits,
                    r_window_x: config.r_window_x,
                    r_window_y: config.r_window_y,
                    filter_bits: config.filter_bits,
                    sampler: config.sampler,
                    sign_mode: config.sign_mode,
                    delta_mode: config.delta_mode,
                },
                table,
            )),
            SplitWays::Eight => Inner::Eight(SplitterTree::with_table(
                SplitterTreeConfig {
                    depth: 3,
                    affinity_bits: config.affinity_bits,
                    r_window_top: config.r_window_x,
                    filter_bits: config.filter_bits,
                    sampler: config.sampler,
                    sign_mode: config.sign_mode,
                    delta_mode: config.delta_mode,
                },
                table,
            )),
        };
        MigrationController {
            config,
            inner,
            current_core: 0,
            stats: ControllerStats::default(),
            dwell: Histogram::new(),
            last_change_request: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Number of cores the controller schedules over.
    pub fn cores(&self) -> usize {
        self.config.ways.count()
    }

    /// Processes an L1-miss request for `line`. `l2_miss` says whether
    /// the request missed the active core's L2 (relevant under L2
    /// filtering). Returns the core that should execute next.
    ///
    /// Requests are treated as pointer loads (the permissive default);
    /// use [`on_request_tagged`](Self::on_request_tagged) when the
    /// request's origin is known and pointer filtering is configured.
    pub fn on_request(&mut self, line: u64, l2_miss: bool) -> usize {
        self.on_request_tagged(line, l2_miss, true)
    }

    /// Like [`on_request`](Self::on_request), with the request's
    /// pointer-load origin. Under [`ControllerConfig::pointer_filter`],
    /// only pointer-load requests may update the transition filters.
    pub fn on_request_tagged(&mut self, line: u64, l2_miss: bool, pointer: bool) -> usize {
        self.stats.requests += 1;
        if l2_miss {
            self.stats.l2_misses += 1;
        }
        let update_filter =
            (!self.config.l2_filter || l2_miss) && (!self.config.pointer_filter || pointer);
        let core = match &mut self.inner {
            Inner::Two(s) => s.on_reference_filtered(line, update_filter).index(),
            Inner::Four(s) => s.on_reference_filtered(line, update_filter).index(),
            Inner::Eight(s) => s.on_reference_filtered(line, update_filter),
        };
        if core != self.current_core {
            self.stats.migrations += 1;
            self.current_core = core;
            self.dwell
                .observe(self.stats.requests - self.last_change_request);
            self.last_change_request = self.stats.requests;
        }
        debug_assert!(
            core < self.cores(),
            "I107: designated core {core} out of range for {}-way splitting",
            self.cores()
        );
        debug_assert!(
            self.dwell.count() == self.stats.migrations,
            "I107: dwell samples ({}) must match migrations ({})",
            self.dwell.count(),
            self.stats.migrations
        );
        core
    }

    /// The core currently designated.
    pub fn current_core(&self) -> usize {
        self.current_core
    }

    /// Controller counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Splitter-level transition statistics.
    pub fn splitter_stats(&self) -> SplitterStats {
        match &self.inner {
            Inner::Two(s) => s.stats(),
            Inner::Four(s) => s.stats(),
            Inner::Eight(s) => s.stats(),
        }
    }

    /// Affinity-table statistics.
    pub fn table_stats(&self) -> TableStats {
        match &self.inner {
            Inner::Two(s) => s.table().stats(),
            Inner::Four(s) => s.table_stats(),
            Inner::Eight(s) => s.table_stats(),
        }
    }

    /// How many monitored requests the controller dwells on a core
    /// before moving: the distribution of distances between
    /// designated-core changes (§3.4's filter dwell time).
    pub fn dwell_histogram(&self) -> &Histogram {
        &self.dwell
    }

    /// Age-at-eviction histogram of the affinity cache; `None` when the
    /// table is unbounded (it never evicts).
    pub fn affinity_age_histogram(&self) -> Option<&Histogram> {
        match &self.inner {
            Inner::Two(s) => s.table().age_at_eviction(),
            Inner::Four(s) => s.table().age_at_eviction(),
            Inner::Eight(s) => s.table().age_at_eviction(),
        }
    }

    /// The top-level transition filter's current `F` value — the
    /// quantity whose sign flips drive migrations (§3.4). For 4-/8-way
    /// splitting this is `F_X`; for 2-way it is the single filter (or
    /// `A_R` when configured filterless).
    pub fn filter_value(&self) -> i64 {
        match &self.inner {
            Inner::Two(s) => s.filter_value(),
            Inner::Four(s) => s.filter_value(),
            Inner::Eight(s) => s.filter_value(),
        }
    }

    /// The top-level mechanism's current window sum `A_R` (§3.2).
    pub fn ar(&self) -> i64 {
        match &self.inner {
            Inner::Two(s) => s.mechanism().ar(),
            Inner::Four(s) => s.mechanism().ar(),
            Inner::Eight(s) => s.mechanism().ar(),
        }
    }

    /// The quadrant/side currently designated, as a subset index.
    pub fn current_subset(&self) -> usize {
        match &self.inner {
            Inner::Two(s) => s.current_side().index(),
            Inner::Four(s) => s.current_quadrant().index(),
            Inner::Eight(s) => s.current_subset(),
        }
    }
}

/// Maps a 2-way side to a core index (0 or 1).
pub fn core_of_side(side: Side) -> usize {
    side.index()
}

/// Maps a quadrant to a core index (0..4).
pub fn core_of_quadrant(q: Quadrant) -> usize {
    q.index()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_controller_schedules_in_range() {
        let mut mc = MigrationController::new(ControllerConfig::paper_4core());
        for t in 0..10_000u64 {
            let core = mc.on_request(t % 3000, t % 7 == 0);
            assert!(core < 4);
        }
        assert_eq!(mc.stats().requests, 10_000);
    }

    #[test]
    fn two_way_controller_uses_two_cores() {
        let cfg = ControllerConfig {
            ways: SplitWays::Two,
            ..ControllerConfig::paper_4core()
        };
        let mut mc = MigrationController::new(cfg);
        assert_eq!(mc.cores(), 2);
        for t in 0..10_000u64 {
            assert!(mc.on_request(t % 3000, true) < 2);
        }
    }

    #[test]
    fn l2_filtering_blocks_migrations_without_l2_misses() {
        let mut mc = MigrationController::new(ControllerConfig::paper_4core());
        for t in 0..100_000u64 {
            mc.on_request(t % 3000, false);
        }
        assert_eq!(mc.stats().migrations, 0, "migrated despite no L2 misses");
    }

    #[test]
    fn without_l2_filtering_migrations_happen_on_circular() {
        let cfg = ControllerConfig {
            l2_filter: false,
            table: TableConfig::Unbounded,
            sampler: Sampler::full(),
            filter_bits: 14,
            ..ControllerConfig::paper_4core()
        };
        let mut mc = MigrationController::new(cfg);
        for t in 0..2_000_000u64 {
            mc.on_request(t % 16_000, false);
        }
        assert!(mc.stats().migrations > 0, "no migrations on circular");
    }

    #[test]
    fn migration_count_matches_core_changes() {
        let mut mc = MigrationController::new(ControllerConfig {
            l2_filter: false,
            ..ControllerConfig::paper_stack_profile()
        });
        let mut last = mc.current_core();
        let mut changes = 0u64;
        for t in 0..500_000u64 {
            let core = mc.on_request(t % 20_000, true);
            if core != last {
                changes += 1;
                last = core;
            }
        }
        assert_eq!(mc.stats().migrations, changes);
    }

    #[test]
    fn dwell_histogram_tracks_migrations() {
        let mut mc = MigrationController::new(ControllerConfig {
            l2_filter: false,
            ..ControllerConfig::paper_stack_profile()
        });
        for t in 0..500_000u64 {
            mc.on_request(t % 20_000, true);
        }
        let dwell = mc.dwell_histogram();
        assert_eq!(
            dwell.count(),
            mc.stats().migrations,
            "one dwell sample per migration"
        );
        assert!(dwell.sum() <= mc.stats().requests, "dwell exceeds requests");
        assert!(dwell.count() > 0, "stream must migrate");
        // Unbounded table: no eviction ages.
        assert!(mc.affinity_age_histogram().is_none());
    }

    #[test]
    fn skewed_controller_exposes_eviction_ages() {
        let mut mc = MigrationController::new(ControllerConfig {
            table: TableConfig::Skewed {
                entries: 64,
                ways: 4,
            },
            sampler: Sampler::full(),
            ..ControllerConfig::paper_4core()
        });
        for t in 0..50_000u64 {
            mc.on_request(t % 10_000, true);
        }
        let ages = mc.affinity_age_histogram().expect("skewed table");
        assert!(ages.count() > 0, "thrashing cache must evict");
    }

    #[test]
    fn table_stats_reflect_config() {
        let mut small = MigrationController::new(ControllerConfig {
            table: TableConfig::Skewed {
                entries: 64,
                ways: 4,
            },
            sampler: Sampler::full(),
            ..ControllerConfig::paper_4core()
        });
        for t in 0..50_000u64 {
            small.on_request(t % 10_000, true);
        }
        assert!(
            small.table_stats().miss_rate() > 0.3,
            "tiny affinity cache should thrash: {:?}",
            small.table_stats()
        );
    }
}
