//! The transition filter (§3.4).
//!
//! "We define a transition filter `F`. The transition filter is an
//! up-down saturating counter updated on each reference: for a reference
//! `e` at time `t`, `F(t+1) = F(t) + A_e(t)`. Instead of looking at the
//! sign of `A_e` for determining which subset `e` belongs to, we look at
//! the sign of `F`."
//!
//! Doubling the saturation level roughly halves the transition frequency
//! on random working sets, at the cost of doubling the reaction delay on
//! splittable ones: with 16 affinity bits and a `k`-bit filter the
//! residual transition frequency on a saturated random working set is
//! about `1/2^(1+k−16)`.

use crate::invariants;
use crate::sat;
use crate::Side;

/// An up-down saturating counter whose sign designates the executing
/// subset.
///
/// ```
/// use execmig_core::{Side, TransitionFilter};
/// let mut f = TransitionFilter::new(20);
/// assert_eq!(f.side(), Side::Plus); // starts at 0, sign(0) = +
/// f.update(-100);
/// assert_eq!(f.side(), Side::Minus);
/// ```
#[derive(Debug, Clone)]
pub struct TransitionFilter {
    value: i64,
    bits: u32,
}

impl TransitionFilter {
    /// Creates a filter of the given width (paper: 20 bits in §4.1,
    /// 18 bits in §4.2 — 2 bits shorter because only 25 % of references
    /// update it under sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 62]`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=62).contains(&bits), "filter width out of range");
        TransitionFilter { value: 0, bits }
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Current counter value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Adds an affinity `A_e` (saturating).
    pub fn update(&mut self, a_e: i64) {
        self.value = sat::add(self.value, a_e, self.bits);
        invariants::check_filter_range(self.value, self.bits); // I103
    }

    /// The subset the filter currently designates.
    pub fn side(&self) -> Side {
        Side::of(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_positive() {
        let f = TransitionFilter::new(18);
        assert_eq!(f.value(), 0);
        assert_eq!(f.side(), Side::Plus);
    }

    #[test]
    fn sign_follows_accumulated_affinity() {
        let mut f = TransitionFilter::new(10);
        f.update(5);
        assert_eq!(f.side(), Side::Plus);
        f.update(-6);
        assert_eq!(f.side(), Side::Minus);
        f.update(1);
        assert_eq!(f.side(), Side::Plus);
    }

    #[test]
    fn saturates_at_width() {
        let mut f = TransitionFilter::new(8); // [-128, 127]
        for _ in 0..100 {
            f.update(100);
        }
        assert_eq!(f.value(), 127);
        for _ in 0..100 {
            f.update(-100);
        }
        assert_eq!(f.value(), -128);
    }

    #[test]
    fn wider_filter_delays_transition() {
        // Feed a constant negative affinity after positive saturation;
        // the wider filter needs proportionally more steps to flip.
        let steps_to_flip = |bits: u32| {
            let mut f = TransitionFilter::new(bits);
            for _ in 0..1_000_000 {
                f.update(i64::MAX / 4); // saturate positive
            }
            let mut n = 0u64;
            while f.side() == Side::Plus {
                f.update(-16);
                n += 1;
            }
            n
        };
        let narrow = steps_to_flip(8);
        let wide = steps_to_flip(12);
        assert!(
            wide >= narrow * 8,
            "widening 4 bits should multiply delay ~16x: {narrow} -> {wide}"
        );
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn rejects_width_one() {
        TransitionFilter::new(1);
    }
}
