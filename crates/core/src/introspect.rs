//! Derived statistics and configuration serialisation.
//!
//! Two kinds of convenience views live here rather than next to their
//! types:
//!
//! - **Float-valued derived metrics** (`miss_rate`, `transition_rate`,
//!   `positive_fraction`). The fixed-point modules (`sat`, `window`,
//!   `filter`, `table`, `mechanism`, `splitter2`, `splitter4`) carry a
//!   hot-path rule — lint E005 — that forbids any `f32`/`f64`
//!   arithmetic in them, keeping "the affinity algorithm is pure
//!   saturating integer arithmetic" literally checkable. Ratio views
//!   over their counters are introspection, not algorithm, so they are
//!   implemented in this file.
//! - **`ToJson` impls for every exported config struct** (lint E008),
//!   so run manifests can embed the exact configuration of any
//!   experiment.

use crate::controller::{ControllerConfig, SplitWays, TableConfig};
use crate::mechanism::{DeltaMode, MechanismConfig, SignMode};
use crate::sampler::Sampler;
use crate::splitter2::{Splitter2, SplitterConfig, SplitterStats};
use crate::splitter4::Splitter4Config;
use crate::table::{AffinityTable, TableStats};
use crate::tree::SplitterTreeConfig;
use crate::Side;
use execmig_obs::{impl_to_json, Json, ToJson};

impl TableStats {
    /// Fraction of reads that missed; 0 when nothing was read.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl SplitterStats {
    /// Transitions per reference; 0 when nothing was processed.
    pub fn transition_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.transitions as f64 / self.references as f64
        }
    }
}

impl<T: AffinityTable> Splitter2<T> {
    /// Fraction of the elements in `range` whose affinity is
    /// non-negative; untracked elements are skipped.
    pub fn positive_fraction(&self, range: std::ops::Range<u64>) -> f64 {
        let mut tracked = 0u64;
        let mut positive = 0u64;
        for e in range {
            if let Some(a) = self.affinity_of(e) {
                tracked += 1;
                if Side::of(a) == Side::Plus {
                    positive += 1;
                }
            }
        }
        if tracked == 0 {
            0.0
        } else {
            positive as f64 / tracked as f64
        }
    }
}

impl ToJson for SignMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SignMode::TrueSum => "true_sum",
                SignMode::RegisterOnly => "register_only",
            }
            .to_string(),
        )
    }
}

impl ToJson for DeltaMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                DeltaMode::Wide => "wide",
                DeltaMode::Saturating17 => "saturating17",
            }
            .to_string(),
        )
    }
}

impl ToJson for SplitWays {
    fn to_json(&self) -> Json {
        Json::UInt(self.count() as u64)
    }
}

impl ToJson for TableConfig {
    fn to_json(&self) -> Json {
        match self {
            TableConfig::Unbounded => Json::object().field("kind", "unbounded"),
            TableConfig::Skewed { entries, ways } => Json::object()
                .field("kind", "skewed")
                .field("entries", *entries)
                .field("ways", *ways),
        }
    }
}

impl ToJson for Sampler {
    fn to_json(&self) -> Json {
        Json::object().field("sampled_below", self.threshold())
    }
}

impl_to_json!(MechanismConfig {
    affinity_bits,
    r_window,
    sign_mode,
    delta_mode,
});

impl_to_json!(SplitterConfig {
    affinity_bits,
    r_window,
    filter_bits,
    sign_mode,
    delta_mode,
});

impl_to_json!(Splitter4Config {
    affinity_bits,
    r_window_x,
    r_window_y,
    filter_bits,
    sampler,
    sign_mode,
    delta_mode,
});

impl_to_json!(SplitterTreeConfig {
    depth,
    affinity_bits,
    r_window_top,
    filter_bits,
    sampler,
    sign_mode,
    delta_mode,
});

impl_to_json!(ControllerConfig {
    ways,
    affinity_bits,
    r_window_x,
    r_window_y,
    filter_bits,
    sampler,
    table,
    l2_filter,
    pointer_filter,
    sign_mode,
    delta_mode,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_and_transition_rate_handle_zero() {
        assert_eq!(TableStats::default().miss_rate(), 0.0);
        assert_eq!(SplitterStats::default().transition_rate(), 0.0);
        let t = TableStats { hits: 3, misses: 1 };
        assert!((t.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn enums_serialise_as_tags() {
        assert_eq!(SignMode::TrueSum.to_json().compact(), r#""true_sum""#);
        assert_eq!(
            DeltaMode::Saturating17.to_json().compact(),
            r#""saturating17""#
        );
        assert_eq!(SplitWays::Four.to_json().compact(), "4");
        assert_eq!(
            TableConfig::Unbounded.to_json().compact(),
            r#"{"kind":"unbounded"}"#
        );
        let skewed = TableConfig::Skewed {
            entries: 8 << 10,
            ways: 4,
        };
        assert_eq!(
            skewed.to_json().compact(),
            r#"{"kind":"skewed","entries":8192,"ways":4}"#
        );
    }

    #[test]
    fn paper_config_roundtrips_key_fields() {
        let j = ControllerConfig::paper_4core().to_json();
        assert_eq!(j.get("ways"), Some(&Json::UInt(4)));
        assert_eq!(j.get("filter_bits"), Some(&Json::UInt(18)));
        assert_eq!(j.get("l2_filter"), Some(&Json::Bool(true)));
        assert_eq!(
            j.get("sampler").and_then(|s| s.get("sampled_below")),
            Some(&Json::UInt(8))
        );
        let j = Splitter4Config::default().to_json();
        assert_eq!(j.get("r_window_x"), Some(&Json::UInt(128)));
        let j = SplitterTreeConfig::default().to_json();
        assert_eq!(j.get("depth"), Some(&Json::UInt(3)));
        let j = MechanismConfig::default().to_json();
        assert_eq!(j.get("sign_mode"), Some(&Json::Str("true_sum".into())));
        let j = SplitterConfig::default().to_json();
        assert_eq!(j.get("filter_bits"), Some(&Json::Null));
    }
}
