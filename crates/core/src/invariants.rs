//! Runtime invariant kernel: the dynamic twin of the `execmig-lint`
//! static catalog (rules I101–I104; I105–I107 live in
//! `execmig-machine`, next to the coherence state they inspect).
//!
//! Every check compiles to nothing in release builds (`debug_assert!`),
//! and every debug-build test run — tier-1 `cargo test` and the CI
//! `analysis` job — exercises the whole kernel. The rule numbers match
//! DESIGN.md ("Invariant catalog & static analysis") and the output of
//! `execmig-lint --catalog`.
//!
//! - **I101** (§3.2): every recovered affinity `A_e` fits the
//!   configured saturating width.
//! - **I102** (Fig 2, §3.3): the `A_R` register equals the sum of the
//!   stored `I_e` values over the R-window, up to a residue that exact
//!   double-entry bookkeeping tracks (see [`ArShadow`]).
//! - **I103** (§3.4): the transition filter `F` stays inside its
//!   saturating range.
//! - **I104** (§3.2): under the literal `Saturating17` reading, `∆`
//!   stays inside its `bits[O_e] + 1`-bit width.

use crate::sat;
use crate::window::RWindow;

/// I101 (§3.2): a recovered affinity fits its configured width.
///
/// Called on every `A_e`/`A_f` the mechanism recovers; the saturating
/// clamp makes violation impossible unless the clamp itself regresses,
/// which is exactly what the check guards.
#[inline]
pub fn check_affinity_bounds(a: i64, bits: u32) {
    debug_assert!(
        {
            let (lo, hi) = sat::range(bits);
            (lo..=hi).contains(&a)
        },
        "I101: affinity {a} outside the {bits}-bit saturating range (§3.2)"
    );
}

/// I103 (§3.4): the transition filter value is inside its width.
#[inline]
pub fn check_filter_range(value: i64, bits: u32) {
    debug_assert!(
        {
            let (lo, hi) = sat::range(bits);
            (lo..=hi).contains(&value)
        },
        "I103: filter value {value} outside the {bits}-bit saturating range (§3.4)"
    );
}

/// I104 (§3.2): `∆` fits `bits[∆] = bits[O_e] + 1` under
/// `DeltaMode::Saturating17`.
#[inline]
pub fn check_delta_width(delta: i64, bits: u32) {
    debug_assert!(
        {
            let (lo, hi) = sat::range(bits);
            (lo..=hi).contains(&delta)
        },
        "I104: \u{2206} = {delta} outside its {bits}-bit width (§3.2)"
    );
}

/// I102 bookkeeping: verifies `A_R == Σ_{e∈R} I_e + residue`.
///
/// Figure 2 updates the register by `A_R += O_e − O_f`, which tracks
/// entry/exit swaps of the window, not the window sum itself. The two
/// agree up to an exactly computable residue: each warm-up push (no
/// eviction) contributes `∆`, and each steady-state push contributes
/// `∆ + I_f − clamp(I_f + ∆, bits)` — zero whenever the recovered exit
/// affinity does not clamp. [`ArShadow`] accrues that residue in O(1)
/// per reference and compares the register against a full window scan
/// every [`SCAN_PERIOD`](ArShadow::SCAN_PERIOD) references, so the
/// check is exact but costs O(1) amortised.
///
/// Applies to `DeltaMode::Wide` only; under `Saturating17` the register
/// itself saturates and the identity intentionally breaks.
#[derive(Debug, Clone, Default)]
pub struct ArShadow {
    residue: i64,
    refs: u64,
}

impl ArShadow {
    /// References between full window scans.
    pub const SCAN_PERIOD: u64 = 1024;

    /// Records a warm-up push (nothing left the window); `delta` is the
    /// `∆` in effect during the reference.
    #[inline]
    pub fn on_warmup(&mut self, delta: i64) {
        self.residue += delta;
    }

    /// Records a steady-state push: `f` left with stored value `i_f`,
    /// recovered as the clamped affinity `a_f`.
    #[inline]
    pub fn on_evict(&mut self, delta: i64, i_f: i64, a_f: i64) {
        self.residue += delta + i_f - a_f;
    }

    /// Asserts the I102 identity. Call once per reference, after the
    /// register update; the window scan runs every
    /// [`SCAN_PERIOD`](Self::SCAN_PERIOD) calls.
    #[inline]
    pub fn check(&mut self, ar: i64, window: &RWindow) {
        self.refs += 1;
        if !self.refs.is_multiple_of(Self::SCAN_PERIOD) {
            return;
        }
        let window_sum: i64 = window.iter().map(|(_, i_e)| i_e).sum();
        debug_assert!(
            ar == window_sum + self.residue,
            "I102: A_R register {ar} != window sum {window_sum} + residue {} \
             after {} references (Fig 2, §3.3)",
            self.residue,
            self.refs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{DeltaMode, Mechanism, MechanismConfig};
    use crate::table::UnboundedAffinityTable;

    #[test]
    fn bounds_checks_accept_in_range_values() {
        check_affinity_bounds(32767, 16);
        check_affinity_bounds(-32768, 16);
        check_filter_range(0, 18);
        check_delta_width(-65536, 17);
    }

    #[test]
    #[should_panic(expected = "I101")]
    #[cfg(debug_assertions)]
    fn affinity_bound_violation_trips() {
        check_affinity_bounds(32768, 16);
    }

    #[test]
    #[should_panic(expected = "I103")]
    #[cfg(debug_assertions)]
    fn filter_range_violation_trips() {
        check_filter_range(1 << 20, 18);
    }

    #[test]
    #[should_panic(expected = "I104")]
    #[cfg(debug_assertions)]
    fn delta_width_violation_trips() {
        check_delta_width(1 << 17, 17);
    }

    /// The shadow identity holds along a real mechanism run — the
    /// mechanism calls the shadow internally in debug builds, so a
    /// clean long run over clamping-heavy streams *is* the test; here
    /// we force many scans over a stream that saturates affinities.
    #[test]
    fn shadow_survives_saturating_stream() {
        let mut m = Mechanism::new(MechanismConfig {
            affinity_bits: 4, // tiny width: clamps constantly
            r_window: 32,
            delta_mode: DeltaMode::Wide,
            ..MechanismConfig::default()
        });
        let mut t = UnboundedAffinityTable::new();
        for i in 0..200_000u64 {
            m.on_reference(i % 97, &mut t);
        }
    }

    #[test]
    fn shadow_survives_warmup_only_run() {
        let mut m = Mechanism::new(MechanismConfig {
            r_window: 4096,
            ..MechanismConfig::default()
        });
        let mut t = UnboundedAffinityTable::new();
        // 2048 < 4096: the window never fills; every push is warm-up.
        for i in 0..2048u64 {
            m.on_reference(i, &mut t);
        }
    }
}
