#![warn(missing_docs)]

//! The paper's contribution: the **affinity algorithm** and the
//! **migration controller** (Michaud, HPCA 2004, §3).
//!
//! # The problem
//!
//! Distribute the working set of a sequential program over several L2
//! caches so the program benefits from the aggregate capacity, while
//! migrating execution between cores as rarely as possible. Viewed as
//! graph partitioning this is NP-hard; the paper instead proposes an
//! online mechanism simple enough for hardware.
//!
//! # The affinity algorithm (§3.2)
//!
//! Every working-set element `e` (a cache line) carries a signed
//! *affinity* `A_e`. Let `R` be the `|R|` most recently referenced
//! elements and `A_R = Σ_{e∈R} A_e`. On each reference:
//!
//! ```text
//! A_e(t+1) = A_e(t) + sign(A_R(t))   if e ∈ R
//! A_e(t+1) = A_e(t) − sign(A_R(t))   if e ∉ R
//! ```
//!
//! A *local positive feedback* pushes elements that are in `R` together
//! toward the same sign, while a *global negative feedback* balances the
//! two signs across the working set — splitting it into two halves with
//! few transitions between them.
//!
//! The hardware implementation (Figure 2) postpones the per-element
//! updates using a global counter `∆` and per-element stored values
//! `O_e = A_e + ∆` (while out of `R`) and `I_e = A_e − ∆` (while in
//! `R`), all in saturating 16-bit arithmetic. [`Mechanism`] implements
//! exactly that datapath; [`SignMode`] selects between the figure's
//! register (`sign(A_R-register)`) and the algebraically exact
//! `sign(register + |R|·∆)`.
//!
//! # Transition filtering, sampling, 4-way splitting (§3.4–§3.6)
//!
//! - [`TransitionFilter`]: an up-down saturating counter `F += A_e`;
//!   the executing subset is `sign(F)`, which rate-limits migrations on
//!   unsplittable (random) working sets.
//! - [`Sampler`]: `H(e) = e mod 31`; only lines with `H(e) < 8` get
//!   affinity-cache entries (25 % sampling), the rest rely on the filter.
//! - [`Splitter4`]: recursive 2-way splitting — mechanism `X` handles
//!   odd-`H` lines, `Y[sign(F_X)]` the even-`H` ones; the 4-way subset is
//!   `(sign(F_X), sign(F_{Y[sign(F_X)]}))`.
//! - [`MigrationController`]: ties it all together behind the L1-miss
//!   request stream, with optional *L2 filtering* (filter updates only on
//!   L2 misses) so "a migration can happen only upon a L2 miss".
//!
//! # Example: split a circular working set
//!
//! ```
//! use execmig_core::{Splitter2, SplitterConfig};
//!
//! let mut s = Splitter2::new(SplitterConfig {
//!     r_window: 100,
//!     ..SplitterConfig::default()
//! });
//! // Circular(4000): the paper's canonical splittable stream.
//! for t in 0..1_000_000u64 {
//!     s.on_reference(t % 4000);
//! }
//! let positive = s.positive_fraction(0..4000);
//! assert!((0.35..=0.65).contains(&positive), "unbalanced: {positive}");
//! assert!(s.stats().transition_rate() < 1.0 / 200.0);
//! ```

pub mod controller;
pub mod filter;
pub mod introspect;
pub mod invariants;
pub mod mechanism;
pub mod reference;
pub mod sampler;
pub mod sat;
pub mod splitter2;
pub mod splitter4;
pub mod table;
pub mod tree;
pub mod window;

pub use controller::{
    ControllerConfig, ControllerStats, MigrationController, SplitWays, TableConfig,
};
pub use filter::TransitionFilter;
pub use mechanism::{DeltaMode, Mechanism, MechanismConfig, SignMode};
pub use reference::IdealAffinity;
pub use sampler::Sampler;
pub use splitter2::{Splitter2, SplitterConfig, SplitterStats};
pub use splitter4::{Quadrant, Splitter4, Splitter4Config};
pub use table::{
    AffinityTable, AnyAffinityTable, SkewedAffinityCache, TableStats, UnboundedAffinityTable,
};
pub use tree::{SplitterTree, SplitterTreeConfig};
pub use window::RWindow;

/// Which of the two subsets an element or the execution belongs to.
///
/// `Plus` corresponds to `sign(·) = +1` (the paper defines
/// `sign(x) = 1` for `x ≥ 0`), `Minus` to `−1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Non-negative affinity/filter.
    Plus,
    /// Negative affinity/filter.
    Minus,
}

impl Side {
    /// The side of a signed value, per the paper's `sign` convention.
    ///
    /// ```
    /// use execmig_core::Side;
    /// assert_eq!(Side::of(0), Side::Plus);
    /// assert_eq!(Side::of(17), Side::Plus);
    /// assert_eq!(Side::of(-1), Side::Minus);
    /// ```
    pub const fn of(value: i64) -> Side {
        if value >= 0 {
            Side::Plus
        } else {
            Side::Minus
        }
    }

    /// +1 or −1.
    pub const fn sign(self) -> i64 {
        match self {
            Side::Plus => 1,
            Side::Minus => -1,
        }
    }

    /// 0 for `Plus`, 1 for `Minus` (stable subset indexing).
    pub const fn index(self) -> usize {
        match self {
            Side::Plus => 0,
            Side::Minus => 1,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Plus => f.write_str("+"),
            Side::Minus => f.write_str("-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_of_zero_is_plus() {
        assert_eq!(Side::of(0), Side::Plus);
        assert_eq!(Side::of(i64::MIN), Side::Minus);
        assert_eq!(Side::of(i64::MAX), Side::Plus);
    }

    #[test]
    fn side_sign_and_index() {
        assert_eq!(Side::Plus.sign(), 1);
        assert_eq!(Side::Minus.sign(), -1);
        assert_eq!(Side::Plus.index(), 0);
        assert_eq!(Side::Minus.index(), 1);
    }

    #[test]
    fn side_display() {
        assert_eq!(Side::Plus.to_string(), "+");
        assert_eq!(Side::Minus.to_string(), "-");
    }
}
