//! One 2-way splitting mechanism — the Figure 2 datapath.
//!
//! The mechanism owns an R-window, the `A_R` register, and the `∆`
//! counter; the affinity cache is passed in per reference because the
//! 4-way scheme shares one cache among three mechanisms (§3.6).
//!
//! Per reference to element `e` with FIFO victim `f` (Figure 2):
//!
//! ```text
//! O_e  read from the affinity cache (miss ⇒ O_e = ∆, i.e. A_e = 0)
//! A_e  = O_e − ∆
//! I_e  = O_e − 2∆      pushed into the R-window with e
//! O_f  = I_f + 2∆      written back to the affinity cache
//! A_R  ← A_R + O_e − O_f
//! ∆    ← ∆ + sign(A_R)
//! ```
//!
//! All quantities use saturating arithmetic at the widths of §3.2.

use crate::invariants;
use crate::sat;
use crate::table::AffinityTable;
use crate::window::RWindow;
use crate::Side;

/// How the `sign` driving `∆` is computed.
///
/// Figure 2 draws a register updated by `A_R ← A_R + O_e − O_f` whose
/// sign feeds `∆`. Read literally, that register drifts away from the
/// true affinity sum `Σ_{e∈R} A_e` by `|R|·∆` (every step, all `|R|`
/// window members gain `sign(A_R)` under Definition 1, which the
/// increment `O_e − O_f` does not capture). Empirically the literal
/// register yields ~20× the transition frequency the paper reports on
/// `Circular(4000)`, while correcting the sign argument by `|R|·∆` —
/// algebraically the true sum, and one shift-and-add in hardware —
/// reproduces the paper's "optimal splitting, one transition every 2000
/// references" exactly. [`SignMode::TrueSum`] is therefore the default;
/// the literal register survives as [`SignMode::RegisterOnly`] for the
/// `ablation_signmode` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignMode {
    /// `sign(A_R-register + |R|·∆)` — the sign of the true affinity sum
    /// of Definition 1 (absent saturation). Matches the paper's
    /// reported behaviour; default.
    #[default]
    TrueSum,
    /// `sign(A_R-register)`, the literal reading of Figure 2. Splits
    /// working sets too, but with an order of magnitude more
    /// transitions.
    RegisterOnly,
}

/// How the `∆` counter and the `∆`-relative stored values are bounded.
///
/// §3.2 dimensions `∆` at 17 bits. Read as a *saturating* counter, that
/// is fatal over long runs: the zero tie-break of `sign` biases `∆`
/// upward, it eventually pins at +2^16, the `−∆` decay of out-of-window
/// elements stops, and every recovered affinity clamps to the negative
/// rail — the splitter collapses to one subset (observable after ~10⁷
/// references on a circular stream). The paper's sustained Table 2 /
/// Figure 4-5 results over ~10⁹ instructions cannot have come from a
/// collapsing mechanism, so the faithful-to-results reading is that the
/// `∆`-relative encodings behave as unbounded (hardware-wise: wrapping)
/// counters, with the paper's 16-bit saturation applied to the
/// *recovered affinity* at each touch. [`DeltaMode::Wide`] implements
/// that and is the default; [`DeltaMode::Saturating17`] keeps the
/// literal reading for the `ablation_signmode` study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeltaMode {
    /// Unbounded `∆` and stored values; affinities saturate at the
    /// configured width when recovered (entry/exit of the R-window).
    #[default]
    Wide,
    /// Literal §3.2 widths: 17-bit saturating `∆`, 16-bit saturating
    /// stored values. Collapses on long runs.
    Saturating17,
}

/// Configuration of one [`Mechanism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismConfig {
    /// Bits of `O_e`/`I_e`/`A_e` (paper: 16).
    pub affinity_bits: u32,
    /// `|R|`.
    pub r_window: usize,
    /// Sign source for the `∆` update.
    pub sign_mode: SignMode,
    /// Bounding of `∆` and the stored values.
    pub delta_mode: DeltaMode,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        MechanismConfig {
            affinity_bits: 16,
            r_window: 128,
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }
}

impl MechanismConfig {
    fn validate(&self) {
        assert!(
            (2..=32).contains(&self.affinity_bits),
            "affinity width out of range"
        );
        assert!(self.r_window > 0, "R-window must be non-empty");
    }
}

/// One 2-way splitting mechanism (Figure 2).
#[derive(Debug, Clone)]
pub struct Mechanism {
    config: MechanismConfig,
    window: RWindow,
    /// The `A_R` register.
    ar: i64,
    /// The postponed-update counter `∆`.
    delta: i64,
    ar_bits: u32,
    delta_bits: u32,
    /// I102 double-entry bookkeeping (debug builds, Wide mode only).
    #[cfg(debug_assertions)]
    shadow: invariants::ArShadow,
}

impl Mechanism {
    /// Builds a mechanism.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized R-window or an affinity width outside
    /// `[2, 32]` bits.
    pub fn new(config: MechanismConfig) -> Self {
        config.validate();
        Mechanism {
            window: RWindow::new(config.r_window),
            ar: 0,
            delta: 0,
            ar_bits: sat::ar_bits(config.affinity_bits, config.r_window),
            delta_bits: sat::delta_bits(config.affinity_bits),
            config,
            #[cfg(debug_assertions)]
            shadow: invariants::ArShadow::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MechanismConfig {
        &self.config
    }

    /// Current `∆`.
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// Current `A_R` register value.
    pub fn ar(&self) -> i64 {
        self.ar
    }

    /// Processes a reference to `e`, updating the shared affinity
    /// `table`; returns `A_e(t)` — the element's affinity at reference
    /// time, which drives the transition filter and subset choice.
    pub fn on_reference<T: AffinityTable + ?Sized>(&mut self, e: u64, table: &mut T) -> i64 {
        let bits = self.config.affinity_bits;
        match self.config.delta_mode {
            DeltaMode::Wide => {
                // Unbounded ∆-relative encodings; the affinity
                // saturates at `bits` when recovered on entry/exit.
                let o_e = table.read_or_insert(e, self.delta);
                let a_e = sat::clamp(o_e - self.delta, bits);
                invariants::check_affinity_bounds(a_e, bits); // I101
                let i_e = a_e - self.delta; // re-anchor through clamped A_e
                let a_f = match self.window.push(e, i_e) {
                    Some((f, i_f)) => {
                        let a_f = sat::clamp(i_f + self.delta, bits);
                        invariants::check_affinity_bounds(a_f, bits); // I101
                        table.write(f, a_f + self.delta);
                        #[cfg(debug_assertions)]
                        self.shadow.on_evict(self.delta, i_f, a_f);
                        a_f
                    }
                    None => {
                        // Warm-up: nothing leaves.
                        #[cfg(debug_assertions)]
                        self.shadow.on_warmup(self.delta);
                        0
                    }
                };
                // `a_e − a_f` equals the Saturating17 path's
                // `o_e − o_f`: the register tracks entry/exit swaps and
                // the true window sum is `register + |R|·∆`. The
                // register must NOT saturate here: with balanced
                // affinities the true sum hovers near zero, so the
                // register tracks `−|R|·∆`, which grows without bound.
                // (Real hardware would instead track the true sum
                // directly — bounded by `|R|·2^(bits−1)`, i.e. the
                // paper's `bits[A_R]` — by adding the uniform
                // `|R|·sign` drift each step; the two formulations are
                // equivalent, and this one keeps the Figure 2 shape.)
                self.ar += a_e - a_f;
                let sign_arg = match self.config.sign_mode {
                    SignMode::TrueSum => self.ar + self.window.len() as i64 * self.delta,
                    SignMode::RegisterOnly => self.ar,
                };
                self.delta += Side::of(sign_arg).sign();
                #[cfg(debug_assertions)]
                self.shadow.check(self.ar, &self.window); // I102
                a_e
            }
            DeltaMode::Saturating17 => {
                let o_e = table.read_or_insert(e, sat::clamp(self.delta, bits));
                let a_e = sat::clamp(o_e - self.delta, bits);
                invariants::check_affinity_bounds(a_e, bits); // I101
                let i_e = sat::clamp(o_e - 2 * self.delta, bits);
                match self.window.push(e, i_e) {
                    Some((f, i_f)) => {
                        let o_f = sat::clamp(i_f + 2 * self.delta, bits);
                        table.write(f, o_f);
                        self.ar = sat::add(self.ar, o_e - o_f, self.ar_bits);
                    }
                    None => {
                        // Warm-up: no element leaves; the register gains
                        // the entering element's affinity.
                        self.ar = sat::add(self.ar, a_e, self.ar_bits);
                    }
                }
                let sign_arg = match self.config.sign_mode {
                    SignMode::TrueSum => self.ar + self.window.len() as i64 * self.delta,
                    SignMode::RegisterOnly => self.ar,
                };
                self.delta = sat::add(self.delta, Side::of(sign_arg).sign(), self.delta_bits);
                invariants::check_delta_width(self.delta, self.delta_bits); // I104
                a_e
            }
        }
    }

    /// The current affinity `A_e` of `e`, if tracked: from its window
    /// entry (`I_e + ∆`) when `e ∈ R`, else from the affinity cache
    /// (`O_e − ∆`). Introspection only (Figure 3 snapshots).
    pub fn affinity_of<T: AffinityTable + ?Sized>(&self, e: u64, table: &T) -> Option<i64> {
        let bits = self.config.affinity_bits;
        if let Some(i_e) = self.window.find(e) {
            return Some(sat::clamp(i_e + self.delta, bits));
        }
        table.peek(e).map(|o_e| sat::clamp(o_e - self.delta, bits))
    }

    /// The side `e` would be assigned by raw affinity sign (no filter).
    pub fn side_of<T: AffinityTable + ?Sized>(&self, e: u64, table: &T) -> Option<Side> {
        self.affinity_of(e, table).map(Side::of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::UnboundedAffinityTable;

    fn run_circular(n: u64, r: usize, steps: u64) -> (Mechanism, UnboundedAffinityTable) {
        let mut m = Mechanism::new(MechanismConfig {
            r_window: r,
            ..MechanismConfig::default()
        });
        let mut t = UnboundedAffinityTable::new();
        for i in 0..steps {
            m.on_reference(i % n, &mut t);
        }
        (m, t)
    }

    #[test]
    fn first_reference_has_zero_affinity() {
        let mut m = Mechanism::new(MechanismConfig::default());
        let mut t = UnboundedAffinityTable::new();
        assert_eq!(m.on_reference(42, &mut t), 0);
    }

    #[test]
    fn affinities_stay_within_width() {
        let (m, t) = run_circular(400, 100, 200_000);
        for e in 0..400 {
            let a = m.affinity_of(e, &t).expect("tracked");
            assert!((-32768..=32767).contains(&a), "A_{e} = {a}");
        }
    }

    #[test]
    fn circular_splits_into_balanced_halves() {
        // §3.3 / Figure 3: Circular N=4000, |R|=100 splits ~50/50.
        let (m, t) = run_circular(4000, 100, 1_000_000);
        let positive = (0..4000)
            .filter(|&e| m.side_of(e, &t) == Some(Side::Plus))
            .count();
        let frac = positive as f64 / 4000.0;
        assert!(
            (0.35..=0.65).contains(&frac),
            "positive fraction {frac} — no balanced split"
        );
    }

    #[test]
    fn circular_split_has_low_transition_rate() {
        let (mut m, mut t) = run_circular(4000, 100, 1_000_000);
        let rate = late_transition_rate(&mut m, &mut t, 4000);
        // §3.3: after enough time the transition frequency never
        // exceeded one transition every 2|R| references.
        assert!(rate <= 1.0 / 200.0, "transition rate {rate}");
    }

    /// Steady-state side-transition rate along the reference stream.
    fn late_transition_rate(m: &mut Mechanism, t: &mut UnboundedAffinityTable, n: u64) -> f64 {
        let mut transitions = 0u64;
        let mut last = None;
        let refs = 100_000u64;
        for i in 0..refs {
            let side = Side::of(m.on_reference(i % n, t));
            if last.is_some() && last != Some(side) {
                transitions += 1;
            }
            last = Some(side);
        }
        transitions as f64 / refs as f64
    }

    #[test]
    fn small_circular_does_not_split_usefully() {
        // §3.3: the algorithm splits Circular only if N > 2|R|. For
        // N ≤ 2|R| the negative feedback fails: elements are always
        // referenced on the same side, so the stream never alternates
        // between subsets — there is no *usable* split (while for
        // N > 2|R| the steady state has ~2 transitions per lap).
        let (mut m, mut t) = run_circular(150, 100, 300_000);
        let rate = late_transition_rate(&mut m, &mut t, 150);
        assert!(
            rate < 1.0 / 10_000.0,
            "N <= 2|R| produced an alternating split: rate {rate}"
        );
        let (mut m2, mut t2) = run_circular(4000, 100, 1_000_000);
        let rate2 = late_transition_rate(&mut m2, &mut t2, 4000);
        assert!(
            rate2 > 1.0 / 10_000.0,
            "N > 2|R| should alternate between subsets: rate {rate2}"
        );
    }

    #[test]
    fn register_only_mode_also_splits_circular() {
        // The literal Figure 2 register still achieves a balanced
        // split, just with a higher transition frequency.
        let mut m = Mechanism::new(MechanismConfig {
            r_window: 100,
            sign_mode: SignMode::RegisterOnly,
            ..MechanismConfig::default()
        });
        let mut t = UnboundedAffinityTable::new();
        for i in 0..1_000_000u64 {
            m.on_reference(i % 4000, &mut t);
        }
        let positive = (0..4000)
            .filter(|&e| m.side_of(e, &t) == Some(Side::Plus))
            .count();
        let frac = positive as f64 / 4000.0;
        assert!((0.3..=0.7).contains(&frac), "register-only fraction {frac}");
    }

    #[test]
    fn true_sum_mode_reaches_optimal_circular_split() {
        // Figure 3: Circular(4000), |R|=100 settles to the optimal
        // splitting with one transition every 2000 references.
        let (mut m, mut t) = run_circular(4000, 100, 1_000_000);
        let rate = late_transition_rate(&mut m, &mut t, 4000);
        assert!(
            (rate - 1.0 / 2000.0).abs() < 1.0 / 4000.0,
            "expected ~1/2000 transitions, got {rate}"
        );
    }

    #[test]
    fn affinity_of_consults_window_first() {
        let mut m = Mechanism::new(MechanismConfig {
            r_window: 4,
            ..MechanismConfig::default()
        });
        let mut t = UnboundedAffinityTable::new();
        let a = m.on_reference(1, &mut t);
        // Element 1 is in the window; affinity_of must agree with the
        // value the mechanism just computed (modulo the one ∆ step that
        // followed — A_e changes by ±1 per step while in R).
        let now = m.affinity_of(1, &t).unwrap();
        assert!((now - a).abs() <= 1, "window path broken: {now} vs {a}");
    }

    #[test]
    fn untracked_element_has_no_affinity() {
        let m = Mechanism::new(MechanismConfig::default());
        let t = UnboundedAffinityTable::new();
        assert_eq!(m.affinity_of(7, &t), None);
        assert_eq!(m.side_of(7, &t), None);
    }
}
