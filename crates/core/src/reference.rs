//! The idealized affinity algorithm of Definition 1 (§3.2), implemented
//! literally: every element's affinity is updated on every reference,
//! and `R` is the set of the `n` most recently referenced *distinct*
//! elements (true LRU, no FIFO relaxation).
//!
//! This is O(working set) per reference, so it only suits small examples
//! — exactly its purpose: a ground-truth oracle the hardware-shaped
//! [`Mechanism`](crate::Mechanism) is validated against in tests and in
//! the `ablation_signmode` experiment.

use crate::Side;
use std::collections::HashMap;

/// Literal implementation of the affinity update (Equation 1).
#[derive(Debug, Clone)]
pub struct IdealAffinity {
    n: usize,
    affinity: HashMap<u64, i64>,
    /// Recency list, most recent last; `R` is the last `min(n, len)`
    /// distinct elements.
    recency: Vec<u64>,
}

impl IdealAffinity {
    /// Creates the oracle with `|R| = n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "R must be non-empty");
        IdealAffinity {
            n,
            affinity: HashMap::new(),
            recency: Vec::new(),
        }
    }

    /// Processes a reference to `e` and returns `A_e` before the update
    /// (the value a transition filter would consume).
    pub fn on_reference(&mut self, e: u64) -> i64 {
        // A_e(t_e) = 0 on first reference.
        let a_e = *self.affinity.entry(e).or_insert(0);
        // Update the recency list: move e to the back.
        if let Some(pos) = self.recency.iter().position(|&x| x == e) {
            self.recency.remove(pos);
        }
        self.recency.push(e);
        // R = the n most recently referenced distinct elements.
        let start = self.recency.len().saturating_sub(self.n);
        let r: &[u64] = &self.recency[start..];
        let a_r: i64 = r.iter().map(|x| self.affinity[x]).sum();
        let s = Side::of(a_r).sign();
        // Equation 1: +s inside R, −s outside.
        let r_set: std::collections::HashSet<u64> = r.iter().copied().collect();
        for (el, a) in self.affinity.iter_mut() {
            if r_set.contains(el) {
                *a += s;
            } else {
                *a -= s;
            }
        }
        a_e
    }

    /// The current affinity of `e`, if ever referenced.
    pub fn affinity_of(&self, e: u64) -> Option<i64> {
        self.affinity.get(&e).copied()
    }

    /// The side of `e` by raw affinity sign.
    pub fn side_of(&self, e: u64) -> Option<Side> {
        self.affinity_of(e).map(Side::of)
    }

    /// Fraction of elements in `range` with non-negative affinity.
    pub fn positive_fraction(&self, range: std::ops::Range<u64>) -> f64 {
        let mut tracked = 0u64;
        let mut positive = 0u64;
        for e in range {
            if let Some(a) = self.affinity_of(e) {
                tracked += 1;
                if a >= 0 {
                    positive += 1;
                }
            }
        }
        if tracked == 0 {
            0.0
        } else {
            positive as f64 / tracked as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Mechanism, MechanismConfig};
    use crate::table::UnboundedAffinityTable;

    #[test]
    fn circular_splits_with_ideal_algorithm() {
        let n = 400u64;
        let mut ideal = IdealAffinity::new(50);
        for t in 0..100_000u64 {
            ideal.on_reference(t % n);
        }
        let frac = ideal.positive_fraction(0..n);
        assert!((0.35..=0.65).contains(&frac), "ideal fraction {frac}");
    }

    #[test]
    fn ideal_and_mechanism_agree_on_splittability() {
        // Both should split Circular(400) with |R|=50 into balanced
        // halves; the exact assignment may differ.
        let n = 400u64;
        let mut ideal = IdealAffinity::new(50);
        let mut mech = Mechanism::new(MechanismConfig {
            r_window: 50,
            ..MechanismConfig::default()
        });
        let mut table = UnboundedAffinityTable::new();
        for t in 0..100_000u64 {
            ideal.on_reference(t % n);
            mech.on_reference(t % n, &mut table);
        }
        let fi = ideal.positive_fraction(0..n);
        let fm = (0..n)
            .filter(|&e| mech.side_of(e, &table) == Some(Side::Plus))
            .count() as f64
            / n as f64;
        assert!((0.35..=0.65).contains(&fi), "ideal {fi}");
        assert!((0.35..=0.65).contains(&fm), "mechanism {fm}");
    }

    #[test]
    fn ideal_groups_synchronous_elements() {
        // §3.2 positive feedback: groups of m synchronous elements
        // (referenced together, |R| = m) acquire a uniform sign inside
        // each group, while the negative feedback balances group signs
        // across the working set. The universe must exceed 2|R|
        // (10 groups of 20 = 200 elements, |R| = 20).
        let m = 20u64;
        let groups = 10u64;
        let mut ideal = IdealAffinity::new(m as usize);
        for round in 0..4000 {
            let g = round % groups;
            for e in 0..m {
                ideal.on_reference(g * 100 + e);
            }
        }
        let mut coherent = 0;
        let mut positive_groups = 0;
        for g in 0..groups {
            let frac = ideal.positive_fraction(g * 100..g * 100 + m);
            if frac <= 0.1 || frac >= 0.9 {
                coherent += 1;
            }
            if frac >= 0.5 {
                positive_groups += 1;
            }
        }
        assert!(coherent >= 8, "only {coherent}/10 groups sign-coherent");
        assert!(
            (3..=7).contains(&positive_groups),
            "group signs unbalanced: {positive_groups}/10 positive"
        );
    }

    #[test]
    fn first_reference_is_zero() {
        let mut ideal = IdealAffinity::new(4);
        assert_eq!(ideal.on_reference(7), 0);
        assert_eq!(ideal.affinity_of(8), None);
    }
}
