//! Working-set sampling (§3.5).
//!
//! Lines are sampled through `H(e) = e mod 31`. A prime modulus avoids
//! pathological resonance with the constant-stride streams that are
//! frequent in practice, and mod-31 is cheap in hardware: split `e` into
//! 5-bit blocks `e = Σ 2^{5i} e_i`; then `H(e) = Σ e_i mod 31` (a
//! carry-save adder and a small ROM).
//!
//! With an 8k-entry affinity cache the paper samples 25 % of the working
//! set: lines with `H(e) < 8` get affinity entries, the rest rely on the
//! transition filter alone. The parity of `H(e)` additionally routes
//! sampled lines to the 4-way mechanisms (§3.6: odd → `X`, even →
//! `Y[sign(F_X)]`).

/// The sampling hash and predicate.
///
/// ```
/// use execmig_core::Sampler;
/// let s = Sampler::quarter(); // the paper's 25% configuration
/// assert_eq!(s.hash(62), 0);  // 62 mod 31
/// assert!(s.is_sampled(62));
/// assert!(!s.is_sampled(30)); // H = 30 >= 8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    /// Lines with `H(e) < sampled_below` are sampled.
    sampled_below: u64,
}

/// The fixed hash modulus (prime, per §3.5).
pub const MODULUS: u64 = 31;

impl Sampler {
    /// A sampler keeping lines with `H(e) < sampled_below`.
    ///
    /// # Panics
    ///
    /// Panics if `sampled_below` is 0 or above 31.
    pub fn new(sampled_below: u64) -> Self {
        assert!(
            (1..=MODULUS).contains(&sampled_below),
            "threshold must be in [1, 31]"
        );
        Sampler { sampled_below }
    }

    /// The paper's §4.2 configuration: ~25 % of lines (`H(e) < 8`).
    pub fn quarter() -> Self {
        Sampler::new(8)
    }

    /// Samples every line (the §4.1 unlimited-affinity-cache setting).
    pub fn full() -> Self {
        Sampler::new(MODULUS)
    }

    /// The threshold below which `H(e)` is sampled.
    pub fn threshold(&self) -> u64 {
        self.sampled_below
    }

    /// `H(e) = e mod 31`, computed via the 5-bit block decomposition the
    /// paper proposes for hardware.
    pub fn hash(&self, line: u64) -> u64 {
        mod31_blocks(line)
    }

    /// True if `line` participates in the affinity mechanisms.
    pub fn is_sampled(&self, line: u64) -> bool {
        self.hash(line) < self.sampled_below
    }

    /// The fraction of the working set sampled (≈ threshold / 31).
    pub fn sampling_fraction(&self) -> f64 {
        self.sampled_below as f64 / MODULUS as f64
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::full()
    }
}

/// `e mod 31` via 5-bit blocks: because `2^5 ≡ 1 (mod 31)`, summing the
/// 5-bit digits preserves the residue; iterate until the sum fits.
pub fn mod31_blocks(e: u64) -> u64 {
    let mut v = e;
    // Note `> 31`, not `>= 31`: 31 is a fixed point of the digit sum
    // (0b11111) and is folded to 0 after the loop.
    while v > 31 {
        let mut sum = 0u64;
        let mut rest = v;
        while rest > 0 {
            sum += rest & 0x1f;
            rest >>= 5;
        }
        v = sum;
    }
    // The digit-sum loop fixes at 31 itself (11111b -> 31), which is ≡ 0.
    if v == 31 {
        0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod31_matches_remainder() {
        for e in 0..100_000u64 {
            assert_eq!(mod31_blocks(e), e % 31, "e = {e}");
        }
        for e in [u64::MAX, u64::MAX - 1, 1 << 63, 0x1f, 31, 32, 961] {
            assert_eq!(mod31_blocks(e), e % 31, "e = {e}");
        }
    }

    #[test]
    fn quarter_samples_about_a_quarter() {
        let s = Sampler::quarter();
        let sampled = (0..31_000u64).filter(|&e| s.is_sampled(e)).count();
        let frac = sampled as f64 / 31_000.0;
        assert!((0.25..0.27).contains(&frac), "sampled fraction {frac}");
        assert!((s.sampling_fraction() - 8.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn full_samples_everything() {
        let s = Sampler::full();
        assert!((0..1000u64).all(|e| s.is_sampled(e)));
    }

    #[test]
    fn prime_modulus_spreads_strides() {
        // A power-of-two stride must still hit all residues: 31 is
        // coprime with 2^k, so stride-64 lines cycle through all 31
        // values.
        let s = Sampler::full();
        let mut seen = std::collections::HashSet::new();
        for i in 0..31u64 {
            seen.insert(s.hash(i * 64));
        }
        assert_eq!(seen.len(), 31, "stride-64 collapsed the hash");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        Sampler::new(0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_over_threshold() {
        Sampler::new(32);
    }
}
