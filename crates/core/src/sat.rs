//! Width-limited saturating signed arithmetic.
//!
//! §3.2: "In practice, `O_e` is coded with a limited number of bits.
//! Consequently, the affinity algorithm works with saturating addition.
//! Throughout this study, we assume 16 bits are used for coding the
//! affinity. The other parameters are dimensioned accordingly:
//! `bits[I_e] = bits[O_e] = 16`, `bits[A_R] = bits[O_e] + log2(|R|)`,
//! `bits[∆] = bits[O_e] + 1`."

/// Inclusive range of an `n`-bit two's-complement value.
///
/// ```
/// use execmig_core::sat::range;
/// assert_eq!(range(16), (-32768, 32767));
/// assert_eq!(range(4), (-8, 7));
/// ```
///
/// # Panics
///
/// Panics if `bits` is 0 or above 62 (values must fit comfortably in
/// `i64` arithmetic without overflow).
pub const fn range(bits: u32) -> (i64, i64) {
    assert!(bits >= 1 && bits <= 62, "width out of supported range");
    (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
}

/// Clamps `v` to `bits` bits (saturating).
///
/// ```
/// use execmig_core::sat::clamp;
/// assert_eq!(clamp(40_000, 16), 32767);
/// assert_eq!(clamp(-40_000, 16), -32768);
/// assert_eq!(clamp(123, 16), 123);
/// ```
pub const fn clamp(v: i64, bits: u32) -> i64 {
    let (lo, hi) = range(bits);
    if v < lo {
        lo
    } else if v > hi {
        hi
    } else {
        v
    }
}

/// Saturating addition at `bits` bits: both operands are assumed to be
/// in range already; the sum is clamped.
pub const fn add(a: i64, b: i64, bits: u32) -> i64 {
    clamp(a + b, bits)
}

/// Number of bits for the `A_R` register given the affinity width and
/// the R-window size (§3.2: `bits[A_R] = bits[O_e] + log2(|R|)`).
///
/// ```
/// use execmig_core::sat::ar_bits;
/// assert_eq!(ar_bits(16, 128), 23);
/// assert_eq!(ar_bits(16, 100), 23); // log2 rounded up
/// ```
pub fn ar_bits(affinity_bits: u32, r_window: usize) -> u32 {
    let log2 = usize::BITS - r_window.next_power_of_two().leading_zeros() - 1;
    affinity_bits + log2
}

/// Number of bits for `∆` (§3.2: `bits[∆] = bits[O_e] + 1`).
pub const fn delta_bits(affinity_bits: u32) -> u32 {
    affinity_bits + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_endpoints() {
        assert_eq!(range(1), (-1, 0));
        assert_eq!(range(17), (-65536, 65535));
        assert_eq!(range(62), (-(1 << 61), (1 << 61) - 1));
    }

    #[test]
    fn clamp_identity_in_range() {
        for v in [-32768i64, -1, 0, 1, 32767] {
            assert_eq!(clamp(v, 16), v);
        }
    }

    #[test]
    fn add_saturates_both_directions() {
        assert_eq!(add(32767, 1, 16), 32767);
        assert_eq!(add(-32768, -1, 16), -32768);
        assert_eq!(add(-32768, 1, 16), -32767);
        assert_eq!(add(100, 23, 16), 123);
    }

    #[test]
    fn ar_bits_paper_dimensions() {
        // |R| = 128 -> 16 + 7 = 23; |R| = 64 -> 16 + 6 = 22.
        assert_eq!(ar_bits(16, 128), 23);
        assert_eq!(ar_bits(16, 64), 22);
        assert_eq!(ar_bits(16, 1), 16);
    }

    #[test]
    fn delta_bits_is_one_more() {
        assert_eq!(delta_bits(16), 17);
    }
}
