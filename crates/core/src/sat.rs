//! Width-limited saturating signed arithmetic.
//!
//! §3.2: "In practice, `O_e` is coded with a limited number of bits.
//! Consequently, the affinity algorithm works with saturating addition.
//! Throughout this study, we assume 16 bits are used for coding the
//! affinity. The other parameters are dimensioned accordingly:
//! `bits[I_e] = bits[O_e] = 16`, `bits[A_R] = bits[O_e] + log2(|R|)`,
//! `bits[∆] = bits[O_e] + 1`."

/// Inclusive range of an `n`-bit two's-complement value.
///
/// ```
/// use execmig_core::sat::range;
/// assert_eq!(range(16), (-32768, 32767));
/// assert_eq!(range(4), (-8, 7));
/// ```
///
/// # Panics
///
/// Panics if `bits` is 0 or above 62 (values must fit comfortably in
/// `i64` arithmetic without overflow).
pub const fn range(bits: u32) -> (i64, i64) {
    assert!(bits >= 1 && bits <= 62, "width out of supported range");
    (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
}

/// Clamps `v` to `bits` bits (saturating).
///
/// ```
/// use execmig_core::sat::clamp;
/// assert_eq!(clamp(40_000, 16), 32767);
/// assert_eq!(clamp(-40_000, 16), -32768);
/// assert_eq!(clamp(123, 16), 123);
/// ```
pub const fn clamp(v: i64, bits: u32) -> i64 {
    let (lo, hi) = range(bits);
    if v < lo {
        lo
    } else if v > hi {
        hi
    } else {
        v
    }
}

/// Saturating addition at `bits` bits: both operands are assumed to be
/// in range already; the sum is clamped.
pub const fn add(a: i64, b: i64, bits: u32) -> i64 {
    clamp(a + b, bits)
}

/// Number of bits for the `A_R` register given the affinity width and
/// the R-window size (§3.2: `bits[A_R] = bits[O_e] + log2(|R|)`).
///
/// ```
/// use execmig_core::sat::ar_bits;
/// assert_eq!(ar_bits(16, 128), 23);
/// assert_eq!(ar_bits(16, 100), 23); // log2 rounded up
/// ```
pub fn ar_bits(affinity_bits: u32, r_window: usize) -> u32 {
    let log2 = usize::BITS - r_window.next_power_of_two().leading_zeros() - 1;
    affinity_bits + log2
}

/// Number of bits for `∆` (§3.2: `bits[∆] = bits[O_e] + 1`).
pub const fn delta_bits(affinity_bits: u32) -> u32 {
    affinity_bits + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_endpoints() {
        assert_eq!(range(1), (-1, 0));
        assert_eq!(range(17), (-65536, 65535));
        assert_eq!(range(62), (-(1 << 61), (1 << 61) - 1));
    }

    #[test]
    fn clamp_identity_in_range() {
        for v in [-32768i64, -1, 0, 1, 32767] {
            assert_eq!(clamp(v, 16), v);
        }
    }

    #[test]
    fn add_saturates_both_directions() {
        assert_eq!(add(32767, 1, 16), 32767);
        assert_eq!(add(-32768, -1, 16), -32768);
        assert_eq!(add(-32768, 1, 16), -32767);
        assert_eq!(add(100, 23, 16), 123);
    }

    #[test]
    fn ar_bits_paper_dimensions() {
        // |R| = 128 -> 16 + 7 = 23; |R| = 64 -> 16 + 6 = 22.
        assert_eq!(ar_bits(16, 128), 23);
        assert_eq!(ar_bits(16, 64), 22);
        assert_eq!(ar_bits(16, 1), 16);
    }

    #[test]
    fn delta_bits_is_one_more() {
        assert_eq!(delta_bits(16), 17);
    }

    /// Deterministic sample of interesting `i64` values for the property
    /// tests below: endpoints, near-endpoint, zero, and pseudo-random.
    fn samples() -> Vec<i64> {
        let mut v = vec![i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v.push(x as i64);
            v.push((x >> 17) as i64); // smaller magnitudes too
        }
        v
    }

    #[test]
    fn clamp_properties_at_width_boundaries() {
        for bits in [1u32, 2, 16, 61, 62] {
            let (lo, hi) = range(bits);
            assert_eq!(lo, -hi - 1, "two's complement asymmetry at {bits}");
            for v in samples() {
                let c = clamp(v, bits);
                assert!((lo..=hi).contains(&c), "clamp escaped range at {bits}");
                // Idempotent, monotone vs the endpoints, identity inside.
                assert_eq!(clamp(c, bits), c);
                if (lo..=hi).contains(&v) {
                    assert_eq!(c, v);
                } else {
                    assert_eq!(c, if v < lo { lo } else { hi });
                }
            }
        }
    }

    #[test]
    fn one_bit_width_round_trips() {
        // bits = 1 is the degenerate lattice {-1, 0}: every sum stays
        // inside it and saturation is absorbing.
        assert_eq!(range(1), (-1, 0));
        for a in [-1i64, 0] {
            for b in [-1i64, 0] {
                let s = add(a, b, 1);
                assert!((-1..=0).contains(&s));
                assert_eq!(add(s, 0, 1), s);
            }
        }
        assert_eq!(add(-1, -1, 1), -1, "negative saturation absorbs");
    }

    #[test]
    fn saturation_round_trips_at_62_bits() {
        // Once saturated, further pushes in the same direction are
        // no-ops, and stepping back then forward returns to the rail —
        // even at the widest supported width, where `a + b` in `add`
        // must not overflow i64 for in-range operands.
        let (lo, hi) = range(62);
        for k in [1i64, 2, 1 << 20, hi] {
            assert_eq!(add(hi, k, 62), hi);
            assert_eq!(add(lo, -k, 62), lo);
        }
        assert_eq!(add(add(hi, -1, 62), 1, 62), hi);
        assert_eq!(add(add(lo, 1, 62), -1, 62), lo);
        // In-range sums are exact at the widest width.
        assert_eq!(add(hi - 5, 3, 62), hi - 2);
        assert_eq!(add(lo + 5, -3, 62), lo + 2);
    }

    #[test]
    fn add_commutes_and_respects_rails() {
        for bits in [1u32, 3, 16, 62] {
            let (lo, hi) = range(bits);
            for &a in &[lo, lo + 1, -1, 0, 1, hi - 1, hi][..] {
                for &b in &[lo, -1, 0, 1, hi][..] {
                    // Operands in range per the documented contract.
                    let ab = add(a, b, bits);
                    assert_eq!(ab, add(b, a, bits), "commutativity at {bits}");
                    assert!((lo..=hi).contains(&ab));
                }
            }
        }
    }

    #[test]
    fn ar_bits_boundary_windows() {
        // |R| = 1 adds nothing; exact powers of two add their log;
        // anything in between rounds the log up.
        assert_eq!(ar_bits(1, 1), 1);
        assert_eq!(ar_bits(1, 2), 2);
        assert_eq!(ar_bits(16, 2), 17);
        assert_eq!(ar_bits(16, 3), 18);
        assert_eq!(ar_bits(16, 127), 23);
        assert_eq!(ar_bits(16, 129), 24);
        for r in 1usize..=512 {
            let bits = ar_bits(1, r) - 1; // the log2 term alone
            assert!(1usize << bits >= r, "2^{bits} < |R|={r}");
            assert!(
                bits == 0 || (1usize << (bits - 1)) < r,
                "log not tight at {r}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width out of supported range")]
    fn rejects_zero_width() {
        range(0);
    }

    #[test]
    #[should_panic(expected = "width out of supported range")]
    fn rejects_width_63() {
        range(63);
    }
}
