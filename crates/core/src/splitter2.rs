//! 2-way working-set splitting: one mechanism, one optional transition
//! filter, one affinity table.

use crate::filter::TransitionFilter;
use crate::mechanism::{DeltaMode, Mechanism, MechanismConfig, SignMode};
use crate::table::{AffinityTable, UnboundedAffinityTable};
use crate::Side;

/// Configuration of a [`Splitter2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitterConfig {
    /// Bits of the affinity values (paper: 16).
    pub affinity_bits: u32,
    /// `|R|`.
    pub r_window: usize,
    /// Transition-filter width; `None` assigns subsets by raw affinity
    /// sign, the §3.2/§3.3 setting used for Figure 3.
    pub filter_bits: Option<u32>,
    /// Sign source for the `∆` update.
    pub sign_mode: SignMode,
    /// Bounding of `∆` and the stored values.
    pub delta_mode: DeltaMode,
}

impl Default for SplitterConfig {
    fn default() -> Self {
        SplitterConfig {
            affinity_bits: 16,
            r_window: 128,
            filter_bits: None,
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }
}

/// Transition statistics of a splitter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitterStats {
    /// References processed.
    pub references: u64,
    /// Times the designated subset changed between consecutive
    /// references.
    pub transitions: u64,
}

/// A complete 2-way splitter over its own (unbounded by default)
/// affinity table.
///
/// ```
/// use execmig_core::{Splitter2, SplitterConfig, Side};
/// let mut s = Splitter2::new(SplitterConfig::default());
/// let side: Side = s.on_reference(1234);
/// assert_eq!(s.stats().references, 1);
/// let _ = side;
/// ```
#[derive(Debug, Clone)]
pub struct Splitter2<T: AffinityTable = UnboundedAffinityTable> {
    mechanism: Mechanism,
    filter: Option<TransitionFilter>,
    table: T,
    current: Side,
    stats: SplitterStats,
}

impl Splitter2<UnboundedAffinityTable> {
    /// Builds a splitter over an unbounded affinity table.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`MechanismConfig`]).
    pub fn new(config: SplitterConfig) -> Self {
        Splitter2::with_table(config, UnboundedAffinityTable::new())
    }
}

impl<T: AffinityTable> Splitter2<T> {
    /// Builds a splitter over the given affinity table.
    pub fn with_table(config: SplitterConfig, table: T) -> Self {
        let mechanism = Mechanism::new(MechanismConfig {
            affinity_bits: config.affinity_bits,
            r_window: config.r_window,
            sign_mode: config.sign_mode,
            delta_mode: config.delta_mode,
        });
        Splitter2 {
            mechanism,
            filter: config.filter_bits.map(TransitionFilter::new),
            table,
            current: Side::Plus,
            stats: SplitterStats::default(),
        }
    }

    /// Processes a reference and returns the subset the splitter
    /// designates for execution after it.
    pub fn on_reference(&mut self, line: u64) -> Side {
        self.on_reference_filtered(line, true)
    }

    /// Like [`on_reference`](Self::on_reference), but `update_filter`
    /// can be false to model L2 filtering (§3.4): the affinity state
    /// still updates, the transition filter does not.
    pub fn on_reference_filtered(&mut self, line: u64, update_filter: bool) -> Side {
        let a_e = self.mechanism.on_reference(line, &mut self.table);
        let side = match &mut self.filter {
            Some(f) => {
                if update_filter {
                    f.update(a_e);
                }
                f.side()
            }
            None => Side::of(a_e),
        };
        self.stats.references += 1;
        if side != self.current {
            self.stats.transitions += 1;
            self.current = side;
        }
        side
    }

    /// The currently designated subset.
    pub fn current_side(&self) -> Side {
        self.current
    }

    /// Transition statistics.
    pub fn stats(&self) -> SplitterStats {
        self.stats
    }

    /// The affinity of `e`, if tracked (Figure 3 introspection).
    pub fn affinity_of(&self, e: u64) -> Option<i64> {
        self.mechanism.affinity_of(e, &self.table)
    }

    /// Borrow of the underlying affinity table.
    pub fn table(&self) -> &T {
        &self.table
    }

    /// Borrow of the underlying mechanism.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mechanism
    }

    /// The transition filter's current `F` value; without a filter
    /// (raw-sign splitting) falls back to the mechanism's `A_R`, which
    /// plays the same designating role.
    pub fn filter_value(&self) -> i64 {
        match &self.filter {
            Some(f) => f.value(),
            None => self.mechanism.ar(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_splits_and_settles() {
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 100,
            ..SplitterConfig::default()
        });
        for t in 0..1_000_000u64 {
            s.on_reference(t % 4000);
        }
        let frac = s.positive_fraction(0..4000);
        assert!((0.35..=0.65).contains(&frac), "fraction {frac}");
        // Steady-state transition rate: measure over a fresh window.
        let before = s.stats();
        for t in 0..100_000u64 {
            s.on_reference(t % 4000);
        }
        let after = s.stats();
        let rate = (after.transitions - before.transitions) as f64 / 100_000.0;
        assert!(rate <= 1.0 / 200.0, "late transition rate {rate}");
    }

    #[test]
    fn random_stream_with_filter_transitions_rarely() {
        // §3.4: a random working set is unsplittable; the filter keeps
        // the transition frequency around 1/2^(1+F-A) when affinities
        // saturate. With 16-bit affinities and a 20-bit filter ≈ 3%.
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 100,
            filter_bits: Some(20),
            ..SplitterConfig::default()
        });
        let mut state = 1u64;
        for _ in 0..2_000_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.on_reference((state >> 33) % 4000);
        }
        let rate = s.stats().transition_rate();
        assert!(rate < 0.10, "filtered random transition rate {rate}");
    }

    #[test]
    fn filter_suppression_vs_unfiltered_random() {
        let run = |filter_bits: Option<u32>| {
            let mut s = Splitter2::new(SplitterConfig {
                r_window: 64,
                filter_bits,
                ..SplitterConfig::default()
            });
            let mut state = 5u64;
            for _ in 0..500_000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.on_reference((state >> 33) % 2000);
            }
            s.stats().transition_rate()
        };
        let raw = run(None);
        let filtered = run(Some(20));
        assert!(
            filtered < raw / 3.0,
            "filter did not suppress transitions: raw {raw}, filtered {filtered}"
        );
    }

    #[test]
    fn l2_filtering_freezes_subset() {
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 16,
            filter_bits: Some(12),
            ..SplitterConfig::default()
        });
        let first = s.on_reference_filtered(1, false);
        for e in 0..10_000u64 {
            let side = s.on_reference_filtered(e % 64, false);
            assert_eq!(side, first, "side changed without filter updates");
        }
        assert_eq!(s.stats().transitions, 0);
    }

    #[test]
    fn stats_count_references() {
        let mut s = Splitter2::new(SplitterConfig::default());
        for e in 0..100 {
            s.on_reference(e);
        }
        assert_eq!(s.stats().references, 100);
    }
}
