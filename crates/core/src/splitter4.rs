//! 4-way working-set splitting by recursive 2-way splitting (§3.6).
//!
//! Three mechanisms share one affinity cache: `X` splits the whole
//! working set, `Y[+1]` and `Y[−1]` split the two halves. Instead of
//! storing two affinities per line, the scheme piggybacks on sampling:
//! a sampled line with odd `H(e)` is processed by `X`, one with even
//! `H(e)` by `Y[sign(F_X)]`. The 4-way subset of *any* reference is
//! `(sign(F_X), sign(F_{Y[sign(F_X)]}))`.
//!
//! §4.1 uses `|R_X| = 128`, `|R_Y[±1]| = 64`, 20-bit filters and an
//! unlimited affinity cache; §4.2 uses an 8k-entry skewed cache, 25 %
//! sampling and 18-bit filters.

use crate::filter::TransitionFilter;
use crate::mechanism::{DeltaMode, Mechanism, MechanismConfig, SignMode};
use crate::sampler::Sampler;
use crate::splitter2::SplitterStats;
use crate::table::{AffinityTable, TableStats, UnboundedAffinityTable};
use crate::Side;

/// One of the four subsets: `(sign(F_X), sign(F_Y))`.
///
/// ```
/// use execmig_core::{Quadrant, Side};
/// let q = Quadrant::from_sides(Side::Minus, Side::Plus);
/// assert_eq!(q.index(), 2);
/// assert_eq!(q.x(), Side::Minus);
/// assert_eq!(q.y(), Side::Plus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quadrant(u8);

impl Quadrant {
    /// Builds a quadrant from the two filter signs.
    pub const fn from_sides(x: Side, y: Side) -> Self {
        Quadrant((x.index() as u8) << 1 | y.index() as u8)
    }

    /// Builds a quadrant from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < 4, "quadrant index out of range");
        Quadrant(index as u8)
    }

    /// Stable index in `0..4`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The `X` (first-level) sign.
    pub const fn x(self) -> Side {
        if self.0 >> 1 == 0 {
            Side::Plus
        } else {
            Side::Minus
        }
    }

    /// The `Y` (second-level) sign.
    pub const fn y(self) -> Side {
        if self.0 & 1 == 0 {
            Side::Plus
        } else {
            Side::Minus
        }
    }
}

impl std::fmt::Display for Quadrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}{})", self.x(), self.y())
    }
}

/// Configuration of a [`Splitter4`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splitter4Config {
    /// Bits of the affinity values (paper: 16).
    pub affinity_bits: u32,
    /// `|R_X|` (paper: 128).
    pub r_window_x: usize,
    /// `|R_Y[+1]| = |R_Y[−1]|` (paper: 64 = `|R_X|/2`).
    pub r_window_y: usize,
    /// Transition-filter width (paper: 20 bits in §4.1, 18 in §4.2).
    pub filter_bits: u32,
    /// Which lines are sampled into the affinity mechanisms.
    pub sampler: Sampler,
    /// Sign source for the `∆` updates.
    pub sign_mode: SignMode,
    /// Bounding of `∆` and the stored values.
    pub delta_mode: DeltaMode,
}

impl Default for Splitter4Config {
    fn default() -> Self {
        Splitter4Config {
            affinity_bits: 16,
            r_window_x: 128,
            r_window_y: 64,
            filter_bits: 20,
            sampler: Sampler::full(),
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }
}

/// The full 4-way splitting apparatus of §3.6.
#[derive(Debug, Clone)]
pub struct Splitter4<T: AffinityTable = UnboundedAffinityTable> {
    x: Mechanism,
    /// Indexed by `Side::index()` of `sign(F_X)`.
    y: [Mechanism; 2],
    f_x: TransitionFilter,
    f_y: [TransitionFilter; 2],
    sampler: Sampler,
    table: T,
    current: Quadrant,
    stats: SplitterStats,
    /// References that updated an affinity mechanism (sampled ones).
    sampled_refs: u64,
}

impl Splitter4<UnboundedAffinityTable> {
    /// Builds a 4-way splitter over an unbounded affinity table.
    pub fn new(config: Splitter4Config) -> Self {
        Splitter4::with_table(config, UnboundedAffinityTable::new())
    }
}

impl<T: AffinityTable> Splitter4<T> {
    /// Builds a 4-way splitter over the given affinity table.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`MechanismConfig`] and
    /// [`TransitionFilter::new`]).
    pub fn with_table(config: Splitter4Config, table: T) -> Self {
        let mech = |r| {
            Mechanism::new(MechanismConfig {
                affinity_bits: config.affinity_bits,
                r_window: r,
                sign_mode: config.sign_mode,
                delta_mode: config.delta_mode,
            })
        };
        Splitter4 {
            x: mech(config.r_window_x),
            y: [mech(config.r_window_y), mech(config.r_window_y)],
            f_x: TransitionFilter::new(config.filter_bits),
            f_y: [
                TransitionFilter::new(config.filter_bits),
                TransitionFilter::new(config.filter_bits),
            ],
            sampler: config.sampler,
            table,
            current: Quadrant::from_sides(Side::Plus, Side::Plus),
            stats: SplitterStats::default(),
            sampled_refs: 0,
        }
    }

    /// Processes a reference; returns the quadrant designated for
    /// execution after it. `update_filter` is false under L2 filtering
    /// for requests that hit the L2 (§3.4).
    pub fn on_reference_filtered(&mut self, line: u64, update_filter: bool) -> Quadrant {
        let h = self.sampler.hash(line);
        if h < self.sampler.threshold() {
            self.sampled_refs += 1;
            if h % 2 == 1 {
                let a_e = self.x.on_reference(line, &mut self.table);
                if update_filter {
                    self.f_x.update(a_e);
                }
            } else {
                let yi = self.f_x.side().index();
                let a_e = self.y[yi].on_reference(line, &mut self.table);
                if update_filter {
                    self.f_y[yi].update(a_e);
                }
            }
        }
        let sx = self.f_x.side();
        let sy = self.f_y[sx.index()].side();
        let q = Quadrant::from_sides(sx, sy);
        self.stats.references += 1;
        if q != self.current {
            self.stats.transitions += 1;
            self.current = q;
        }
        q
    }

    /// Processes a reference with unconditional filter update.
    pub fn on_reference(&mut self, line: u64) -> Quadrant {
        self.on_reference_filtered(line, true)
    }

    /// The currently designated quadrant.
    pub fn current_quadrant(&self) -> Quadrant {
        self.current
    }

    /// Transition statistics.
    pub fn stats(&self) -> SplitterStats {
        self.stats
    }

    /// Affinity-table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// References that updated an affinity mechanism.
    pub fn sampled_references(&self) -> u64 {
        self.sampled_refs
    }

    /// The sampler in use.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Borrow of the underlying affinity table.
    pub fn table(&self) -> &T {
        &self.table
    }

    /// The first-level filter's current `F_X` value.
    pub fn filter_value(&self) -> i64 {
        self.f_x.value()
    }

    /// The second-level filter value `F_{Y[side]}` for the given
    /// first-level side (differential checkers compare both leaves).
    pub fn y_filter_value(&self, side: Side) -> i64 {
        self.f_y[side.index()].value()
    }

    /// The first-level mechanism (`X`).
    pub fn mechanism(&self) -> &Mechanism {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_roundtrips() {
        for i in 0..4 {
            let q = Quadrant::from_index(i);
            assert_eq!(q.index(), i);
            assert_eq!(Quadrant::from_sides(q.x(), q.y()), q);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quadrant_rejects_bad_index() {
        Quadrant::from_index(4);
    }

    #[test]
    fn quadrant_display() {
        assert_eq!(
            Quadrant::from_sides(Side::Plus, Side::Minus).to_string(),
            "(+-)"
        );
    }

    #[test]
    fn quadrant_packing_is_x_high_bit_y_low_bit() {
        // §3.6 cross-check: the packed index is
        // `sign(F_X) << 1 | sign(F_Y)` with Plus = 0, Minus = 1.
        assert_eq!(Quadrant::from_sides(Side::Plus, Side::Plus).index(), 0);
        assert_eq!(Quadrant::from_sides(Side::Plus, Side::Minus).index(), 1);
        assert_eq!(Quadrant::from_sides(Side::Minus, Side::Plus).index(), 2);
        assert_eq!(Quadrant::from_sides(Side::Minus, Side::Minus).index(), 3);
        for i in 0..4usize {
            let q = Quadrant::from_index(i);
            assert_eq!((q.x().index() << 1) | q.y().index(), i);
        }
    }

    #[test]
    fn odd_h_updates_x_even_h_updates_y_of_fx_sign() {
        // §3.6: "a sampled line with odd H(e) is processed by X, one
        // with even H(e) by Y[sign(F_X)]". With the full sampler,
        // H(e) = e mod 31. A second reference to a line yields
        // A_e = −∆ ≠ 0, which moves exactly one filter — revealing the
        // routing.
        //
        // e = 2 (even H) while F_X ≥ 0 must update F_Y[+] only.
        let mut s = Splitter4::new(Splitter4Config::default());
        s.on_reference(2);
        s.on_reference(2);
        assert_eq!(s.filter_value(), 0, "F_X must not move on even H");
        assert_ne!(s.y_filter_value(Side::Plus), 0, "F_Y[+] must move");
        assert_eq!(s.y_filter_value(Side::Minus), 0, "F_Y[−] must not move");

        // e = 1 (odd H) must update F_X only.
        let mut s = Splitter4::new(Splitter4Config::default());
        s.on_reference(1);
        s.on_reference(1);
        assert!(s.filter_value() < 0, "F_X must move on odd H");
        assert_eq!(s.y_filter_value(Side::Plus), 0);
        assert_eq!(s.y_filter_value(Side::Minus), 0);

        // With F_X < 0, even H routes to the other leaf: F_Y[−].
        s.on_reference(2);
        s.on_reference(2);
        assert_eq!(s.y_filter_value(Side::Plus), 0, "F_Y[+] must not move");
        assert_ne!(s.y_filter_value(Side::Minus), 0, "F_Y[−] must move");
    }

    #[test]
    fn circular_splits_four_ways() {
        // A large circular stream should spread over all four quadrants
        // and transition rarely once settled.
        let mut s = Splitter4::new(Splitter4Config::default());
        let n = 16_000u64;
        for t in 0..4_000_000u64 {
            s.on_reference(t % n);
        }
        // Steady state: classify each element by running one more lap
        // and recording the designated quadrant per reference.
        let mut counts = [0u64; 4];
        let before = s.stats().transitions;
        for t in 0..n {
            let q = s.on_reference(t % n);
            counts[q.index()] += 1;
        }
        let transitions = s.stats().transitions - before;
        let occupied = counts.iter().filter(|&&c| c > n / 16).count();
        assert!(
            occupied >= 3,
            "split uses only {occupied} quadrants: {counts:?}"
        );
        assert!(
            transitions <= 64,
            "{transitions} transitions in one settled lap"
        );
    }

    #[test]
    fn sampling_reduces_mechanism_traffic() {
        let mut full = Splitter4::new(Splitter4Config::default());
        let mut quarter = Splitter4::new(Splitter4Config {
            sampler: Sampler::quarter(),
            ..Splitter4Config::default()
        });
        for t in 0..100_000u64 {
            full.on_reference(t % 5000);
            quarter.on_reference(t % 5000);
        }
        assert_eq!(full.sampled_references(), 100_000);
        let frac = quarter.sampled_references() as f64 / 100_000.0;
        assert!((0.2..0.32).contains(&frac), "sampled fraction {frac}");
    }

    #[test]
    fn unsampled_lines_never_touch_the_table() {
        let mut s = Splitter4::new(Splitter4Config {
            sampler: Sampler::quarter(),
            ..Splitter4Config::default()
        });
        // Feed only lines with H(e) >= 8.
        let unsampled: Vec<u64> = (0..10_000u64)
            .filter(|&e| !Sampler::quarter().is_sampled(e))
            .collect();
        for &e in &unsampled {
            s.on_reference(e);
        }
        assert_eq!(s.sampled_references(), 0);
        let ts = s.table_stats();
        assert_eq!(ts.hits + ts.misses, 0);
    }

    #[test]
    fn l2_filtering_keeps_quadrant_stable() {
        let mut s = Splitter4::new(Splitter4Config::default());
        let q0 = s.on_reference_filtered(0, false);
        for t in 0..50_000u64 {
            let q = s.on_reference_filtered(t % 3000, false);
            assert_eq!(q, q0);
        }
        assert_eq!(s.stats().transitions, 0);
    }
}
