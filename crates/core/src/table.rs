//! Affinity storage: the *affinity cache* holding `O_e` per line.
//!
//! §3.5 dimensions it: "we need a 32k-entry affinity cache … It is
//! possible to decrease the size of the affinity cache by sampling the
//! working-set." §4.2 uses an 8k-entry, 4-way skewed-associative
//! affinity cache with age-based replacement, and "upon a miss for line
//! `e` in the affinity cache, we force `A_e = 0` by setting `O_e = ∆`".
//!
//! [`UnboundedAffinityTable`] (a hash map) models the "unlimited affinity
//! cache size" of the §4.1 stack-profile experiment; [`SkewedAffinityCache`]
//! models the finite hardware structure.

use std::collections::HashMap;

use execmig_obs::Histogram;

/// Hit/miss counters of an affinity table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Reads that found an entry.
    pub hits: u64,
    /// Reads that allocated a fresh entry (forcing `A_e = 0`).
    pub misses: u64,
}

/// Storage of `O_e` values, keyed by line address.
pub trait AffinityTable {
    /// Reads `O_e` for `line`; on a miss, installs `reset` (the caller
    /// passes its current `∆`, clamped to the affinity width, so the
    /// fresh entry has `A_e = 0`) and returns it.
    fn read_or_insert(&mut self, line: u64, reset: i64) -> i64;

    /// Writes `O_e` back when `line` leaves the R-window. May allocate
    /// if the entry was evicted in the meantime.
    fn write(&mut self, line: u64, o_e: i64);

    /// Reads without inserting or disturbing replacement state.
    fn peek(&self, line: u64) -> Option<i64>;

    /// Hit/miss counters.
    fn stats(&self) -> TableStats;
}

/// Unlimited affinity storage (§4.1's "unlimited affinity cache size").
#[derive(Debug, Clone, Default)]
pub struct UnboundedAffinityTable {
    map: HashMap<u64, i64>,
    stats: TableStats,
}

impl UnboundedAffinityTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        UnboundedAffinityTable::default()
    }

    /// Number of lines tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no line is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl AffinityTable for UnboundedAffinityTable {
    fn read_or_insert(&mut self, line: u64, reset: i64) -> i64 {
        match self.map.get(&line) {
            Some(&v) => {
                self.stats.hits += 1;
                v
            }
            None => {
                self.stats.misses += 1;
                self.map.insert(line, reset);
                reset
            }
        }
    }

    fn write(&mut self, line: u64, o_e: i64) {
        self.map.insert(line, o_e);
    }

    fn peek(&self, line: u64) -> Option<i64> {
        self.map.get(&line).copied()
    }

    fn stats(&self) -> TableStats {
        self.stats
    }
}

/// Per-way keys for the skewing hashes (distinct from the L2's keys; the
/// affinity cache is an independent structure).
const SKEW_KEYS: [u64; 8] = [
    0x2545_f491_4f6c_dd1d,
    0x27d4_eb2f_1656_67c5,
    0x1656_67b1_9e37_79f9,
    0x85eb_ca6b_27d4_eb2f,
    0xc2b2_ae3d_27d4_eb4f,
    0x9e37_79b1_85eb_ca87,
    0x1b87_3593_27d4_eb2d,
    0xff51_afd7_ed55_8ccd,
];

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    o_e: i64,
    valid: bool,
    /// Age-based replacement state (larger = more recently used).
    last: u64,
    /// Clock value when the entry was (re)allocated, for the
    /// age-at-eviction histogram.
    born: u64,
}

const EMPTY: Entry = Entry {
    line: 0,
    o_e: 0,
    valid: false,
    last: 0,
    born: 0,
};

/// A finite, skewed-associative affinity cache (§4.2: 8k entries,
/// 4-way skewed, age-based replacement).
///
/// ```
/// use execmig_core::{AffinityTable, SkewedAffinityCache};
/// let mut t = SkewedAffinityCache::new(8 << 10, 4);
/// assert_eq!(t.read_or_insert(7, 42), 42); // miss: forced to reset
/// assert_eq!(t.read_or_insert(7, 0), 42);  // hit
/// assert_eq!(t.stats().misses, 1);
/// assert_eq!(t.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SkewedAffinityCache {
    entries: Vec<Entry>,
    sets: u64,
    ways: u32,
    clock: u64,
    stats: TableStats,
    /// Lifetime (in table accesses) of each evicted entry.
    ages: Histogram,
}

impl SkewedAffinityCache {
    /// Creates a cache with `entries` total entries and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power-of-two multiple of `ways`, if
    /// `ways` is 0 or above 8.
    pub fn new(entries: u64, ways: u32) -> Self {
        assert!(ways > 0, "need at least one way");
        assert!(
            (ways as usize) <= SKEW_KEYS.len(),
            "at most {} ways supported",
            SKEW_KEYS.len()
        );
        assert!(
            entries.is_multiple_of(ways as u64),
            "entries must divide by ways"
        );
        let sets = entries / ways as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SkewedAffinityCache {
            entries: vec![EMPTY; entries as usize],
            sets,
            ways,
            clock: 0,
            stats: TableStats::default(),
            ages: Histogram::new(),
        }
    }

    /// Total entry count.
    pub fn capacity(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Entries currently valid.
    pub fn occupancy(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }

    fn index(&self, line: u64, way: u32) -> usize {
        let mut z = line ^ SKEW_KEYS[way as usize];
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        (way as u64 * self.sets + (z & (self.sets - 1))) as usize
    }

    fn find(&self, line: u64) -> Option<usize> {
        (0..self.ways)
            .map(|w| self.index(line, w))
            .find(|&i| self.entries[i].valid && self.entries[i].line == line)
    }

    /// How long evicted entries lived, in table accesses: the §3.5
    /// sizing question ("we need a 32k-entry affinity cache") made
    /// observable — entries dying young mean the cache is too small for
    /// the sampled working set.
    pub fn age_at_eviction(&self) -> &Histogram {
        &self.ages
    }

    fn evict(&mut self, i: usize) {
        if self.entries[i].valid {
            self.ages.observe(self.clock - self.entries[i].born);
        }
    }

    fn victim(&self, line: u64) -> usize {
        let mut victim = self.index(line, 0);
        for w in 0..self.ways {
            let i = self.index(line, w);
            if !self.entries[i].valid {
                return i;
            }
            if self.entries[i].last < self.entries[victim].last {
                victim = i;
            }
        }
        victim
    }
}

impl AffinityTable for SkewedAffinityCache {
    fn read_or_insert(&mut self, line: u64, reset: i64) -> i64 {
        self.clock += 1;
        if let Some(i) = self.find(line) {
            self.stats.hits += 1;
            self.entries[i].last = self.clock;
            return self.entries[i].o_e;
        }
        self.stats.misses += 1;
        let i = self.victim(line);
        self.evict(i);
        self.entries[i] = Entry {
            line,
            o_e: reset,
            valid: true,
            last: self.clock,
            born: self.clock,
        };
        reset
    }

    fn write(&mut self, line: u64, o_e: i64) {
        self.clock += 1;
        match self.find(line) {
            Some(i) => {
                self.entries[i].o_e = o_e;
                self.entries[i].last = self.clock;
            }
            None => {
                let i = self.victim(line);
                self.evict(i);
                self.entries[i] = Entry {
                    line,
                    o_e,
                    valid: true,
                    last: self.clock,
                    born: self.clock,
                };
            }
        }
    }

    fn peek(&self, line: u64) -> Option<i64> {
        self.find(line).map(|i| self.entries[i].o_e)
    }

    fn stats(&self) -> TableStats {
        self.stats
    }
}

/// Either affinity-table implementation, selected at run time by the
/// migration controller's configuration.
#[derive(Debug, Clone)]
pub enum AnyAffinityTable {
    /// Hash-map storage, never evicts.
    Unbounded(UnboundedAffinityTable),
    /// Finite skewed-associative hardware model.
    Skewed(SkewedAffinityCache),
}

impl AnyAffinityTable {
    /// Age-at-eviction histogram; `None` for the unbounded table
    /// (which never evicts).
    pub fn age_at_eviction(&self) -> Option<&Histogram> {
        match self {
            AnyAffinityTable::Unbounded(_) => None,
            AnyAffinityTable::Skewed(t) => Some(t.age_at_eviction()),
        }
    }
}

impl AffinityTable for AnyAffinityTable {
    fn read_or_insert(&mut self, line: u64, reset: i64) -> i64 {
        match self {
            AnyAffinityTable::Unbounded(t) => t.read_or_insert(line, reset),
            AnyAffinityTable::Skewed(t) => t.read_or_insert(line, reset),
        }
    }

    fn write(&mut self, line: u64, o_e: i64) {
        match self {
            AnyAffinityTable::Unbounded(t) => t.write(line, o_e),
            AnyAffinityTable::Skewed(t) => t.write(line, o_e),
        }
    }

    fn peek(&self, line: u64) -> Option<i64> {
        match self {
            AnyAffinityTable::Unbounded(t) => t.peek(line),
            AnyAffinityTable::Skewed(t) => t.peek(line),
        }
    }

    fn stats(&self) -> TableStats {
        match self {
            AnyAffinityTable::Unbounded(t) => t.stats(),
            AnyAffinityTable::Skewed(t) => t.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_basics() {
        let mut t = UnboundedAffinityTable::new();
        assert!(t.is_empty());
        assert_eq!(t.read_or_insert(1, -5), -5);
        assert_eq!(t.read_or_insert(1, 99), -5, "hit must ignore reset");
        t.write(1, 7);
        assert_eq!(t.peek(1), Some(7));
        assert_eq!(t.peek(2), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats(), TableStats { hits: 1, misses: 1 });
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut t = UnboundedAffinityTable::new();
        for i in 0..100_000u64 {
            t.read_or_insert(i, 0);
        }
        assert_eq!(t.len(), 100_000);
        assert_eq!(t.stats().misses, 100_000);
    }

    #[test]
    fn skewed_hit_after_insert() {
        let mut t = SkewedAffinityCache::new(64, 4);
        assert_eq!(t.read_or_insert(5, 3), 3);
        assert_eq!(t.read_or_insert(5, 0), 3);
        t.write(5, -9);
        assert_eq!(t.peek(5), Some(-9));
    }

    #[test]
    fn skewed_evicts_under_pressure() {
        let mut t = SkewedAffinityCache::new(64, 4);
        for i in 0..1000u64 {
            t.read_or_insert(i, i as i64);
        }
        assert_eq!(t.occupancy(), 64);
        assert!(t.stats().misses >= 1000 - 64);
    }

    #[test]
    fn skewed_write_allocates_if_evicted() {
        let mut t = SkewedAffinityCache::new(8, 4);
        t.read_or_insert(1, 0);
        // Thrash the cache so line 1 is likely evicted.
        for i in 100..200u64 {
            t.read_or_insert(i, 0);
        }
        t.write(1, 42);
        assert_eq!(t.peek(1), Some(42), "write must re-allocate");
    }

    #[test]
    fn skewed_age_based_replacement_prefers_old() {
        let mut t = SkewedAffinityCache::new(8, 2);
        // Fill, then keep touching a subset; victims should come from
        // the untouched lines (statistically: with skewing we can only
        // check that a recently touched line survives modest pressure).
        t.read_or_insert(1, 11);
        for i in 2..6u64 {
            t.read_or_insert(i, 0);
        }
        for _ in 0..20 {
            t.read_or_insert(1, 0); // keep 1 fresh
        }
        for i in 100..104u64 {
            t.read_or_insert(i, 0);
        }
        assert_eq!(t.peek(1), Some(11), "hot line evicted despite recency");
    }

    #[test]
    fn eviction_ages_are_recorded() {
        let mut t = SkewedAffinityCache::new(8, 2);
        // Fill past capacity: every eviction of a valid entry must land
        // in the age histogram, and ages are bounded by the clock.
        for i in 0..1000u64 {
            t.read_or_insert(i, 0);
        }
        let ages = t.age_at_eviction();
        assert!(ages.count() >= 1000 - 8, "evictions {}", ages.count());
        assert!(ages.max() < 1000, "age beyond clock: {}", ages.max());
        // A fresh cache has seen no evictions.
        assert!(SkewedAffinityCache::new(8, 2).age_at_eviction().is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn skewed_rejects_bad_geometry() {
        SkewedAffinityCache::new(96, 4);
    }

    #[test]
    fn any_table_dispatches() {
        let mut u = AnyAffinityTable::Unbounded(UnboundedAffinityTable::new());
        let mut s = AnyAffinityTable::Skewed(SkewedAffinityCache::new(16, 2));
        for t in [&mut u, &mut s] {
            assert_eq!(t.read_or_insert(3, 8), 8);
            t.write(3, -1);
            assert_eq!(t.peek(3), Some(-1));
            assert_eq!(t.stats().misses, 1);
        }
    }
}
