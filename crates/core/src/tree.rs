//! Generalised recursive working-set splitting: 2^depth subsets.
//!
//! §3.6 builds 4-way splitting from two levels of 2-way mechanisms and
//! conjectures in §6 that "it is possible to adapt it to a larger
//! number of cores". [`SplitterTree`] realises that: `depth` levels of
//! mechanisms, level `l` holding `2^l` of them (one per sign-path
//! through the upper levels). Sampled lines are distributed over the
//! levels by their hash, generalising the paper's odd/even rule:
//!
//! - level `l < depth−1` processes lines with `H(e) ≡ 2^l (mod 2^{l+1})`
//!   (half of the remaining lines at each level),
//! - the last level processes the rest (`H(e) ≡ 0 (mod 2^{depth−1})`).
//!
//! For `depth = 2` this is exactly the paper's scheme: odd hashes go to
//! `X`, even ones to `Y[sign(F_X)]`. R-windows halve per level
//! (`|R_X| = 128`, `|R_Y| = 64`, `|R_Z| = 32`, …).

use crate::filter::TransitionFilter;
use crate::mechanism::{DeltaMode, Mechanism, MechanismConfig, SignMode};
use crate::sampler::Sampler;
use crate::splitter2::SplitterStats;
use crate::table::{AffinityTable, TableStats, UnboundedAffinityTable};
use crate::Side;

/// Configuration of a [`SplitterTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitterTreeConfig {
    /// Levels of recursion; the tree produces `2^depth` subsets.
    pub depth: u32,
    /// Bits of the affinity values (paper: 16).
    pub affinity_bits: u32,
    /// `|R|` of the top-level mechanism; halves per level (minimum 8).
    pub r_window_top: usize,
    /// Transition-filter width.
    pub filter_bits: u32,
    /// Which lines are sampled.
    pub sampler: Sampler,
    /// Sign source for the `∆` updates.
    pub sign_mode: SignMode,
    /// Bounding of `∆` and the stored values.
    pub delta_mode: DeltaMode,
}

impl Default for SplitterTreeConfig {
    fn default() -> Self {
        SplitterTreeConfig {
            depth: 3,
            affinity_bits: 16,
            r_window_top: 128,
            filter_bits: 20,
            sampler: Sampler::full(),
            sign_mode: SignMode::TrueSum,
            delta_mode: DeltaMode::Wide,
        }
    }
}

/// A `2^depth`-way working-set splitter.
#[derive(Debug, Clone)]
pub struct SplitterTree<T: AffinityTable = UnboundedAffinityTable> {
    depth: u32,
    /// `levels[l][path]`: the mechanism+filter for sign-path `path`
    /// through levels `0..l`.
    levels: Vec<Vec<(Mechanism, TransitionFilter)>>,
    sampler: Sampler,
    table: T,
    current: usize,
    stats: SplitterStats,
    sampled_refs: u64,
}

impl SplitterTree<UnboundedAffinityTable> {
    /// Builds a tree over an unbounded affinity table.
    pub fn new(config: SplitterTreeConfig) -> Self {
        SplitterTree::with_table(config, UnboundedAffinityTable::new())
    }
}

impl<T: AffinityTable> SplitterTree<T> {
    /// Builds a tree over the given affinity table.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or above 4 (16-way: beyond any plausible
    /// single-chip configuration of the paper's era), or on invalid
    /// widths.
    pub fn with_table(config: SplitterTreeConfig, table: T) -> Self {
        assert!((1..=4).contains(&config.depth), "depth must be in [1, 4]");
        let levels = (0..config.depth)
            .map(|l| {
                let r = (config.r_window_top >> l).max(8);
                (0..(1usize << l))
                    .map(|_| {
                        (
                            Mechanism::new(MechanismConfig {
                                affinity_bits: config.affinity_bits,
                                r_window: r,
                                sign_mode: config.sign_mode,
                                delta_mode: config.delta_mode,
                            }),
                            TransitionFilter::new(config.filter_bits),
                        )
                    })
                    .collect()
            })
            .collect();
        SplitterTree {
            depth: config.depth,
            levels,
            sampler: config.sampler,
            table,
            current: 0,
            stats: SplitterStats::default(),
            sampled_refs: 0,
        }
    }

    /// Number of subsets (`2^depth`).
    pub fn subsets(&self) -> usize {
        1 << self.depth
    }

    /// The level a sampled hash is routed to.
    fn level_of(&self, h: u64) -> u32 {
        for l in 0..self.depth - 1 {
            if h % (1 << (l + 1)) == (1 << l) {
                return l;
            }
        }
        self.depth - 1
    }

    /// The sign-path through levels `0..l` given the current filters.
    fn path_to(&self, l: u32) -> usize {
        let mut path = 0usize;
        for level in 0..l {
            let (_, f) = &self.levels[level as usize][path];
            path = (path << 1) | f.side().index();
        }
        path
    }

    /// Processes a reference; returns the designated subset index in
    /// `0..2^depth`. `update_filter` is false for L2 hits under L2
    /// filtering.
    pub fn on_reference_filtered(&mut self, line: u64, update_filter: bool) -> usize {
        let h = self.sampler.hash(line);
        if h < self.sampler.threshold() {
            self.sampled_refs += 1;
            let l = self.level_of(h);
            let path = self.path_to(l);
            let (mech, filter) = &mut self.levels[l as usize][path];
            let a_e = mech.on_reference(line, &mut self.table);
            if update_filter {
                filter.update(a_e);
            }
        }
        // The designated subset: the full sign-path.
        let mut subset = 0usize;
        let mut path = 0usize;
        for level in 0..self.depth {
            let (_, f) = &self.levels[level as usize][path];
            let bit = f.side().index();
            subset = (subset << 1) | bit;
            path = (path << 1) | bit;
        }
        self.stats.references += 1;
        if subset != self.current {
            self.stats.transitions += 1;
            self.current = subset;
        }
        subset
    }

    /// Processes a reference with unconditional filter update.
    pub fn on_reference(&mut self, line: u64) -> usize {
        self.on_reference_filtered(line, true)
    }

    /// The currently designated subset.
    pub fn current_subset(&self) -> usize {
        self.current
    }

    /// Transition statistics.
    pub fn stats(&self) -> SplitterStats {
        self.stats
    }

    /// Affinity-table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// The affinity table.
    pub fn table(&self) -> &T {
        &self.table
    }

    /// References routed into some mechanism.
    pub fn sampled_references(&self) -> u64 {
        self.sampled_refs
    }

    /// The sign of level 0's filter (for cross-checks against
    /// [`Splitter2`](crate::Splitter2)).
    pub fn top_side(&self) -> Side {
        self.levels[0][0].1.side()
    }

    /// Level 0's filter value (`F_X`).
    pub fn filter_value(&self) -> i64 {
        self.levels[0][0].1.value()
    }

    /// Level 0's mechanism (`X`).
    pub fn mechanism(&self) -> &Mechanism {
        &self.levels[0][0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_bounds_enforced() {
        for depth in [1u32, 2, 3, 4] {
            let t = SplitterTree::new(SplitterTreeConfig {
                depth,
                ..SplitterTreeConfig::default()
            });
            assert_eq!(t.subsets(), 1 << depth);
        }
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn depth_zero_rejected() {
        SplitterTree::new(SplitterTreeConfig {
            depth: 0,
            ..SplitterTreeConfig::default()
        });
    }

    #[test]
    fn level_routing_matches_paper_for_depth_two() {
        // depth 2: odd hashes to level 0 (X), even to level 1 (Y).
        let t = SplitterTree::new(SplitterTreeConfig {
            depth: 2,
            ..SplitterTreeConfig::default()
        });
        for h in 0..31u64 {
            let expect = if h % 2 == 1 { 0 } else { 1 };
            assert_eq!(t.level_of(h), expect, "h = {h}");
        }
    }

    #[test]
    fn level_routing_halves_per_level_for_depth_three() {
        let t = SplitterTree::new(SplitterTreeConfig {
            depth: 3,
            ..SplitterTreeConfig::default()
        });
        let mut counts = [0u32; 3];
        for h in 0..31u64 {
            counts[t.level_of(h) as usize] += 1;
        }
        // Of the 31 residues 0..30: 15 odd, 8 ≡2 (mod 4), 8 ≡0 (mod 4).
        assert_eq!(counts, [15, 8, 8]);
    }

    #[test]
    fn eight_way_splits_circular() {
        let mut t = SplitterTree::new(SplitterTreeConfig {
            depth: 3,
            ..SplitterTreeConfig::default()
        });
        let n = 32_000u64;
        for i in 0..6_000_000u64 {
            t.on_reference(i % n);
        }
        // Steady state: one settled lap, count subsets used and
        // transitions.
        let mut used = [0u64; 8];
        let before = t.stats().transitions;
        for i in 0..n {
            used[t.on_reference(i % n)] += 1;
        }
        let transitions = t.stats().transitions - before;
        let occupied = used.iter().filter(|&&c| c > n / 32).count();
        assert!(occupied >= 5, "only {occupied} subsets used: {used:?}");
        assert!(
            transitions <= 3 * 8,
            "{transitions} transitions in one settled lap"
        );
    }

    #[test]
    fn depth_one_matches_two_way_balance() {
        let mut t = SplitterTree::new(SplitterTreeConfig {
            depth: 1,
            r_window_top: 100,
            ..SplitterTreeConfig::default()
        });
        for i in 0..1_000_000u64 {
            t.on_reference(i % 4000);
        }
        let before = t.stats().transitions;
        for i in 0..100_000u64 {
            t.on_reference(i % 4000);
        }
        let rate = (t.stats().transitions - before) as f64 / 100_000.0;
        assert!(rate < 0.01, "depth-1 tree transition rate {rate}");
    }

    #[test]
    fn l2_filtering_freezes_subsets() {
        let mut t = SplitterTree::new(SplitterTreeConfig::default());
        let first = t.on_reference_filtered(0, false);
        for i in 0..20_000u64 {
            assert_eq!(t.on_reference_filtered(i % 999, false), first);
        }
        assert_eq!(t.stats().transitions, 0);
    }

    #[test]
    fn sampling_reduces_traffic() {
        let mut full = SplitterTree::new(SplitterTreeConfig::default());
        let mut quarter = SplitterTree::new(SplitterTreeConfig {
            sampler: Sampler::quarter(),
            ..SplitterTreeConfig::default()
        });
        for i in 0..50_000u64 {
            full.on_reference(i % 7000);
            quarter.on_reference(i % 7000);
        }
        assert_eq!(full.sampled_references(), 50_000);
        assert!(quarter.sampled_references() < 20_000);
    }
}
