//! The R-window: a FIFO of the `|R|` most recently referenced elements.
//!
//! §3.2 defines `R` as the `n` most recently referenced *distinct*
//! elements, but notes that enforcing distinctness "requires a fully
//! associative memory with LRU replacement, which can be costly", and
//! relaxes it: "we implement the R-window as a FIFO, i.e., a memory array
//! and a circular pointer on that array". Each entry holds a line address
//! and its recorded `I_e`.
//!
//! # Duplicate elements (audited)
//!
//! Under the FIFO relaxation a re-referenced element occupies one slot
//! *per reference* — distinctness is exactly what the relaxation gives
//! up. This does **not** double-subtract `I_e` from `A_R`: each slot
//! carries the `I_e` recorded at its own entry and is handed back by
//! [`push`](RWindow::push) exactly once, at its own exit, so the
//! mechanism subtracts each recorded value once (see the conservation
//! test below). Duplicate slots exit oldest-first, so the *last*
//! write-back for an element is always from its freshest slot, and the
//! affinity table is never left holding a stale `O_e`. The differential
//! oracle (`execmig-check`) runs the hardware mechanism against a
//! from-scratch FIFO restatement and against the distinct-LRU
//! [`IdealAffinity`](crate::IdealAffinity) of Definition 1: the former
//! matches step-for-step; the latter differs only within the
//! paper-sanctioned relaxation (both split a working set into the same
//! balanced halves).

/// FIFO R-window of `(element, I_e)` entries.
///
/// ```
/// use execmig_core::RWindow;
/// let mut w = RWindow::new(2);
/// assert_eq!(w.push(10, 1), None);      // filling
/// assert_eq!(w.push(20, 2), None);      // filling
/// assert_eq!(w.push(30, 3), Some((10, 1))); // oldest leaves
/// assert_eq!(w.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RWindow {
    entries: Vec<(u64, i64)>,
    /// Index of the oldest entry once full; insertion point while filling.
    at: usize,
    capacity: usize,
}

impl RWindow {
    /// Creates a window of the given capacity (`|R|`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "R-window must hold at least one element");
        RWindow {
            entries: Vec::with_capacity(capacity),
            at: 0,
            capacity,
        }
    }

    /// `|R|`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (less than `|R|` only during warm-up).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True during warm-up, before any element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Pushes `(element, i_e)`; once full, returns the evicted oldest
    /// entry `(f, I_f)`.
    pub fn push(&mut self, element: u64, i_e: i64) -> Option<(u64, i64)> {
        if self.entries.len() < self.capacity {
            self.entries.push((element, i_e));
            None
        } else {
            let old = self.entries[self.at];
            self.entries[self.at] = (element, i_e);
            self.at = (self.at + 1) % self.capacity;
            Some(old)
        }
    }

    /// Looks up the most recently pushed entry for `element`, if it is
    /// currently in the window (linear scan; introspection only).
    pub fn find(&self, element: u64) -> Option<i64> {
        // Scan from newest to oldest so duplicates resolve to the
        // freshest I_e.
        let n = self.entries.len();
        for k in 1..=n {
            let idx = if self.is_full() {
                (self.at + n - k) % n
            } else {
                n - k
            };
            let (e, i_e) = self.entries[idx];
            if e == element {
                return Some(i_e);
            }
        }
        None
    }

    /// Iterates over `(element, I_e)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut w = RWindow::new(3);
        assert!(w.is_empty());
        w.push(1, 10);
        w.push(2, 20);
        w.push(3, 30);
        assert!(w.is_full());
        assert_eq!(w.push(4, 40), Some((1, 10)));
        assert_eq!(w.push(5, 50), Some((2, 20)));
        assert_eq!(w.push(6, 60), Some((3, 30)));
        assert_eq!(w.push(7, 70), Some((4, 40)));
    }

    #[test]
    fn duplicates_allowed() {
        let mut w = RWindow::new(2);
        w.push(9, 1);
        w.push(9, 2);
        assert_eq!(w.push(9, 3), Some((9, 1)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn duplicate_slots_exit_oldest_first_exactly_once() {
        // A re-referenced element holds one slot per reference; each
        // slot exits once, oldest first, with the I_e recorded at its
        // own entry — the A_R maintenance never sees a slot twice.
        let mut w = RWindow::new(3);
        w.push(7, 10);
        w.push(8, 20);
        w.push(7, 11); // duplicate of 7 with a fresher I_e
        assert_eq!(w.push(9, 30), Some((7, 10))); // stale slot first
        assert_eq!(w.push(10, 40), Some((8, 20)));
        assert_eq!(w.push(11, 50), Some((7, 11))); // fresh slot later
    }

    #[test]
    fn eviction_conserves_every_pushed_entry() {
        // Conservation law behind the no-double-subtraction audit:
        // over any stream (duplicates included), the multiset of
        // evicted entries plus the window residue equals the multiset
        // of pushed entries.
        let mut w = RWindow::new(5);
        let mut pushed = Vec::new();
        let mut evicted = Vec::new();
        let mut x = 42u64;
        for k in 0..1000i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let e = (x >> 33) % 7; // tiny universe: duplicates abound
            pushed.push((e, k));
            if let Some(old) = w.push(e, k) {
                evicted.push(old);
            }
        }
        evicted.extend(w.iter());
        evicted.sort_unstable();
        pushed.sort_unstable();
        assert_eq!(evicted, pushed);
    }

    #[test]
    fn find_returns_freshest() {
        let mut w = RWindow::new(3);
        w.push(1, 10);
        w.push(2, 20);
        w.push(1, 11);
        assert_eq!(w.find(1), Some(11));
        assert_eq!(w.find(2), Some(20));
        assert_eq!(w.find(3), None);
        // Wrap around: push two more, evicting both oldest entries.
        w.push(4, 40);
        w.push(5, 50);
        assert_eq!(w.find(1), Some(11));
        assert_eq!(w.find(2), None);
    }

    #[test]
    fn capacity_one() {
        let mut w = RWindow::new(1);
        assert_eq!(w.push(1, 5), None);
        assert_eq!(w.push(2, 6), Some((1, 5)));
        assert_eq!(w.find(2), Some(6));
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn rejects_zero_capacity() {
        RWindow::new(0);
    }

    #[test]
    fn iter_yields_all() {
        let mut w = RWindow::new(2);
        w.push(1, 10);
        w.push(2, 20);
        let mut v: Vec<_> = w.iter().collect();
        v.sort_unstable();
        assert_eq!(v, vec![(1, 10), (2, 20)]);
    }
}
