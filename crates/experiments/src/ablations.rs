//! Ablation studies backing the paper's parameter claims.

/// §3.3: splittability of `Circular(N)` vs the R-window size, and of
/// `HalfRandom(m)` vs `|R|`.
pub mod rwindow {
    use execmig_core::{Splitter2, SplitterConfig};
    use execmig_trace::gen::{CircularWorkload, HalfRandomWorkload};
    use execmig_trace::Workload;

    /// Result of one (stream, |R|) cell.
    #[derive(Debug, Clone)]
    pub struct RWindowPoint {
        /// Stream description.
        pub stream: String,
        /// Working-set size `N`.
        pub n: u64,
        /// `|R|`.
        pub r_window: usize,
        /// Steady-state positive fraction of the working set.
        pub positive_fraction: f64,
        /// Steady-state transition rate.
        pub transition_rate: f64,
        /// Whether a *usable* split emerged: balanced signs, the stream
        /// actually alternates between subsets, and transitions stay
        /// rare (a 50 % flip rate is a random assignment, not a split).
        pub split: bool,
    }

    execmig_obs::impl_to_json!(RWindowPoint {
        stream,
        n,
        r_window,
        positive_fraction,
        transition_rate,
        split
    });

    fn measure(
        stream: String,
        n: u64,
        r_window: usize,
        w: &mut dyn Workload,
        refs: u64,
    ) -> RWindowPoint {
        let mut s = Splitter2::new(SplitterConfig {
            r_window,
            filter_bits: None,
            ..SplitterConfig::default()
        });
        for _ in 0..refs {
            s.on_reference(w.next_access().addr.raw() / 64);
        }
        // Steady-state window.
        let before = s.stats().transitions;
        let window = refs / 4;
        for _ in 0..window {
            s.on_reference(w.next_access().addr.raw() / 64);
        }
        let rate = (s.stats().transitions - before) as f64 / window as f64;
        let frac = s.positive_fraction(0..n);
        RWindowPoint {
            stream,
            n,
            r_window,
            positive_fraction: frac,
            transition_rate: rate,
            split: (0.25..=0.75).contains(&frac) && rate > 1e-5 && rate < 0.05,
        }
    }

    /// Sweeps `Circular(N)` for several `N` at fixed `|R|`: the paper's
    /// claim is a split iff `N > 2|R|`.
    pub fn circular_sweep(r_window: usize, ns: &[u64], refs: u64) -> Vec<RWindowPoint> {
        ns.iter()
            .map(|&n| {
                let mut w = CircularWorkload::new(n);
                measure(format!("circular({n})"), n, r_window, &mut w, refs)
            })
            .collect()
    }

    /// Sweeps `|R|` on `HalfRandom(m)`: the paper's claim is that `|R|`
    /// should not be much larger than `m`.
    pub fn half_random_sweep(n: u64, m: u64, r_windows: &[usize], refs: u64) -> Vec<RWindowPoint> {
        r_windows
            .iter()
            .map(|&r| {
                let mut w = HalfRandomWorkload::new(n, m, 0xfeed);
                measure(format!("half_random({m})"), n, r, &mut w, refs)
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn circular_splits_iff_n_above_two_r() {
            let points = circular_sweep(100, &[150, 180, 450, 4000], 600_000);
            assert!(!points[0].split, "N=150 <= 2|R| split: {points:?}");
            assert!(!points[1].split, "N=180 <= 2|R| split: {points:?}");
            assert!(points[2].split, "N=450 no split: {points:?}");
            assert!(points[3].split, "N=4000 no split: {points:?}");
        }

        #[test]
        fn half_random_needs_r_close_to_m() {
            let points = half_random_sweep(4000, 300, &[100, 2000], 1_500_000);
            // |R| = 100 ≤ m: splits cleanly with ~1/300 transitions.
            assert!(points[0].split, "{points:?}");
            assert!(points[0].transition_rate < 0.02, "{points:?}");
            // |R| = 2000 >> m: the positive feedback is lost in noise —
            // either no balanced split or a far noisier one.
            let degraded =
                !points[1].split || points[1].transition_rate > 4.0 * points[0].transition_rate;
            assert!(degraded, "{points:?}");
        }
    }
}

/// §3.4: on an unsplittable (uniform random) working set with saturated
/// affinities, the transition frequency halves per added filter bit
/// (`≈ 1/2^(1+F−A)`).
pub mod filter {
    use execmig_core::{Splitter2, SplitterConfig};
    use execmig_trace::Rng;

    /// Result of one filter-width cell.
    #[derive(Debug, Clone)]
    pub struct FilterPoint {
        /// Filter width in bits.
        pub filter_bits: u32,
        /// Measured transition rate.
        pub measured: f64,
        /// The paper's estimate `1/2^(1+F−A)`.
        pub predicted: f64,
    }

    execmig_obs::impl_to_json!(FilterPoint {
        filter_bits,
        measured,
        predicted
    });

    /// Sweeps filter widths on a uniform random stream over `n` lines.
    pub fn sweep(affinity_bits: u32, filter_bits: &[u32], n: u64, refs: u64) -> Vec<FilterPoint> {
        filter_bits
            .iter()
            .map(|&bits| {
                let mut s = Splitter2::new(SplitterConfig {
                    affinity_bits,
                    r_window: 100,
                    filter_bits: Some(bits),
                    ..SplitterConfig::default()
                });
                let mut rng = Rng::seed_from(0xab1a + bits as u64);
                // Warm up so affinities saturate, then measure.
                for _ in 0..refs {
                    s.on_reference(rng.below(n));
                }
                let before = s.stats().transitions;
                for _ in 0..refs {
                    s.on_reference(rng.below(n));
                }
                let measured = (s.stats().transitions - before) as f64 / refs as f64;
                FilterPoint {
                    filter_bits: bits,
                    measured,
                    predicted: 1.0 / 2f64.powi(1 + bits as i32 - affinity_bits as i32),
                }
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn each_extra_bit_halves_transitions() {
            let points = sweep(16, &[17, 18, 19, 20], 4000, 1_500_000);
            for w in points.windows(2) {
                let halving = w[1].measured / w[0].measured;
                assert!(
                    (0.25..=1.0).contains(&halving),
                    "bit {} -> {}: rate went {} -> {}",
                    w[0].filter_bits,
                    w[1].filter_bits,
                    w[0].measured,
                    w[1].measured
                );
            }
            // Order of magnitude agreement with the paper's arithmetic.
            for p in &points {
                assert!(
                    p.measured < p.predicted * 4.0 + 0.01,
                    "bits {}: measured {} vs predicted {}",
                    p.filter_bits,
                    p.measured,
                    p.predicted
                );
            }
        }
    }
}

/// §3.5: working-set sampling shrinks the affinity cache and reduces
/// migration frequency.
pub mod sampling {
    use execmig_core::{ControllerConfig, MigrationController, Sampler, TableConfig};
    use execmig_trace::{suite, LineSize, Workload};

    /// Result of one sampling configuration on one benchmark.
    #[derive(Debug, Clone)]
    pub struct SamplingPoint {
        /// Benchmark.
        pub name: String,
        /// Sampling threshold (`H(e) < threshold` is sampled).
        pub threshold: u64,
        /// Affinity-cache entries.
        pub table_entries: u64,
        /// Migrations per million instructions.
        pub migrations_per_minstr: f64,
        /// Affinity-cache miss rate.
        pub table_miss_rate: f64,
    }

    execmig_obs::impl_to_json!(SamplingPoint {
        name,
        threshold,
        table_entries,
        migrations_per_minstr,
        table_miss_rate
    });

    /// Sweeps sampling thresholds (with the affinity cache scaled
    /// proportionally, as §3.5 intends) feeding the controller the
    /// benchmark's L1-miss request stream.
    pub fn sweep(name: &str, thresholds: &[u64], instructions: u64) -> Vec<SamplingPoint> {
        thresholds
            .iter()
            .map(|&threshold| {
                // 32k entries at full sampling, scaled down by the
                // sampled fraction (8k at the paper's 8/31).
                let entries = (32768 * threshold / 31).next_power_of_two().max(1024);
                let mut mc = MigrationController::new(ControllerConfig {
                    sampler: Sampler::new(threshold),
                    table: TableConfig::Skewed { entries, ways: 4 },
                    ..ControllerConfig::paper_4core()
                });
                let mut w = suite::by_name(name).expect("suite benchmark");
                let mut filter = crate::l1filter::L1Filter::paper(LineSize::DEFAULT);
                while w.instructions() < instructions {
                    let access = w.next_access();
                    if let Some(line) = filter.filter(access) {
                        // No machine here: approximate L2 filtering by
                        // updating on every request (the relative
                        // effect of sampling is what this ablation
                        // isolates).
                        mc.on_request(line.raw(), true);
                    }
                }
                SamplingPoint {
                    name: name.to_string(),
                    threshold,
                    table_entries: entries,
                    migrations_per_minstr: mc.stats().migrations as f64 * 1e6
                        / w.instructions() as f64,
                    table_miss_rate: mc.table_stats().miss_rate(),
                }
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn sampling_reduces_migration_frequency() {
            // §3.5: "working-set sampling decreases the frequency of
            // migrations".
            let points = sweep("art", &[31, 8], 3_000_000);
            assert!(
                points[1].migrations_per_minstr <= points[0].migrations_per_minstr,
                "{points:?}"
            );
        }
    }
}

/// §4.1 closing note: "splittability is less pronounced with larger
/// lines" — merging nodes can only increase the minimum cut.
pub mod linesize {
    use crate::fig45::{run_workload, Fig45Config, Fig45Row};
    use execmig_trace::suite;

    /// Splittability at one line size.
    #[derive(Debug, Clone)]
    pub struct LineSizePoint {
        /// Benchmark.
        pub name: String,
        /// Line size in bytes.
        pub line_bytes: u64,
        /// Mean `p1 − p4` gap over the plotted sizes.
        pub split_gain: f64,
        /// Transition rate.
        pub transition_rate: f64,
    }

    execmig_obs::impl_to_json!(LineSizePoint {
        name,
        line_bytes,
        split_gain,
        transition_rate
    });

    impl From<(u64, Fig45Row)> for LineSizePoint {
        fn from((line_bytes, row): (u64, Fig45Row)) -> Self {
            LineSizePoint {
                name: row.name,
                line_bytes,
                split_gain: row.split_gain,
                transition_rate: row.transition_rate,
            }
        }
    }

    /// Runs one benchmark at several line sizes.
    pub fn sweep(name: &str, line_sizes: &[u64], instructions: u64) -> Vec<LineSizePoint> {
        line_sizes
            .iter()
            .map(|&line_bytes| {
                let config = Fig45Config {
                    line_bytes,
                    ..Fig45Config::paper(instructions)
                };
                let mut w = suite::by_name(name).expect("suite benchmark");
                (line_bytes, run_workload(name, &mut *w, &config)).into()
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn larger_lines_reduce_splittability() {
            let points = sweep("art", &[64, 512], 3_000_000);
            assert!(
                points[1].split_gain <= points[0].split_gain + 0.02,
                "{points:?}"
            );
        }
    }
}

/// The Figure 2 register versus the Definition 1 sign (see
/// `SignMode`): both split, but the literal register transitions an
/// order of magnitude more often.
pub mod signmode {
    use execmig_core::{SignMode, Splitter2, SplitterConfig};

    /// Result of one sign-mode run on `Circular(n)`.
    #[derive(Debug, Clone)]
    pub struct SignModePoint {
        /// Mode label.
        pub mode: String,
        /// Steady-state transition rate.
        pub transition_rate: f64,
        /// Positive fraction (balance).
        pub positive_fraction: f64,
    }

    execmig_obs::impl_to_json!(SignModePoint {
        mode,
        transition_rate,
        positive_fraction
    });

    /// Compares the two sign modes on `Circular(n)`.
    pub fn compare(n: u64, r_window: usize, refs: u64) -> Vec<SignModePoint> {
        [SignMode::TrueSum, SignMode::RegisterOnly]
            .iter()
            .map(|&mode| {
                let mut s = Splitter2::new(SplitterConfig {
                    r_window,
                    filter_bits: None,
                    sign_mode: mode,
                    ..SplitterConfig::default()
                });
                for t in 0..refs {
                    s.on_reference(t % n);
                }
                let before = s.stats().transitions;
                let window = refs / 4;
                for t in 0..window {
                    s.on_reference(t % n);
                }
                SignModePoint {
                    mode: format!("{mode:?}"),
                    transition_rate: (s.stats().transitions - before) as f64 / window as f64,
                    positive_fraction: s.positive_fraction(0..n),
                }
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn true_sum_transitions_much_less() {
            let points = compare(4000, 100, 1_000_000);
            let true_sum = &points[0];
            let register = &points[1];
            assert!(
                true_sum.transition_rate * 5.0 < register.transition_rate,
                "{points:?}"
            );
            // Both achieve a balanced split.
            for p in &points {
                assert!((0.3..=0.7).contains(&p.positive_fraction), "{points:?}");
            }
        }
    }
}
