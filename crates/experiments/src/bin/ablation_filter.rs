//! §3.4 ablation: transition-filter width on an unsplittable (uniform
//! random) working set. The paper's arithmetic: with `A`-bit affinities
//! and an `F`-bit filter, the residual transition frequency is about
//! `1/2^(1+F−A)` once affinities saturate.
//!
//! Usage: `ablation_filter [--refs N] [--json] [--no-manifest]
//!                          [--manifest-dir DIR]`

use execmig_experiments::ablations::filter;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, fmt_frac};
use execmig_experiments::TextTable;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs = arg_u64(&args, "--refs", 2_000_000);
    let mut em = ManifestEmitter::start("ablation_filter", &args);
    em.budget(refs);
    em.config(
        &Json::object()
            .field("refs", refs)
            .field("affinity_bits", 16u64)
            .field("filter_bits", [17u64, 18, 19, 20, 21, 22]),
    );

    let points = filter::sweep(16, &[17, 18, 19, 20, 21, 22], 4000, refs);
    em.stats(Json::object().field("points", &points));
    if arg_flag(&args, "--json") {
        println!("{}", points.to_json().pretty());
        em.write();
        return;
    }
    println!("== §3.4 — filter width vs transition rate on uniform random, 16-bit affinities ==");
    let mut t = TextTable::new(&["filter bits", "measured", "paper 1/2^(1+F-A)"]);
    for p in &points {
        t.row(&[
            p.filter_bits.to_string(),
            fmt_frac(p.measured),
            fmt_frac(p.predicted),
        ]);
    }
    println!("{}", t.render());
    println!("(each added bit should roughly halve the measured rate)");
    em.write();
}
