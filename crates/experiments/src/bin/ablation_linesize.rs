//! §4.1 ablation: "splittability is less pronounced with larger lines"
//! — merging graph nodes can only increase the minimum cut.
//!
//! Usage: `ablation_linesize [--instr N] [--bench NAME[,NAME…]] [--json]
//!                            [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::ablations::linesize;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value, fmt_frac};
use execmig_experiments::TextTable;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 10_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| vec!["art".to_string(), "em3d".to_string(), "ammp".to_string()]);

    let sizes = [64u64, 128, 256, 512];
    let mut em = ManifestEmitter::start("ablation_linesize", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("benchmarks", &benches)
            .field("line_bytes", sizes),
    );
    let mut all = Vec::new();
    for b in &benches {
        all.extend(linesize::sweep(b, &sizes, instructions));
    }
    em.stats(Json::object().field("points", all.len()));
    if arg_flag(&args, "--json") {
        println!("{}", all.to_json().pretty());
        em.write();
        return;
    }
    println!("== §4.1 — line size vs splittability (mean p1 - p4 gap) ==");
    let mut t = TextTable::new(&["benchmark", "line", "split gain", "trans/ref"]);
    for p in &all {
        t.row(&[
            p.name.clone(),
            format!("{}B", p.line_bytes),
            format!("{:+.3}", p.split_gain),
            fmt_frac(p.transition_rate),
        ]);
    }
    println!("{}", t.render());
    em.write();
}
