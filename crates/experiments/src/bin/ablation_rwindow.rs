//! §3.3 ablation: when does the affinity algorithm split?
//!
//! - `Circular(N)` with `|R|` = 100 splits iff `N > 2|R|`;
//! - `HalfRandom(m)` requires `|R|` not much larger than `m`.
//!
//! Usage: `ablation_rwindow [--refs N] [--json] [--no-manifest]
//!                           [--manifest-dir DIR]`

use execmig_experiments::ablations::rwindow;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, fmt_frac};
use execmig_experiments::TextTable;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs = arg_u64(&args, "--refs", 1_000_000);
    let mut em = ManifestEmitter::start("ablation_rwindow", &args);
    em.budget(refs);
    em.config(&Json::object().field("refs", refs).field("r_window", 100u64));

    let circular = rwindow::circular_sweep(100, &[120, 150, 180, 220, 450, 1000, 4000], refs);
    let half = rwindow::half_random_sweep(4000, 300, &[25, 50, 100, 300, 600, 2000], refs);
    em.stats(
        Json::object()
            .field("circular_points", circular.len())
            .field("half_random_points", half.len()),
    );

    if arg_flag(&args, "--json") {
        println!("{}", (&circular, &half).to_json().pretty());
        em.write();
        return;
    }

    println!("== §3.3 — Circular(N), |R| = 100: split iff N > 2|R| ==");
    let mut t = TextTable::new(&["stream", "N", "2|R|", "pos.frac", "trans/ref", "split"]);
    for p in &circular {
        t.row(&[
            p.stream.clone(),
            p.n.to_string(),
            (2 * p.r_window).to_string(),
            format!("{:.3}", p.positive_fraction),
            fmt_frac(p.transition_rate),
            if p.split { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("== §3.3 — HalfRandom(300), N = 4000: |R| should not exceed m ==");
    let mut t = TextTable::new(&["stream", "|R|", "pos.frac", "trans/ref", "split"]);
    for p in &half {
        t.row(&[
            p.stream.clone(),
            p.r_window.to_string(),
            format!("{:.3}", p.positive_fraction),
            fmt_frac(p.transition_rate),
            if p.split { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    em.write();
}
