//! §3.5 ablation: working-set sampling ratio vs affinity-cache size vs
//! migration frequency.
//!
//! Usage: `ablation_sampling [--instr N] [--bench NAME[,NAME…]] [--json]
//!                            [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::ablations::sampling;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_experiments::TextTable;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 20_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| vec!["art".to_string(), "mcf".to_string(), "gzip".to_string()]);

    let thresholds = [31u64, 16, 8, 4];
    let mut em = ManifestEmitter::start("ablation_sampling", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("benchmarks", &benches)
            .field("thresholds", thresholds),
    );
    let mut all = Vec::new();
    for b in &benches {
        all.extend(sampling::sweep(b, &thresholds, instructions));
    }
    em.stats(Json::object().field("points", all.len()));
    if arg_flag(&args, "--json") {
        println!("{}", all.to_json().pretty());
        em.write();
        return;
    }
    println!("== §3.5 — sampling ratio (H(e) < T of 31) vs migrations ==");
    let mut t = TextTable::new(&[
        "benchmark",
        "threshold",
        "sampled",
        "table entries",
        "migr/Minstr",
        "table miss rate",
    ]);
    for p in &all {
        t.row(&[
            p.name.clone(),
            format!("{}", p.threshold),
            format!("{:.0}%", p.threshold as f64 * 100.0 / 31.0),
            p.table_entries.to_string(),
            format!("{:.1}", p.migrations_per_minstr),
            format!("{:.3}", p.table_miss_rate),
        ]);
    }
    println!("{}", t.render());
    println!("(paper §4.2 uses threshold 8 = 25% sampling with an 8k-entry cache)");
    em.write();
}
