//! Fidelity ablation: the literal Figure 2 `A_R` register versus the
//! Definition 1 sign (`A_R + |R|·∆`). Both split a circular working
//! set, but the literal register transitions an order of magnitude more
//! often; the Definition-1 sign reproduces the paper's reported rates
//! (1/2000 on Circular(4000) with |R| = 100) — see DESIGN.md §6.
//!
//! Usage: `ablation_signmode [--refs N] [--json] [--no-manifest]
//!                            [--manifest-dir DIR]`

use execmig_experiments::ablations::signmode;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, fmt_frac};
use execmig_experiments::TextTable;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs = arg_u64(&args, "--refs", 1_000_000);
    let mut em = ManifestEmitter::start("ablation_signmode", &args);
    em.budget(refs);
    em.config(
        &Json::object()
            .field("refs", refs)
            .field("n", 4000u64)
            .field("r_window", 100u64),
    );

    println!("== Sign-mode ablation on Circular(4000), |R| = 100 ==");
    let points = signmode::compare(4000, 100, refs);
    em.stats(Json::object().field("points", &points));
    if arg_flag(&args, "--json") {
        println!("{}", points.to_json().pretty());
        em.write();
        return;
    }
    let mut t = TextTable::new(&["sign mode", "trans/ref", "positive fraction"]);
    for p in &points {
        t.row(&[
            p.mode.clone(),
            fmt_frac(p.transition_rate),
            format!("{:.3}", p.positive_fraction),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper reports one transition every 2000 references = 0.0005)");
    em.write();
}
