//! Analyze a recorded trace (`.emt`, see `execmig_trace::io`): would
//! execution migration help this application?
//!
//! Prints the §4.1-style stack profile (p1 vs p4), the Table 2-style
//! machine comparison, and the break-even migration penalty.
//!
//! Usage: `analyze_trace <trace.emt> [--json] [--no-manifest]
//!                        [--manifest-dir DIR]`
//!
//! Record a trace from any `Workload` (or an external tool emitting the
//! same format) with `execmig_trace::TraceWriter`; see the
//! `record_replay` example.

use execmig_cache::{LruStack, StackProfile};
use execmig_core::{Splitter4, Splitter4Config};
use execmig_experiments::l1filter::L1Filter;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::arg_flag;
use execmig_machine::perf::break_even_pmig;
use execmig_machine::{Machine, MachineConfig};
use execmig_obs::Json;
use execmig_trace::{LineSize, TraceReader, Workload};
use std::fs::File;
use std::io::BufReader;
use std::process::exit;

fn open_trace(path: &str) -> TraceReader<BufReader<File>> {
    match File::open(path)
        .map_err(|e| e.to_string())
        .and_then(|f| TraceReader::new(BufReader::new(f)).map_err(|e| e.to_string()))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open trace {path}: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: analyze_trace <trace.emt> [--json]");
        exit(2);
    };
    let line = LineSize::DEFAULT;
    let mut em = ManifestEmitter::start("analyze_trace", &args);
    em.config(
        &Json::object()
            .field("trace", path.as_str())
            .field("line_bytes", line.bytes()),
    );

    // Pass 1: stack profiles through the §4.1 pipeline.
    let mut reader = open_trace(path);
    let mut filter = L1Filter::paper(line);
    let mut stack1 = LruStack::new();
    let mut profile1 = StackProfile::new(512 << 10);
    let mut stacks4: Vec<LruStack> = (0..4).map(|_| LruStack::new()).collect();
    let mut profile4 = StackProfile::new(512 << 10);
    let mut splitter = Splitter4::new(Splitter4Config::default());
    let mut accesses = 0u64;
    while !reader.is_finished() {
        let access = reader.next_access();
        accesses += 1;
        if let Some(miss) = filter.filter(access) {
            profile1.record(stack1.access(miss.raw()));
            let q = splitter.on_reference(miss.raw());
            profile4.record(stacks4[q.index()].access(miss.raw()));
        }
    }
    let instructions = reader.instructions();

    // Pass 2+3: baseline and migration machines.
    let run_machine = |config: MachineConfig| {
        let mut reader = open_trace(path);
        let mut machine = Machine::new(config);
        while !reader.is_finished() {
            let access = reader.next_access();
            machine.step_tagged(
                access.kind,
                line.line_of(access.addr),
                reader.instructions(),
                access.pointer,
            );
        }
        *machine.stats()
    };
    let base = run_machine(MachineConfig::single_core());
    let mig = run_machine(MachineConfig::four_core_migration());
    let ratio = (mig.l2_misses as f64 / mig.instructions.max(1) as f64)
        / (base.l2_misses as f64 / base.instructions.max(1) as f64).max(f64::MIN_POSITIVE);
    let break_even = break_even_pmig(&base, &mig);

    em.budget(instructions);
    em.stats(
        Json::object()
            .field("instructions", instructions)
            .field("accesses", accesses)
            .field("l2_miss_ratio", ratio)
            .field("migrations", mig.migrations)
            .field("break_even_pmig", break_even),
    );
    if arg_flag(&args, "--json") {
        let points: Vec<Json> = (0..=10)
            .map(|i| {
                let bytes: u64 = (16 << 10) << i;
                let lines = bytes / line.bytes();
                Json::object()
                    .field("bytes", bytes)
                    .field("p1", profile1.frac_deeper_than(lines))
                    .field("p4", profile4.frac_deeper_than(lines))
            })
            .collect();
        let out = Json::object()
            .field("instructions", instructions)
            .field("accesses", accesses)
            .field("profile", Json::Arr(points))
            .field("transition_rate", splitter.stats().transition_rate())
            .field("l2_miss_ratio", ratio)
            .field("migrations", mig.migrations)
            .field("break_even_pmig", break_even);
        println!("{}", out.pretty());
        em.write();
        return;
    }

    println!(
        "trace: {accesses} accesses, {} M instructions",
        instructions / 1_000_000
    );
    println!("\nstack profile (p1 single / p4 split, fraction deeper than size):");
    for i in 0..=10 {
        let bytes: u64 = (16 << 10) << i;
        let lines = bytes / line.bytes();
        println!(
            "  {:>6}  p1 {:.3}  p4 {:.3}",
            execmig_experiments::report::fmt_bytes(bytes),
            profile1.frac_deeper_than(lines),
            profile4.frac_deeper_than(lines)
        );
    }
    println!(
        "transition rate: {:.4} per stack access",
        splitter.stats().transition_rate()
    );
    println!("\nmachine comparison (64 B lines, 16 KB L1s, 512 KB L2s):");
    println!(
        "  baseline : L2 miss every {:.0} instructions",
        base.instr_per_l2_miss()
    );
    println!(
        "  migration: L2 miss every {:.0} instructions, {} migrations",
        mig.instr_per_l2_miss(),
        mig.migrations
    );
    println!("  L2-miss ratio: {ratio:.2}");
    match break_even {
        Some(be) if be > 1.0 => {
            println!("  => migration helps whenever P_mig < {be:.0} L2-miss penalties")
        }
        Some(_) => println!("  => migration adds misses here; it never pays"),
        None => println!("  => no migrations were triggered"),
    }
    em.write();
}
