//! Compares the three L2 coherence backends — migration mode (the
//! paper's machine), MESI and Dragon — on the same reference streams:
//! L2 misses per kinstr, invalidations, updates, and bus bytes per
//! instruction, per workload.
//!
//! Usage: `coherence_compare [--instr N] [--threads N] [--bench NAME]
//!                 [--csv] [--json] [--no-manifest] [--manifest-dir DIR]
//!                 [--serve-telemetry ADDR]`

use execmig_experiments::coherence_compare;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_experiments::runner::default_threads;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 50_000_000);
    let threads = arg_u64(&args, "--threads", default_threads(18) as u64) as usize;
    let telemetry = Telemetry::from_args(&args, threads);
    let mut em = ManifestEmitter::start("coherence_compare", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("threads", threads)
            .field("bench", arg_value(&args, "--bench"))
            .field("protocols", ["migration", "mesi", "dragon"]),
    );

    let rows = {
        // The sweep root span: runner tasks parent to it across threads.
        let _sweep = execmig_obs::wall::span(execmig_obs::wall::families::SWEEP);
        match arg_value(&args, "--bench") {
            Some(name) => coherence_compare::run_benchmark(&name, instructions),
            None => coherence_compare::run_all_observed(instructions, threads, telemetry.obs()),
        }
    };
    telemetry.finish();
    em.stats(
        Json::object()
            .field("rows", rows.len())
            .field("table", &rows),
    );
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!(
        "== Coherence backends — 4 cores, 512 KB L2 each, {} M instructions ==",
        instructions / 1_000_000
    );
    println!(
        "(migration mode never invalidates or updates; 'vs mig' < 1 means the bus \
         protocol removes L2 misses migration mode keeps)"
    );
    println!();
    if arg_flag(&args, "--csv") {
        let mut t = execmig_experiments::TextTable::new(&[
            "benchmark",
            "protocol",
            "l2_misses",
            "l2_misses_per_kinstr",
            "miss_ratio_vs_migration",
            "invalidations",
            "coherence_updates",
            "coherence_bytes_per_instr",
            "update_bus_bytes_per_instr",
            "migrations",
        ]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                r.protocol.clone(),
                r.l2_misses.to_string(),
                format!("{:.3}", r.l2_misses_per_kinstr),
                format!("{:.3}", r.miss_ratio_vs_migration),
                r.invalidations.to_string(),
                r.coherence_updates.to_string(),
                format!("{:.3}", r.coherence_bytes_per_instr),
                format!("{:.3}", r.update_bus_bytes_per_instr),
                r.migrations.to_string(),
            ]);
        }
        println!("{}", t.to_csv());
    } else {
        println!("{}", coherence_compare::render(&rows));
    }
    em.write();
}
