//! Differential checker: runs the naive reference machine and the
//! optimized machine in lockstep and reports the first divergence.
//!
//! Modes (combinable; default is `--suite`):
//!
//! - `--suite`: lockstep over every suite workload on the paper's
//!   4-core migration machine.
//! - `--fuzz N`: N fuzzed streams (seeds `--seed S`, S+1, …) against
//!   every stress configuration; a divergence is ddmin-shrunk and the
//!   minimal repro written to `--repro-dir DIR` (default
//!   `differ-repros`) as an `EMT1` trace.
//! - `--replay FILE`: replays a repro artifact against every stress
//!   configuration (or just `--config NAME`).
//!
//! Usage: `differ [--suite] [--fuzz N] [--seed S] [--budget INSTR]
//!                 [--accesses N] [--replay FILE] [--config NAME]
//!                 [--protocol migration|mesi|dragon] [--repro-dir DIR]`
//!
//! `--protocol` selects the L2 coherence backend: the suite lockstep
//! runs the paper machine under it, and fuzz/replay rounds keep only
//! the stress configurations using it (default: suite under migration
//! mode, fuzz/replay against every configuration).
//!
//! Exits 0 when every comparison matches, 1 on any divergence, 2 on
//! usage errors.

use execmig_check::fuzz::{diverges, generate, shrink, stress_configs, write_repro, FuzzConfig};
use execmig_check::Lockstep;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_machine::{MachineConfig, Protocol};
use execmig_obs::{wall, Wall};
use execmig_trace::suite;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::process::exit;

fn suite_lockstep(budget: u64, protocol: Protocol) -> bool {
    let mut clean = true;
    for name in suite::names() {
        // Each lockstep case is one wall-clock span, so a traced run
        // reports where differ time goes per case family.
        let _case_span = wall::span(wall::families::DIFFER_CASE);
        let mut workload = suite::by_name(name).expect("suite name");
        let mut lockstep = Lockstep::new(MachineConfig {
            protocol,
            ..MachineConfig::four_core_migration()
        });
        let report = lockstep
            .run_workload(&mut *workload, budget)
            .or_else(|| lockstep.final_check());
        match report {
            None => println!(
                "suite {name:>8} [{}]: ok ({} steps, {} migrations)",
                protocol.as_str(),
                lockstep.steps(),
                lockstep.machine().stats().migrations
            ),
            Some(report) => {
                clean = false;
                println!("suite {name:>8}: DIVERGED");
                println!("{report}");
            }
        }
    }
    clean
}

fn fuzz_round(
    fuzz: &FuzzConfig,
    config_filter: Option<&str>,
    protocol: Option<Protocol>,
    repro_dir: &Path,
) -> bool {
    // One span per fuzz round: generation plus every lockstep +
    // shrink it triggers.
    let _fuzz_span = wall::span(wall::families::DIFFER_FUZZ);
    let stream = generate(fuzz);
    let mut clean = true;
    for (name, config) in stress_configs() {
        if config_filter.is_some_and(|f| f != name) {
            continue;
        }
        if protocol.is_some_and(|p| p != config.protocol) {
            continue;
        }
        let Some(report) = diverges(&config, &stream) else {
            println!(
                "fuzz seed {} vs {name}: ok ({} steps)",
                fuzz.seed,
                stream.len()
            );
            continue;
        };
        clean = false;
        println!("fuzz seed {} vs {name}: DIVERGED", fuzz.seed);
        println!("{report}");
        let minimal = shrink(&config, &stream);
        println!(
            "shrunk {} -> {} steps; minimal divergence:",
            stream.len(),
            minimal.len()
        );
        if let Some(small) = diverges(&config, &minimal) {
            println!("{small}");
        }
        if let Err(e) = std::fs::create_dir_all(repro_dir) {
            eprintln!("cannot create {}: {e}", repro_dir.display());
            continue;
        }
        let path = repro_dir.join(format!("repro-seed{}-{name}.emt", fuzz.seed));
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| {
                write_repro(BufWriter::new(f), &minimal)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }) {
            Ok(()) => println!("repro written to {}", path.display()),
            Err(e) => eprintln!("cannot write repro {}: {e}", path.display()),
        }
    }
    clean
}

fn replay(path: &str, config_filter: Option<&str>, protocol: Option<Protocol>) -> bool {
    let steps = match File::open(path).map_err(|e| e.to_string()).and_then(|f| {
        execmig_check::read_repro(std::io::BufReader::new(f)).map_err(|e| e.to_string())
    }) {
        Ok(steps) => steps,
        Err(e) => {
            eprintln!("cannot read repro {path}: {e}");
            exit(2);
        }
    };
    println!("replaying {path}: {} steps", steps.len());
    let mut clean = true;
    for (name, config) in stress_configs() {
        if config_filter.is_some_and(|f| f != name) {
            continue;
        }
        if protocol.is_some_and(|p| p != config.protocol) {
            continue;
        }
        match diverges(&config, &steps) {
            None => println!("replay vs {name}: ok"),
            Some(report) => {
                clean = false;
                println!("replay vs {name}: DIVERGED");
                println!("{report}");
            }
        }
    }
    clean
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: differ [--suite] [--fuzz N] [--seed S] [--budget INSTR] \
             [--accesses N] [--replay FILE] [--config NAME] \
             [--protocol migration|mesi|dragon] [--repro-dir DIR]"
        );
        exit(2);
    }
    let protocol = arg_value(&args, "--protocol").map(|v| {
        Protocol::parse(&v).unwrap_or_else(|| {
            eprintln!("--protocol expects migration|mesi|dragon, got {v:?}");
            exit(2);
        })
    });
    let budget = arg_u64(&args, "--budget", 2_000_000);
    let seed0 = arg_u64(&args, "--seed", 1);
    let accesses = arg_u64(&args, "--accesses", FuzzConfig::default().accesses);
    let fuzz_rounds = arg_u64(&args, "--fuzz", 0);
    let config_filter = arg_value(&args, "--config");
    let repro_dir = arg_value(&args, "--repro-dir").unwrap_or_else(|| "differ-repros".to_string());
    let replay_path = arg_value(&args, "--replay");
    let run_suite = arg_flag(&args, "--suite") || (fuzz_rounds == 0 && replay_path.is_none());

    // A local flight recorder for the differ's own wall-clock time:
    // one slot, the main thread. Inert (and costless) without `trace`.
    let recorder = Wall::with_threads(1);
    let attached = Wall::ACTIVE && wall::attach(&recorder, 0);

    let mut clean = true;
    if let Some(path) = replay_path {
        clean &= replay(&path, config_filter.as_deref(), protocol);
    }
    if run_suite {
        clean &= suite_lockstep(budget, protocol.unwrap_or_default());
    }
    for round in 0..fuzz_rounds {
        let fuzz = FuzzConfig {
            seed: seed0 + round,
            accesses,
            ..FuzzConfig::default()
        };
        clean &= fuzz_round(
            &fuzz,
            config_filter.as_deref(),
            protocol,
            Path::new(&repro_dir),
        );
    }
    if attached {
        let snap = recorder.snapshot();
        for f in snap.families.iter().filter(|f| f.count > 0) {
            eprintln!(
                "differ wall: {:>12} x{:<4} p50 {} ns, p99 {} ns, p999 {} ns",
                f.family, f.count, f.p50_ns, f.p99_ns, f.p999_ns
            );
        }
        wall::detach();
    }
    if !clean {
        exit(1);
    }
}
