//! §2.3/§6 extension: what broadcasting retired branches on the update
//! bus buys — post-migration mispredict rates with trained versus stale
//! inactive predictors.
//!
//! Usage: `ext_branch [--rounds N] [--json] [--no-manifest]
//!                     [--manifest-dir DIR]`

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64};
use execmig_experiments::TextTable;
use execmig_machine::branch::compare_training;
use execmig_obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds = arg_u64(&args, "--rounds", 60);
    let mut em = ManifestEmitter::start("ext_branch", &args);
    em.seed(0xb4a9);
    em.config(
        &Json::object()
            .field("rounds", rounds)
            .field("cores", 4u64)
            .field("static_branches", 500u64)
            .field("migration_period_branches", 5_000u64),
    );

    let windows = [200u64, 500, 1000, 2000];
    let results: Vec<_> = windows
        .iter()
        .map(|&w| (w, compare_training(4, 500, 5_000, w, rounds, 0xb4a9)))
        .collect();

    let json_rows: Vec<Json> = results
        .iter()
        .map(|(w, o)| {
            Json::object()
                .field("window", *w)
                .field("trained", o.post_migration_mispredicts_trained)
                .field("stale", o.post_migration_mispredicts_stale)
                .field("steady", o.steady_mispredicts)
        })
        .collect();
    em.stats(Json::Arr(json_rows.clone()));
    if arg_flag(&args, "--json") {
        println!("{}", Json::Arr(json_rows).pretty());
        em.write();
        return;
    }
    println!("== §2.3/§6 — branch broadcast: post-migration mispredict rate ==");
    println!("(4 cores, 500 static branches, migration every 5000 branches)");
    println!();
    let mut t = TextTable::new(&[
        "window after migration",
        "trained (bus)",
        "stale (no bus)",
        "steady state",
    ]);
    for (w, o) in &results {
        t.row(&[
            format!("{w} branches"),
            format!("{:.1}%", o.post_migration_mispredicts_trained * 100.0),
            format!("{:.1}%", o.post_migration_mispredicts_stale * 100.0),
            format!("{:.1}%", o.steady_mispredicts * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("(the update-bus training keeps arrival penalties at the steady-state level)");
    em.write();
}
