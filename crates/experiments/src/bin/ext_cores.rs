//! §6 extension: core-count scaling — 2-way, 4-way and 8-way splitting
//! on the same benchmarks.
//!
//! Usage: `ext_cores [--instr N] [--bench NAME[,NAME…]] [--json]`

use execmig_experiments::ext_cores;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| {
            vec![
                "art".to_string(),
                "em3d".to_string(),
                "mcf".to_string(),
                "swim".to_string(),
            ]
        });

    let mut all = Vec::new();
    for b in &benches {
        all.extend(ext_cores::sweep(b, &[1, 2, 4, 8], instructions));
    }
    if arg_flag(&args, "--json") {
        println!("{}", serde_json::to_string_pretty(&all).expect("serialise"));
        return;
    }
    println!("== §6 — core-count scaling (aggregate L2 grows with the split degree) ==");
    println!("{}", ext_cores::render(&all));
    println!("(swim's 16 MB working set exceeds even 8x512 KB: ratio stays ~1)");
}
