//! §6 extension: core-count scaling — 2-way, 4-way and 8-way splitting
//! on the same benchmarks.
//!
//! Usage: `ext_cores [--instr N] [--bench NAME[,NAME…]] [--json]
//!                    [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::ext_cores;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| {
            vec![
                "art".to_string(),
                "em3d".to_string(),
                "mcf".to_string(),
                "swim".to_string(),
            ]
        });

    let mut em = ManifestEmitter::start("ext_cores", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("benchmarks", &benches)
            .field("cores", [1u64, 2, 4, 8]),
    );
    let mut all = Vec::new();
    for b in &benches {
        all.extend(ext_cores::sweep(b, &[1, 2, 4, 8], instructions));
    }
    em.stats(Json::object().field("points", all.len()));
    if arg_flag(&args, "--json") {
        println!("{}", all.to_json().pretty());
        em.write();
        return;
    }
    println!("== §6 — core-count scaling (aggregate L2 grows with the split degree) ==");
    println!("{}", ext_cores::render(&all));
    println!("(swim's 16 MB working set exceeds even 8x512 KB: ratio stays ~1)");
    em.write();
}
