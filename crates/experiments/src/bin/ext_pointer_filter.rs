//! §6 extension: transition-filter updates restricted to pointer-load
//! requests.
//!
//! Usage: `ext_pointer_filter [--instr N] [--bench NAME[,NAME…]] [--json]
//!                             [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::ext_pointer;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| {
            vec![
                "mcf".to_string(),
                "em3d".to_string(),
                "health".to_string(),
                "art".to_string(),
                "gzip".to_string(),
            ]
        });

    let mut em = ManifestEmitter::start("ext_pointer_filter", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("benchmarks", &benches),
    );
    let rows: Vec<_> = benches
        .iter()
        .map(|b| ext_pointer::run_benchmark(b, instructions))
        .collect();
    em.stats(Json::object().field("rows", rows.len()));
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!("== §6 — pointer-load filtering of the transition filter ==");
    println!("{}", ext_pointer::render(&rows));
    println!("(linked-data benchmarks keep their benefit; array/random code stops migrating)");
    em.write();
}
