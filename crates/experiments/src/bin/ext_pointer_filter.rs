//! §6 extension: transition-filter updates restricted to pointer-load
//! requests.
//!
//! Usage: `ext_pointer_filter [--instr N] [--bench NAME[,NAME…]] [--json]`

use execmig_experiments::ext_pointer;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| {
            vec![
                "mcf".to_string(),
                "em3d".to_string(),
                "health".to_string(),
                "art".to_string(),
                "gzip".to_string(),
            ]
        });

    let rows: Vec<_> = benches
        .iter()
        .map(|b| ext_pointer::run_benchmark(b, instructions))
        .collect();
    if arg_flag(&args, "--json") {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serialise"));
        return;
    }
    println!("== §6 — pointer-load filtering of the transition filter ==");
    println!("{}", ext_pointer::render(&rows));
    println!("(linked-data benchmarks keep their benefit; array/random code stops migrating)");
}
