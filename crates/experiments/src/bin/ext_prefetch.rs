//! §6 extension: prefetching × execution migration (2×2 grid).
//!
//! Usage: `ext_prefetch [--instr N] [--degree N] [--bench NAME[,NAME…]]
//!                       [--json] [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::ext_prefetch;
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let degree = arg_u64(&args, "--degree", 4) as u32;
    let benches: Vec<String> = arg_value(&args, "--bench")
        .map(|v| v.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| {
            vec![
                "art".to_string(),
                "swim".to_string(),
                "em3d".to_string(),
                "mcf".to_string(),
                "health".to_string(),
            ]
        });

    let mut em = ManifestEmitter::start("ext_prefetch", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("degree", degree as u64)
            .field("benchmarks", &benches),
    );
    let rows: Vec<_> = benches
        .iter()
        .map(|b| ext_prefetch::run_benchmark(b, degree, instructions))
        .collect();
    em.stats(Json::object().field("rows", rows.len()));
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!("== §6 — sequential prefetch (degree {degree}) x migration ==");
    println!("{}", ext_prefetch::render(&rows));
    println!("(prefetch recovers array sweeps; migration keeps its edge on pointer chasing)");
    em.write();
}
