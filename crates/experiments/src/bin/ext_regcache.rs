//! §6 extension: register-update cache — update-bus bandwidth saved vs
//! per-migration spill cost.
//!
//! Usage: `ext_regcache [--writes N] [--migrations N] [--json]
//!                       [--no-manifest] [--manifest-dir DIR]`

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64};
use execmig_experiments::TextTable;
use execmig_machine::regcache::{simulate, RegCacheConfig};
use execmig_obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let writes = arg_u64(&args, "--writes", 10_000_000);
    let migrations = arg_u64(&args, "--migrations", 1000);
    let mut em = ManifestEmitter::start("ext_regcache", &args);
    em.budget(writes);
    em.seed(0x5eed);
    em.config(
        &Json::object()
            .field("writes", writes)
            .field("migrations", migrations)
            .field("entries", [0u64, 2, 4, 8, 16, 32]),
    );

    let sizes = [0usize, 2, 4, 8, 16, 32];
    let results: Vec<_> = sizes
        .iter()
        .map(|&entries| {
            let stats = simulate(
                RegCacheConfig {
                    entries,
                    ..RegCacheConfig::default()
                },
                writes,
                migrations,
                0x5eed,
            );
            (entries, stats)
        })
        .collect();

    let json_rows: Vec<Json> = results
        .iter()
        .map(|(entries, s)| {
            Json::object()
                .field("entries", *entries)
                .field("saved_fraction", s.saved_fraction())
                .field("spill_per_migration", s.spill_per_migration())
        })
        .collect();
    em.stats(Json::Arr(json_rows.clone()));
    if arg_flag(&args, "--json") {
        println!("{}", Json::Arr(json_rows).pretty());
        em.write();
        return;
    }
    println!("== §6 — register-update cache: bandwidth saved vs spill cost ==");
    println!(
        "({} M register writes, {} migrations, 70% of writes to 8 hot registers)",
        writes / 1_000_000,
        migrations
    );
    println!();
    let mut t = TextTable::new(&["entries", "broadcasts saved", "spill entries/migration"]);
    for (entries, s) in &results {
        t.row(&[
            entries.to_string(),
            format!("{:.1}%", s.saved_fraction() * 100.0),
            format!("{:.1}", s.spill_per_migration()),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper's trade-off: bandwidth drops, migrations pay a spill burst)");
    em.write();
}
