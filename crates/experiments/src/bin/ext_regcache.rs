//! §6 extension: register-update cache — update-bus bandwidth saved vs
//! per-migration spill cost.
//!
//! Usage: `ext_regcache [--writes N] [--migrations N] [--json]`

use execmig_experiments::report::{arg_flag, arg_u64};
use execmig_experiments::TextTable;
use execmig_machine::regcache::{simulate, RegCacheConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let writes = arg_u64(&args, "--writes", 10_000_000);
    let migrations = arg_u64(&args, "--migrations", 1000);

    let sizes = [0usize, 2, 4, 8, 16, 32];
    let results: Vec<_> = sizes
        .iter()
        .map(|&entries| {
            let stats = simulate(
                RegCacheConfig {
                    entries,
                    ..RegCacheConfig::default()
                },
                writes,
                migrations,
                0x5eed,
            );
            (entries, stats)
        })
        .collect();

    if arg_flag(&args, "--json") {
        let json: Vec<_> = results
            .iter()
            .map(|(entries, s)| {
                serde_json::json!({
                    "entries": entries,
                    "saved_fraction": s.saved_fraction(),
                    "spill_per_migration": s.spill_per_migration(),
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&json).expect("serialise"));
        return;
    }
    println!("== §6 — register-update cache: bandwidth saved vs spill cost ==");
    println!(
        "({} M register writes, {} migrations, 70% of writes to 8 hot registers)",
        writes / 1_000_000,
        migrations
    );
    println!();
    let mut t = TextTable::new(&[
        "entries",
        "broadcasts saved",
        "spill entries/migration",
    ]);
    for (entries, s) in &results {
        t.row(&[
            entries.to_string(),
            format!("{:.1}%", s.saved_fraction() * 100.0),
            format!("{:.1}", s.spill_per_migration()),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper's trade-off: bandwidth drops, migrations pay a spill burst)");
}
