//! §6 extension: activity migration for heat dissipation — peak
//! temperature versus rotation period.
//!
//! Usage: `ext_thermal [--cores N] [--json] [--no-manifest]
//!                      [--manifest-dir DIR]`

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64};
use execmig_experiments::TextTable;
use execmig_machine::thermal::{peak_with_rotation, ThermalConfig};
use execmig_obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cores = arg_u64(&args, "--cores", 4) as usize;
    let config = ThermalConfig::default();
    let total = 200_000.0; // kilo-instructions
    let mut em = ManifestEmitter::start("ext_thermal", &args);
    em.config(
        &Json::object()
            .field("cores", cores)
            .field("total_kinstr", total),
    );

    let periods = [f64::INFINITY, 50_000.0, 10_000.0, 2_000.0, 500.0, 100.0];
    let results: Vec<(f64, f64)> = periods
        .iter()
        .map(|&p| {
            let peak =
                peak_with_rotation(cores, config, if p.is_finite() { p } else { total }, total);
            (p, peak)
        })
        .collect();

    let json_rows: Vec<Json> = results
        .iter()
        .map(|(p, peak)| {
            Json::object()
                .field("rotate_kinstr", *p)
                .field("peak", *peak)
        })
        .collect();
    em.stats(Json::Arr(json_rows.clone()));
    if arg_flag(&args, "--json") {
        println!("{}", Json::Arr(json_rows).pretty());
        em.write();
        return;
    }
    println!("== §6 — activity rotation vs peak temperature ({cores} cores) ==");
    let pinned = results[0].1;
    let mut t = TextTable::new(&["rotation (kinstr)", "peak temp", "vs pinned"]);
    for (p, peak) in &results {
        t.row(&[
            if p.is_finite() {
                format!("{:.0}", p)
            } else {
                "never (pinned)".to_string()
            },
            format!("{peak:.0}"),
            format!("{:.0}%", peak / pinned * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(fast rotation approaches the 1/{cores} duty-cycle bound — the \"bonus\" the paper's §6 cites)"
    );
    em.write();
}
