//! Regenerates Figure 3: affinity snapshots on Circular and
//! HalfRandom(300), N = 4000, |R| = 100, at t = 20k/100k/1000k.
//!
//! Usage: `fig3 [--buckets N] [--protocol migration|mesi|dragon]
//!               [--csv] [--json] [--no-manifest]
//!               [--manifest-dir DIR] [--serve-telemetry ADDR]`
//!
//! Figure 3 models the affinity algorithm alone (no Machine is built),
//! so `--protocol` does not change any number; it is validated and
//! recorded in the manifest for uniform sweep drivers.

use execmig_experiments::fig3::{bucket_means, run, Fig3Config};
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_protocol, arg_u64};
use execmig_experiments::runner::parallel_map_observed;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let buckets = arg_u64(&args, "--buckets", 40) as usize;
    let csv = arg_flag(&args, "--csv");
    let json = arg_flag(&args, "--json");
    let telemetry = Telemetry::from_args(&args, 2);
    let mut em = ManifestEmitter::start("fig3", &args);
    let mut stream_stats = Vec::new();

    let configs = vec![Fig3Config::circular(), Fig3Config::half_random()];
    let (results, _report) = {
        // The sweep root span: runner tasks parent to it across threads.
        let _sweep = execmig_obs::wall::span(execmig_obs::wall::families::SWEEP);
        parallel_map_observed(configs.clone(), 2, telemetry.obs(), |config, _ctx| {
            run(config)
        })
    };
    telemetry.finish();

    for (config, result) in configs.into_iter().zip(results) {
        let label = match config.stream {
            execmig_experiments::fig3::Fig3Stream::Circular => "Circular".to_string(),
            execmig_experiments::fig3::Fig3Stream::HalfRandom { m } => {
                format!("HalfRandom({m})")
            }
        };
        if let Some(last) = result.snapshots.last() {
            stream_stats.push(
                Json::object()
                    .field("stream", &label)
                    .field("t", last.t)
                    .field("positive_fraction", last.positive_fraction)
                    .field("transition_rate", last.transition_rate),
            );
        }
        if json {
            println!("{}", result.to_json().compact());
            continue;
        }
        println!("== Figure 3 — {label}, N=4000, |R|=100 ==");
        for snap in &result.snapshots {
            println!(
                "t={:<8} positive fraction {:.3}, transitions/ref {:.5} (paper: optimal 1/2000 circular, 1/300 half-random)",
                snap.t, snap.positive_fraction, snap.transition_rate
            );
            if csv {
                for (e, a) in snap.affinities.iter().enumerate() {
                    if let Some(a) = a {
                        println!("{label},{},{},{}", snap.t, e, a);
                    }
                }
            } else {
                // Terminal rendition: mean affinity per element bucket.
                let means = bucket_means(snap, buckets);
                let max = means.iter().map(|m| m.abs()).fold(1.0f64, f64::max);
                let bar: String = means
                    .iter()
                    .map(|&m| {
                        let v = m / max;
                        if v > 0.66 {
                            '#'
                        } else if v > 0.15 {
                            '+'
                        } else if v >= -0.15 {
                            '.'
                        } else if v >= -0.66 {
                            '-'
                        } else {
                            '='
                        }
                    })
                    .collect();
                println!("  affinity sign by element bucket: [{bar}]");
            }
        }
        println!();
    }
    em.config(
        &Json::object()
            .field("buckets", buckets)
            .field("streams", ["Circular", "HalfRandom(300)"])
            .field("protocol", arg_protocol(&args)),
    );
    em.stats(Json::object().field("final_snapshots", stream_stats));
    em.write();
}
