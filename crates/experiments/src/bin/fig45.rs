//! Regenerates Figures 4 and 5: LRU stack profiles `p1(x)` vs `p4(x)`
//! per benchmark, with the transition frequency.
//!
//! Usage: `fig45 [--instr N] [--threads N] [--bench NAME] [--summary]
//!                [--protocol migration|mesi|dragon]
//!                [--csv] [--json] [--no-manifest] [--manifest-dir DIR]
//!                [--serve-telemetry ADDR]`
//!
//! Figures 4–5 are LRU stack profiles over the L1-filtered stream (no
//! Machine is built), so `--protocol` does not change any number; it is
//! validated and recorded in the manifest for uniform sweep drivers.

use execmig_experiments::fig45::{self, Fig45Config};
use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_protocol, arg_u64, arg_value};
use execmig_experiments::runner::default_threads;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let threads = arg_u64(&args, "--threads", default_threads(18) as u64) as usize;
    let telemetry = Telemetry::from_args(&args, threads);
    let config = Fig45Config::paper(instructions);
    let mut em = ManifestEmitter::start("fig45", &args);
    em.budget(instructions);
    em.config(&config.to_json().field("protocol", arg_protocol(&args)));

    let rows = {
        // The sweep root span: runner tasks parent to it across threads.
        let _sweep = execmig_obs::wall::span(execmig_obs::wall::families::SWEEP);
        match arg_value(&args, "--bench") {
            Some(name) => vec![fig45::run_benchmark(&name, &config)],
            None => fig45::run_all_observed(&config, threads, telemetry.obs()),
        }
    };
    telemetry.finish();
    em.stats(Json::object().field("rows", rows.len()));
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!(
        "== Figures 4-5 — L1-filtered LRU stack profiles, {} M instructions ==",
        instructions / 1_000_000
    );
    println!("p1 = single stack (\"normal\"), p4 = 4-way affinity split (\"split\")");
    println!();
    if arg_flag(&args, "--summary") {
        println!("{}", fig45::render_summary(&rows));
    } else {
        let rendered = fig45::render(&rows);
        if arg_flag(&args, "--csv") {
            let mut t = execmig_experiments::TextTable::new(&[
                "benchmark",
                "bytes",
                "p1",
                "p4",
                "transition_rate",
            ]);
            for r in &rows {
                for &(bytes, p1, p4) in &r.points {
                    t.row(&[
                        r.name.clone(),
                        bytes.to_string(),
                        format!("{p1:.5}"),
                        format!("{p4:.5}"),
                        format!("{:.5}", r.transition_rate),
                    ]);
                }
            }
            println!("{}", t.to_csv());
        } else {
            println!("{rendered}");
        }
    }
    em.write();
}
