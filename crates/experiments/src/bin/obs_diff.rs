//! Cross-run regression diff: compares two JSON artefacts (bench
//! results, run manifests, exported profiles) metric by metric.
//!
//! Usage: `obs_diff BASELINE.json CANDIDATE.json [--threshold R]
//!                  [--abs-floor N] [--only P1,P2,…] [--metric NAME]
//!                  [--drift] [--json] [--quiet]`
//!        `obs_diff --history [DIR] [--metric NAME] [--only P1,P2,…]`
//!
//! `--history` is informational (always exits 0 when DIR is readable):
//! it scans DIR (default `.`) for checked-in `BENCH_<n>.json`
//! baselines, orders them by revision number, and prints each kernel's
//! metric trajectory (default `median_ns`) across revisions with the
//! first→last relative trend — the long-view companion to the two-file
//! regression gate.
//!
//! Metrics are lower-is-better; a relative increase beyond the
//! threshold (default 0.10) is a regression. A *zero-baseline* leaf
//! has no meaningful relative delta (it is ±∞), so it is gated on the
//! absolute floor instead (default 10; `--abs-floor 0` restores the
//! strict any-movement gate). Leaves present in only one document are
//! reported as `added:`/`removed:` but never fail the gate. `--drift`
//! also flags decreases (for determinism checks). `--only` restricts
//! the comparison to metric paths under the given slash prefixes
//! (comma-separated, e.g. `cache/,table2/`); `--metric` to leaves
//! with the given final segment (e.g. `median_ns`) — together they
//! scope a CI hard gate to the kernels it should defend. Exit codes:
//! 0 within threshold, 1 regression (or any drift under `--drift`),
//! 2 usage/IO error.

use execmig_experiments::diff::{bench_baselines, history, DiffConfig, DiffReport};
use execmig_experiments::report::{arg_flag, arg_value};
use execmig_experiments::TextTable;
use execmig_obs::{json, Json};
use std::process::exit;

fn load(path: &str) -> Result<Json, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&body).map_err(|e| format!("{path}: {e}"))
}

/// The `--history` mode: per-kernel metric trajectories across every
/// checked-in baseline. Informational — exits 0 unless DIR or a
/// baseline is unreadable.
fn run_history(dir: &str, metric: &str, only: &[String]) -> ! {
    let baselines = match bench_baselines(dir) {
        Ok(b) if b.is_empty() => {
            eprintln!("obs_diff: no BENCH_<n>.json baselines under {dir}");
            exit(2);
        }
        Ok(b) => b,
        Err(e) => {
            eprintln!("obs_diff: {e}");
            exit(2);
        }
    };
    let docs: Vec<Json> = baselines
        .iter()
        .map(|(_, path)| {
            load(path).unwrap_or_else(|e| {
                eprintln!("obs_diff: {e}");
                exit(2);
            })
        })
        .collect();
    let mut rows = history(&docs, metric);
    rows.retain(|r| {
        let rel = r.path.strip_prefix('/').unwrap_or(&r.path);
        only.is_empty() || only.iter().any(|p| rel.starts_with(p.as_str()))
    });
    let mut header: Vec<String> = vec!["kernel".to_string()];
    header.extend(baselines.iter().map(|(rev, _)| format!("BENCH_{rev}")));
    header.push("trend".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for row in &rows {
        let mut cells = vec![row.path.strip_prefix('/').unwrap_or(&row.path).to_string()];
        cells.extend(row.values.iter().map(|v| match v {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        }));
        cells.push(match row.trend() {
            Some(t) => format!("{:+.1}%", t * 100.0),
            None => "-".to_string(),
        });
        t.row(&cells);
    }
    print!("{}", t.render());
    println!(
        "obs_diff: {} kernels x {} baselines ({} trajectories, informational)",
        rows.len(),
        baselines.len(),
        metric
    );
    exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&String> = {
        // Positional operands: non-flags not consumed by a
        // value-taking flag.
        const TAKES_VALUE: &[&str] = &["--threshold", "--abs-floor", "--only", "--metric"];
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if TAKES_VALUE.contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    if arg_flag(&args, "--history") {
        let dir = files.first().map_or(".", |s| s.as_str());
        let metric = arg_value(&args, "--metric").unwrap_or_else(|| "median_ns".to_string());
        let only: Vec<String> = arg_value(&args, "--only")
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        run_history(dir, &metric, &only);
    }
    let &[baseline, candidate] = files.as_slice() else {
        eprintln!(
            "usage: obs_diff BASELINE.json CANDIDATE.json \
             [--threshold R] [--abs-floor N] [--only P1,P2,…] \
             [--metric NAME] [--drift] [--json] [--quiet] \
             | obs_diff --history [DIR] [--metric NAME] [--only P1,P2,…]"
        );
        exit(2);
    };
    let config = DiffConfig {
        threshold: arg_value(&args, "--threshold")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold expects a number, got {v:?}");
                    exit(2);
                })
            })
            .unwrap_or(DiffConfig::default().threshold),
        abs_floor: arg_value(&args, "--abs-floor")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--abs-floor expects a number, got {v:?}");
                    exit(2);
                })
            })
            .unwrap_or(DiffConfig::default().abs_floor),
        drift: arg_flag(&args, "--drift"),
    };
    let only: Vec<String> = arg_value(&args, "--only")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let metric = arg_value(&args, "--metric");

    let (a, b) = match (load(baseline), load(candidate)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs_diff: {e}");
            exit(2);
        }
    };
    let mut report = DiffReport::compare(&a, &b);
    report.retain(&only, metric.as_deref());
    if report.deltas.is_empty() && (!only.is_empty() || metric.is_some()) {
        eprintln!("obs_diff: scope matched no shared metrics (check --only/--metric)");
        exit(2);
    }
    let regressions = report.regressions(&config);

    if arg_flag(&args, "--json") {
        println!("{}", report.to_json_summary(&config).pretty());
    } else if !arg_flag(&args, "--quiet") {
        if report.is_identical() {
            println!(
                "obs_diff: {} metrics compared, zero deltas ({baseline} == {candidate})",
                report.deltas.len()
            );
        } else {
            let mut t = TextTable::new(&["metric", "baseline", "candidate", "rel", ""]);
            for d in report.changed() {
                t.row(&[
                    d.path.clone(),
                    format!("{}", d.before),
                    format!("{}", d.after),
                    format!("{:+.1}%", d.rel() * 100.0),
                    if d.regressed(&config) {
                        "REGRESSED"
                    } else {
                        ""
                    }
                    .to_string(),
                ]);
            }
            if !t.is_empty() {
                print!("{}", t.render());
            }
            for p in &report.added {
                println!("added:   {p}");
            }
            for p in &report.removed {
                println!("removed: {p}");
            }
            println!(
                "obs_diff: {} compared, {} changed, {} regressed \
                 (threshold {:.0}%{})",
                report.deltas.len(),
                report.changed().count(),
                regressions.len(),
                config.threshold * 100.0,
                if config.drift { ", drift mode" } else { "" }
            );
        }
    }
    exit(if regressions.is_empty() { 0 } else { 1 });
}
