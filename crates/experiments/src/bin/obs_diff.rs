//! Cross-run regression diff: compares two JSON artefacts (bench
//! results, run manifests, exported profiles) metric by metric.
//!
//! Usage: `obs_diff BASELINE.json CANDIDATE.json [--threshold R]
//!                  [--abs-floor N] [--only P1,P2,…] [--metric NAME]
//!                  [--drift] [--json] [--quiet]`
//!
//! Metrics are lower-is-better; a relative increase beyond the
//! threshold (default 0.10) is a regression. A *zero-baseline* leaf
//! has no meaningful relative delta (it is ±∞), so it is gated on the
//! absolute floor instead (default 10; `--abs-floor 0` restores the
//! strict any-movement gate). Leaves present in only one document are
//! reported as `added:`/`removed:` but never fail the gate. `--drift`
//! also flags decreases (for determinism checks). `--only` restricts
//! the comparison to metric paths under the given slash prefixes
//! (comma-separated, e.g. `cache/,table2/`); `--metric` to leaves
//! with the given final segment (e.g. `median_ns`) — together they
//! scope a CI hard gate to the kernels it should defend. Exit codes:
//! 0 within threshold, 1 regression (or any drift under `--drift`),
//! 2 usage/IO error.

use execmig_experiments::diff::{DiffConfig, DiffReport};
use execmig_experiments::report::{arg_flag, arg_value};
use execmig_experiments::TextTable;
use execmig_obs::{json, Json};
use std::process::exit;

fn load(path: &str) -> Result<Json, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&body).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&String> = {
        // Positional operands: non-flags not consumed by a
        // value-taking flag.
        const TAKES_VALUE: &[&str] = &["--threshold", "--abs-floor", "--only", "--metric"];
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if TAKES_VALUE.contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let &[baseline, candidate] = files.as_slice() else {
        eprintln!(
            "usage: obs_diff BASELINE.json CANDIDATE.json \
             [--threshold R] [--abs-floor N] [--only P1,P2,…] \
             [--metric NAME] [--drift] [--json] [--quiet]"
        );
        exit(2);
    };
    let config = DiffConfig {
        threshold: arg_value(&args, "--threshold")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold expects a number, got {v:?}");
                    exit(2);
                })
            })
            .unwrap_or(DiffConfig::default().threshold),
        abs_floor: arg_value(&args, "--abs-floor")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--abs-floor expects a number, got {v:?}");
                    exit(2);
                })
            })
            .unwrap_or(DiffConfig::default().abs_floor),
        drift: arg_flag(&args, "--drift"),
    };
    let only: Vec<String> = arg_value(&args, "--only")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let metric = arg_value(&args, "--metric");

    let (a, b) = match (load(baseline), load(candidate)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs_diff: {e}");
            exit(2);
        }
    };
    let mut report = DiffReport::compare(&a, &b);
    report.retain(&only, metric.as_deref());
    if report.deltas.is_empty() && (!only.is_empty() || metric.is_some()) {
        eprintln!("obs_diff: scope matched no shared metrics (check --only/--metric)");
        exit(2);
    }
    let regressions = report.regressions(&config);

    if arg_flag(&args, "--json") {
        println!("{}", report.to_json_summary(&config).pretty());
    } else if !arg_flag(&args, "--quiet") {
        if report.is_identical() {
            println!(
                "obs_diff: {} metrics compared, zero deltas ({baseline} == {candidate})",
                report.deltas.len()
            );
        } else {
            let mut t = TextTable::new(&["metric", "baseline", "candidate", "rel", ""]);
            for d in report.changed() {
                t.row(&[
                    d.path.clone(),
                    format!("{}", d.before),
                    format!("{}", d.after),
                    format!("{:+.1}%", d.rel() * 100.0),
                    if d.regressed(&config) {
                        "REGRESSED"
                    } else {
                        ""
                    }
                    .to_string(),
                ]);
            }
            if !t.is_empty() {
                print!("{}", t.render());
            }
            for p in &report.added {
                println!("added:   {p}");
            }
            for p in &report.removed {
                println!("removed: {p}");
            }
            println!(
                "obs_diff: {} compared, {} changed, {} regressed \
                 (threshold {:.0}%{})",
                report.deltas.len(),
                report.changed().count(),
                regressions.len(),
                config.threshold * 100.0,
                if config.drift { ", drift mode" } else { "" }
            );
        }
    }
    exit(if regressions.is_empty() { 0 } else { 1 });
}
