//! Flamegraph self-profiler: runs a multi-worker Table 2 sweep with a
//! wall-clock flight recorder attached, samples the live span stacks
//! on a fixed wall-clock cadence, and writes the collapsed-stack
//! ("folded") output any flamegraph renderer understands — one
//! `stack;sub;leaf count` line per observed stack.
//!
//! Usage: `obs_flame [--instr N] [--threads N] [--sample-ms N]
//!                    [--out FILE] [--chrome FILE] [--quiet]`
//!
//! `--out FILE` writes the collapsed stacks to FILE (default stdout);
//! `--chrome FILE` additionally exports the retained spans as a Trace
//! Event Format document (wall-clock process group, one track per
//! worker plus the driver) for `chrome://tracing` / Perfetto — built
//! with [`render_wall_trace`](execmig_obs::render_wall_trace), it can
//! be spliced with a simulated-time machine trace via
//! [`merge_traces`](execmig_obs::merge_traces) for the dual-clock view.
//!
//! Built without `trace` the recorder is inert: the binary says so,
//! writes an empty profile, and exits 0 (sampling costs nothing it
//! can't account for). Exit codes: 0 on success, 2 on a write error.

use std::time::{Duration, Instant};

use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_experiments::runner::Obs;
use execmig_experiments::table2;
use execmig_obs::model::sync::{AtomicBool, Ordering};
use execmig_obs::model::thread;
use execmig_obs::{render_wall_trace, wall, Wall, WallBudget};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 10_000_000);
    let threads = arg_u64(&args, "--threads", 4) as usize;
    let sample_ms = arg_u64(&args, "--sample-ms", 5).max(1);
    let out = arg_value(&args, "--out");
    let chrome = arg_value(&args, "--chrome");
    let quiet = arg_flag(&args, "--quiet");

    // Slots 0..threads are the sweep workers; the last slot is this
    // (driver) thread, which owns the sweep root span.
    let recorder = Wall::with_threads(threads + 1);
    let attached = Wall::ACTIVE && wall::attach(&recorder, threads);

    let t0 = Instant::now();
    let stop = AtomicBool::new(false);
    let rows = thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let mut passes = 0u64;
            // ord: Relaxed — standalone stop flag; the sampler join
            // below is the synchronisation point.
            while !stop.load(Ordering::Relaxed) {
                recorder.sample_stacks();
                passes += 1;
                thread::sleep(Duration::from_millis(sample_ms));
            }
            passes
        });
        let rows = {
            // The sweep root span: runner tasks parent to it.
            let _sweep = wall::span(wall::families::SWEEP);
            table2::run_all_observed(instructions, threads, Obs::new(None, Some(&recorder)))
        };
        // ord: Relaxed — flag only; sampler.join() synchronises.
        stop.store(true, Ordering::Relaxed);
        let passes = sampler.join().expect("sampler thread");
        if !quiet {
            eprintln!("obs_flame: {passes} sampling passes over the sweep");
        }
        rows
    });
    let run_ns = t0.elapsed().as_nanos() as u64;

    let snap = recorder.snapshot();
    let collapsed = snap.collapsed_text();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &collapsed) {
                eprintln!("obs_flame: cannot write {path}: {e}");
                std::process::exit(2);
            }
            if !quiet {
                eprintln!(
                    "obs_flame: wrote {} stack lines to {path}",
                    snap.collapsed.len()
                );
            }
        }
        None => print!("{collapsed}"),
    }
    if let Some(path) = &chrome {
        let trace = render_wall_trace(&recorder.spans(), threads + 1);
        if let Err(e) = std::fs::write(path, format!("{}\n", trace.compact())) {
            eprintln!("obs_flame: cannot write {path}: {e}");
            std::process::exit(2);
        }
        if !quiet {
            eprintln!("obs_flame: wrote wall-clock Chrome trace to {path}");
        }
    }

    if attached {
        wall::detach();
    }
    if !quiet {
        let o = snap.overhead;
        let verdict = WallBudget::default().verdict(&o, run_ns);
        eprintln!(
            "obs_flame: {} rows; {} spans ({} dropped), {} samples; \
             recorder cost {:.4} % of {:.1} ms run (budget {:.0} %): {}",
            rows.len(),
            o.spans,
            o.dropped,
            o.samples,
            verdict.fraction * 100.0,
            run_ns as f64 / 1e6,
            verdict.max_fraction * 100.0,
            if verdict.within { "OK" } else { "EXCEEDED" }
        );
        if !Wall::ACTIVE {
            eprintln!("obs_flame: built without `trace` — recorder inert, profile empty");
        }
    }
}
