//! Live telemetry demo and smoke target: runs a multi-worker Table 2
//! sweep with the telemetry server up, prints the endpoints while the
//! sweep is in flight, and self-checks the hub's overhead against the
//! [`TelemetryBudget`](execmig_obs::TelemetryBudget) when it finishes.
//!
//! Usage: `obs_live [--instr N] [--threads N] [--addr HOST:PORT]
//!                   [--poll-ms N] [--linger SECS] [--json]`
//!
//! While it runs:
//!
//! ```text
//! curl http://127.0.0.1:9163/progress   # per-worker live state
//! curl http://127.0.0.1:9163/healthz    # stall watchdog
//! curl http://127.0.0.1:9163/metrics    # Prometheus exposition
//! ```
//!
//! Exit status: 0 on success, 1 if the server cannot bind, 2 if the
//! measured observability overhead exceeds the 2 % budget.
//!
//! Build with `--features trace` for real beats; without it the
//! endpoints serve but stay empty (the binary says so and still
//! exits 0).

use std::time::{Duration, Instant};

use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_experiments::table2;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::model::sync::{AtomicBool, Ordering};
use execmig_obs::model::thread;
use execmig_obs::{wall, Hub, Json, Registry, TelemetryBudget, Wall, WallBudget};

fn print_progress(hub: &Hub) {
    let snap = hub.snapshot();
    let per_worker: Vec<String> = snap
        .workers
        .iter()
        .map(|w| {
            format!(
                "w{}:{}/{}Mi/{}t",
                w.worker,
                w.state.as_str(),
                w.instructions / 1_000_000,
                w.tasks_done
            )
        })
        .collect();
    eprintln!(
        "progress: epoch {} | {} beats | {}",
        snap.epoch,
        snap.overhead.beats,
        per_worker.join(" ")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 20_000_000);
    let threads = arg_u64(&args, "--threads", 4) as usize;
    let poll_ms = arg_u64(&args, "--poll-ms", 500);
    let linger_s = arg_u64(&args, "--linger", 0);
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:9163".to_string());

    let telemetry = Telemetry::new(Some(&addr), threads);
    let Some(bound) = telemetry.local_addr() else {
        eprintln!("obs_live: no server, nothing to demo");
        std::process::exit(1);
    };
    eprintln!("obs_live: sweep of {threads} workers x {instructions} instructions");
    eprintln!("obs_live: try  curl http://{bound}/progress  while it runs");

    let hub = telemetry.hub().cloned().expect("serving implies a hub");
    let t0 = Instant::now();
    let stop = AtomicBool::new(false);
    let rows = thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            // ord: Relaxed — standalone stop flag; the monitor join
            // below is the synchronisation point.
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(Duration::from_millis(poll_ms));
                // ord: Relaxed — same stop flag, re-checked after the
                // poll sleep.
                if Hub::ACTIVE && !stop.load(Ordering::Relaxed) {
                    print_progress(&hub);
                }
            }
        });
        let rows = {
            // The sweep root span: runner tasks parent to it.
            let _sweep = wall::span(wall::families::SWEEP);
            table2::run_all_observed(instructions, threads, telemetry.obs())
        };
        // ord: Relaxed — flag only; monitor.join() synchronises.
        stop.store(true, Ordering::Relaxed);
        monitor.join().expect("monitor thread");
        rows
    });
    let run_ns = t0.elapsed().as_nanos() as u64;

    // Overhead self-accounting: the hub and the wall each measured
    // their own cost; hold both to the default 2 % budget.
    let overhead = hub.overhead();
    let verdict = TelemetryBudget::default().verdict(&overhead, run_ns);
    let wall_overhead = telemetry.wall().map(Wall::overhead).unwrap_or_default();
    let wall_verdict = WallBudget::default().verdict(&wall_overhead, run_ns);
    let mut registry = Registry::new();
    registry.counter("rows_done", rows.len() as u64);
    registry.counter("hub_beats", overhead.beats);
    registry.gauge("overhead_fraction", verdict.fraction);
    registry.counter("wall_spans", wall_overhead.spans);
    registry.gauge("wall_overhead_fraction", wall_verdict.fraction);
    telemetry.metrics().update(registry);

    if arg_flag(&args, "--json") {
        let report = Json::object()
            .field("rows", rows.len())
            .field("run_ns", run_ns)
            .field("overhead", overhead)
            .field("budget", verdict)
            .field("wall_overhead", wall_overhead)
            .field("wall_budget", wall_verdict)
            .field("snapshot", hub.snapshot());
        println!("{}", report.pretty());
    } else {
        println!("{}", table2::render(&rows));
        println!(
            "telemetry overhead: {} beats ({} dropped), {:.4} % of {:.1} ms run (budget {:.0} %): {}",
            overhead.beats,
            overhead.dropped,
            verdict.fraction * 100.0,
            run_ns as f64 / 1e6,
            verdict.max_fraction * 100.0,
            if verdict.within { "OK" } else { "EXCEEDED" }
        );
        println!(
            "wall overhead: {} spans ({} dropped), {:.4} % of run (budget {:.0} %): {}",
            wall_overhead.spans,
            wall_overhead.dropped,
            wall_verdict.fraction * 100.0,
            wall_verdict.max_fraction * 100.0,
            if wall_verdict.within {
                "OK"
            } else {
                "EXCEEDED"
            }
        );
        if !Hub::ACTIVE {
            println!("(built without `trace`: endpoints served, no beats recorded)");
        }
    }

    if linger_s > 0 {
        eprintln!("obs_live: serving for {linger_s}s more (--linger)");
        thread::sleep(Duration::from_secs(linger_s));
    }
    telemetry.finish();
    if !verdict.within || !wall_verdict.within {
        std::process::exit(2);
    }
}
