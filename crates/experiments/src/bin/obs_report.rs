//! Observability report: runs one benchmark on the four-core migration
//! machine and prints the full observability surface — the metrics
//! registry, the migration inter-arrival / filter-dwell /
//! affinity-age histograms, and (in `--features trace` builds) the tail
//! of the typed event ring.
//!
//! Usage: `obs_report [--bench NAME] [--instr N] [--format FMT]
//!                     [--events N] [--no-manifest] [--manifest-dir DIR]`
//!
//! `--format` selects the machine-readable output: `json` (the metrics
//! registry as JSON), `csv` (`metric,kind,value` rows), or `prom`
//! (Prometheus text exposition). Without it the human-readable report
//! prints. `--json` and `--prometheus` remain as aliases.

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_u64, arg_value};
use execmig_machine::{Machine, MachineConfig};
use execmig_obs::{to_csv, to_prometheus, Histogram, Json, ToJson, Tracer};
use execmig_trace::suite;
use std::process::exit;

fn print_histogram(title: &str, h: &Histogram) {
    println!("-- {title} --");
    if h.count() == 0 {
        println!("(no observations)");
    } else {
        println!(
            "count {}, min {}, max {}, mean {:.1}, p50 {}, p90 {}, p99 {}",
            h.count(),
            h.min(),
            h.max(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        );
        print!("{}", h.render(40));
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = arg_value(&args, "--bench").unwrap_or_else(|| "art".to_string());
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let events = arg_u64(&args, "--events", 20) as usize;
    let mut em = ManifestEmitter::start("obs_report", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("bench", &bench)
            .field("instructions", instructions)
            .field("machine", "four_core_migration")
            .field("trace_feature", Tracer::ACTIVE),
    );

    let Some(mut w) = suite::by_name(&bench) else {
        eprintln!("unknown benchmark {bench:?}; see `table1` for the suite");
        exit(2);
    };
    let mut machine = Machine::new(MachineConfig::four_core_migration());
    machine.run(&mut *w, instructions);
    let registry = machine.metrics();
    em.stats(registry.to_json());

    // One flag, one dispatch; the old flags alias into it.
    let format = arg_value(&args, "--format").or_else(|| {
        if arg_flag(&args, "--prometheus") {
            Some("prom".to_string())
        } else if arg_flag(&args, "--json") {
            Some("json".to_string())
        } else {
            None
        }
    });
    if let Some(format) = format {
        match format.as_str() {
            "json" => println!("{}", registry.to_json().pretty()),
            "csv" => print!("{}", to_csv(&registry)),
            "prom" => print!("{}", to_prometheus(&registry, "execmig_")),
            other => {
                eprintln!("unknown --format {other:?}; expected json, csv, or prom");
                exit(2);
            }
        }
        em.write();
        return;
    }

    let stats = machine.stats();
    println!(
        "== observability report — {bench}, {} M instructions, 4-core migration machine ==",
        instructions / 1_000_000
    );
    println!(
        "instructions {}, L1 requests {}, L2 misses {}, migrations {}",
        stats.instructions, stats.l1_requests, stats.l2_misses, stats.migrations
    );
    println!();
    print_histogram(
        "migration inter-arrival (instructions between migrations)",
        machine.migration_interarrival(),
    );
    if let Some(mc) = machine.controller() {
        print_histogram(
            "filter dwell (controller requests between core changes)",
            mc.dwell_histogram(),
        );
        match mc.affinity_age_histogram() {
            Some(h) => print_histogram("affinity-cache age at eviction (requests)", h),
            None => println!("-- affinity table is unbounded: no evictions --\n"),
        }
    }

    if Tracer::ACTIVE {
        let tracer = machine.tracer();
        println!(
            "-- event ring: {} emitted, {} retained, {} dropped; last {} --",
            tracer.emitted(),
            tracer.len(),
            tracer.dropped(),
            events.min(tracer.len())
        );
        let all = tracer.events();
        for e in all.iter().rev().take(events).rev() {
            println!("{}", e.to_json().compact());
        }
    } else {
        println!(
            "(event tracing compiled out — rebuild with `--features trace` for the event ring)"
        );
    }
    em.write();
}
