//! §2.3/§2.4/§4.2 performance analysis: update-bus bandwidth, migration
//! penalty, break-even `P_mig`, and speed-ups at sample `P_mig` values.
//!
//! Usage: `perf_model [--instr N] [--threads N] [--json] [--no-manifest]
//!                     [--manifest-dir DIR]`

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::perf_model::{penalty_summary, render, run_all};
use execmig_experiments::report::{arg_flag, arg_u64};
use execmig_experiments::runner::default_threads;
use execmig_machine::PipelineConfig;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 50_000_000);
    let threads = arg_u64(&args, "--threads", default_threads(18) as u64) as usize;
    let mut em = ManifestEmitter::start("perf_model", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("threads", threads),
    );

    let rows = run_all(instructions, threads);
    let penalty = penalty_summary(PipelineConfig::default(), 10_000);
    em.stats(
        Json::object()
            .field("rows", rows.len())
            .field("penalty", &penalty),
    );
    if arg_flag(&args, "--json") {
        println!("{}", (&rows, &penalty).to_json().pretty());
        em.write();
        return;
    }
    println!("== §2.2/§2.4 — migration protocol penalty ==");
    println!(
        "analytic: {} cycles (drain + broadcast + issue-to-retire stages); simulated mean: {:.1} cycles",
        penalty.analytic_cycles, penalty.mean_cycles
    );
    println!(
        "§2.3 update-bus estimate at 4-wide retire: {:.0} bytes/cycle (paper: ~45)",
        penalty.paper_bus_estimate
    );
    println!();
    println!("== §4.2 — break-even P_mig per benchmark ==");
    println!("(P_mig below break-even ⇒ migration wins; paper derives ≈60 for mcf)");
    println!();
    println!("{}", render(&rows));
    em.write();
}
