//! Regenerates Table 1: the benchmark suite with instruction counts and
//! 16 KB fully-associative L1 miss counts.
//!
//! Usage: `table1 [--instr N] [--threads N]
//!                 [--protocol migration|mesi|dragon] [--csv] [--json]
//!                 [--no-manifest] [--manifest-dir DIR]
//!                 [--serve-telemetry ADDR]`
//!
//! Table 1 is a single-core L1 characterisation, so `--protocol` does
//! not change any number; it is validated and recorded in the manifest
//! so a sweep driver can pass one uniform flag set to every binary.

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_protocol, arg_u64};
use execmig_experiments::runner::default_threads;
use execmig_experiments::table1;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 50_000_000);
    let threads = arg_u64(&args, "--threads", default_threads(18) as u64) as usize;
    let telemetry = Telemetry::from_args(&args, threads);
    let mut em = ManifestEmitter::start("table1", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("threads", threads)
            .field("protocol", arg_protocol(&args)),
    );

    let rows = {
        // The sweep root span: every runner task parents to it, so
        // `/spans` and the flamegraph see one causal tree per run.
        let _sweep = execmig_obs::wall::span(execmig_obs::wall::families::SWEEP);
        table1::run_all_observed(instructions, threads, telemetry.obs())
    };
    telemetry.finish();
    em.stats(
        Json::object()
            .field("rows", rows.len())
            .field("table", &rows),
    );
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!(
        "== Table 1 — benchmarks, {} M instructions, 16 KB fully-associative LRU L1s, 64 B lines ==",
        instructions / 1_000_000
    );
    let rendered = table1::render(&rows);
    if arg_flag(&args, "--csv") {
        // Re-render as CSV by rebuilding the table.
        let mut t = execmig_experiments::TextTable::new(&[
            "benchmark",
            "instructions",
            "il1_misses",
            "dl1_misses",
            "il1_per_kinstr",
            "dl1_per_kinstr",
        ]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                r.instructions.to_string(),
                r.il1_misses.to_string(),
                r.dl1_misses.to_string(),
                format!("{:.3}", r.il1_per_kinstr),
                format!("{:.3}", r.dl1_per_kinstr),
            ]);
        }
        println!("{}", t.to_csv());
    } else {
        println!("{rendered}");
    }
    em.write();
}
