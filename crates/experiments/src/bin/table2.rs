//! Regenerates Table 2: the four-core 512 KB-L2 experiment — L1 misses,
//! L2 misses with and without migration, the L2-miss ratio, and the
//! migration frequency, all in instructions per event.
//!
//! Usage: `table2 [--instr N] [--threads N] [--bench NAME]
//!                 [--protocol migration|mesi|dragon] [--csv]
//!                 [--json] [--no-manifest] [--manifest-dir DIR]
//!                 [--serve-telemetry ADDR]`
//!
//! `--protocol` swaps the four-core machine's L2 coherence backend
//! (default: the paper's migration mode); the single-core baseline
//! columns are protocol-independent.

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_flag, arg_protocol, arg_u64, arg_value};
use execmig_experiments::runner::default_threads;
use execmig_experiments::table2;
use execmig_experiments::telemetry::Telemetry;
use execmig_obs::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 100_000_000);
    let threads = arg_u64(&args, "--threads", default_threads(18) as u64) as usize;
    let protocol = arg_protocol(&args);
    let telemetry = Telemetry::from_args(&args, threads);
    let mut em = ManifestEmitter::start("table2", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("instructions", instructions)
            .field("threads", threads)
            .field("bench", arg_value(&args, "--bench"))
            .field("protocol", protocol),
    );

    let rows = {
        // The sweep root span: runner tasks parent to it across threads.
        let _sweep = execmig_obs::wall::span(execmig_obs::wall::families::SWEEP);
        match arg_value(&args, "--bench") {
            Some(name) => vec![table2::run_benchmark_with(&name, instructions, protocol)],
            None => table2::run_all_observed_with(instructions, threads, protocol, telemetry.obs()),
        }
    };
    telemetry.finish();
    em.stats(
        Json::object()
            .field("rows", rows.len())
            .field("table", &rows),
    );
    if arg_flag(&args, "--json") {
        println!("{}", rows.to_json().pretty());
        em.write();
        return;
    }
    println!(
        "== Table 2 — 4 cores, 512 KB 4-way skewed L2 each, {} M instructions ==",
        instructions / 1_000_000
    );
    println!(
        "(instructions per event, higher is better; ratio < 1 means migration removes L2 misses)"
    );
    println!();
    if arg_flag(&args, "--csv") {
        let mut t = execmig_experiments::TextTable::new(&[
            "benchmark",
            "l1_ipe",
            "l2_ipe",
            "l2x4_ipe",
            "ratio",
            "paper_ratio",
            "migration_ipe",
            "affinity_miss_rate",
        ]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                format!("{:.1}", r.l1_ipe),
                format!("{:.1}", r.l2_ipe),
                format!("{:.1}", r.l2x4_ipe),
                format!("{:.3}", r.ratio),
                format!("{:.3}", r.paper_ratio),
                format!("{:.1}", r.migration_ipe),
                format!("{:.3}", r.affinity_miss_rate),
            ]);
        }
        println!("{}", t.to_csv());
    } else {
        println!("{}", table2::render(&rows));
        // Classification summary against the paper.
        let mut agree = 0;
        let mut total = 0;
        for r in &rows {
            total += 1;
            if table2::classify(r.ratio) == table2::classify(r.paper_ratio) {
                agree += 1;
            }
        }
        println!("classification agreement with the paper: {agree}/{total}");
    }
    em.write();
}
