//! Chrome-trace export: runs one workload on the four-core migration
//! machine with interval profiling and writes the run as Chrome Trace
//! Event Format JSON, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. The trace shows one track per core with
//! execution-residency slices, migration instants linked by flow
//! arrows, and counter tracks for `F`, `A_R`, miss densities, bus
//! traffic, and per-core residency.
//!
//! Usage: `trace_viewer [--bench NAME | --circular LINES] [--instr N]
//!                      [--period N] [--out PATH] [--no-manifest]
//!                      [--manifest-dir DIR]`
//!
//! Event and profile data exist only in `--features trace` builds;
//! without the feature the exporter still writes a valid (residency
//! only, single slice) trace and says so.

use execmig_experiments::manifest::ManifestEmitter;
use execmig_experiments::report::{arg_u64, arg_value};
use execmig_machine::{Machine, MachineConfig};
use execmig_obs::chrome::render_machine_trace;
use execmig_obs::{Json, ProfileConfig, Profiler, Tracer};
use execmig_trace::gen::CircularWorkload;
use execmig_trace::{suite, Workload};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = arg_u64(&args, "--instr", 30_000_000);
    let period = arg_u64(&args, "--period", 64 << 10);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "trace.json".to_string());
    let circular = arg_value(&args, "--circular");
    let bench = arg_value(&args, "--bench");

    let mut workload: Box<dyn Workload> = match (&bench, &circular) {
        (Some(_), Some(_)) => {
            eprintln!("--bench and --circular are mutually exclusive");
            exit(2);
        }
        (Some(name), None) => match suite::by_name(name) {
            Some(w) => w,
            None => {
                eprintln!("unknown benchmark {name:?}; see `table1` for the suite");
                exit(2);
            }
        },
        // Default: a fig3-style circular stream over 4000 lines — the
        // cleanest illustration of affinity settling and migration.
        (None, Some(lines)) => {
            Box::new(CircularWorkload::new(lines.parse().unwrap_or_else(|_| {
                eprintln!("--circular expects a line count, got {lines:?}");
                exit(2);
            })))
        }
        (None, None) => Box::new(CircularWorkload::new(4000)),
    };

    let mut em = ManifestEmitter::start("trace_viewer", &args);
    em.budget(instructions);
    em.config(
        &Json::object()
            .field("workload", workload.name())
            .field("instructions", instructions)
            .field("period", period)
            .field("machine", "four_core_migration")
            .field("trace_feature", Profiler::ACTIVE)
            .field("out", &out),
    );

    let mut machine = Machine::new(MachineConfig::four_core_migration());
    machine.set_profile_config(ProfileConfig {
        period,
        ..ProfileConfig::default()
    });
    machine.run(&mut *workload, instructions);

    // Types are inferred from the gated reads: naming `TraceEvent`
    // outside the `if Tracer::ACTIVE` block would itself trip E006.
    let mut records = Vec::new();
    let mut events = Vec::new();
    if Profiler::ACTIVE {
        records = machine.profiler().records().to_vec();
    }
    if Tracer::ACTIVE {
        events = machine.tracer().events().to_vec();
    }
    if !Profiler::ACTIVE {
        eprintln!(
            "(profiling compiled out — rebuild with `--features trace` \
             for counter tracks and migration flows)"
        );
    }

    let cores = machine.config().cores;
    let doc = render_machine_trace(&records, &events, cores, machine.stats().instructions);
    let body = format!("{}\n", doc.compact());
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("trace_viewer: could not write {out}: {e}");
        exit(2);
    }
    let s = machine.stats();
    println!(
        "wrote {out}: {} trace events ({} profile intervals, {} ring events) — \
         {} instr, {} migrations, {} L2 misses",
        match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items.len(),
            _ => 0,
        },
        records.len(),
        events.len(),
        s.instructions,
        s.migrations,
        s.l2_misses
    );
    em.stats(
        Json::object()
            .field("trace_bytes", body.len() as u64)
            .field("profile_intervals", records.len() as u64)
            .field("ring_events", events.len() as u64)
            .field("migrations", s.migrations)
            .field("l2_misses", s.l2_misses),
    );
    em.write();
}
