//! Coherence-backend comparison: the same reference streams through the
//! four-core migration machine under each L2 protocol — migration mode
//! (the paper's machine), MESI (invalidation-based, Illinois variant)
//! and Dragon (update-based) — reporting what each backend pays in
//! misses and bus traffic.
//!
//! Migration mode never invalidates and never sends coherence updates
//! (migrating the *thread* to the data is its whole answer to write
//! sharing), so its `inv/kinstr`, `upd/kinstr` and coherence-bus
//! columns are zero by construction; its cost shows up on the §2.3
//! register/store/branch update bus instead, which is reported
//! separately. The `vs mig` column is the protocol's L2-miss rate
//! relative to migration mode's on the same stream — below 1 means the
//! bus protocol removes misses migration mode keeps.

use execmig_machine::{Machine, MachineConfig, Protocol};
use execmig_trace::suite;

use crate::runner::ObsCtx;

/// One (benchmark, protocol) cell of the comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Benchmark name.
    pub name: String,
    /// Protocol label (`migration`, `mesi`, `dragon`).
    pub protocol: String,
    /// Instructions simulated.
    pub instructions: u64,
    /// Raw L2 miss count.
    pub l2_misses: u64,
    /// L2 misses per thousand instructions.
    pub l2_misses_per_kinstr: f64,
    /// This protocol's L2-miss rate over migration mode's.
    pub miss_ratio_vs_migration: f64,
    /// Migrations taken (the controller runs under every protocol).
    pub migrations: u64,
    /// Remote copies killed (MESI only; structurally zero elsewhere).
    pub invalidations: u64,
    /// Remote copies refreshed in place (Dragon only).
    pub coherence_updates: u64,
    /// Invalidations per thousand instructions.
    pub invalidations_per_kinstr: f64,
    /// Updates per thousand instructions.
    pub updates_per_kinstr: f64,
    /// Coherence-transaction bus bytes per instruction.
    pub coherence_bytes_per_instr: f64,
    /// §2.3 register/store/branch update-bus bytes per instruction.
    pub update_bus_bytes_per_instr: f64,
}

execmig_obs::impl_to_json!(CompareRow {
    name,
    protocol,
    instructions,
    l2_misses,
    l2_misses_per_kinstr,
    miss_ratio_vs_migration,
    migrations,
    invalidations,
    coherence_updates,
    invalidations_per_kinstr,
    updates_per_kinstr,
    coherence_bytes_per_instr,
    update_bus_bytes_per_instr
});

/// Runs one benchmark under every protocol at the given budget; returns
/// one row per protocol, migration mode first.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark(name: &str, instructions: u64) -> Vec<CompareRow> {
    run_benchmark_observed(name, instructions, None)
}

/// As [`run_benchmark`], with live telemetry beats when an [`ObsCtx`]
/// is present (the simulation path is identical either way).
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark_observed(
    name: &str,
    instructions: u64,
    ctx: Option<&ObsCtx<'_>>,
) -> Vec<CompareRow> {
    let mut rows = Vec::with_capacity(Protocol::ALL.len());
    let mut migration_rate = f64::NAN;
    for protocol in Protocol::ALL {
        let config = MachineConfig {
            protocol,
            ..MachineConfig::four_core_migration()
        };
        let mut m = Machine::new(config);
        let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        match ctx {
            Some(c) => m.run_observed(
                &mut *w,
                instructions,
                c.worker,
                c.task,
                c.tasks_done,
                crate::telemetry::BEAT_PERIOD_INSTR,
            ),
            None => m.run(&mut *w, instructions),
        }
        let s = m.stats();
        let instr = s.instructions.max(1) as f64;
        let rate = s.l2_misses as f64 / instr;
        if protocol == Protocol::MigrationMode {
            migration_rate = rate;
        }
        rows.push(CompareRow {
            name: name.to_string(),
            protocol: protocol.as_str().to_string(),
            instructions: s.instructions,
            l2_misses: s.l2_misses,
            l2_misses_per_kinstr: rate * 1000.0,
            miss_ratio_vs_migration: if migration_rate > 0.0 {
                rate / migration_rate
            } else {
                f64::NAN
            },
            migrations: s.migrations,
            invalidations: s.invalidations,
            coherence_updates: s.coherence_updates,
            invalidations_per_kinstr: s.invalidations as f64 / instr * 1000.0,
            updates_per_kinstr: s.coherence_updates as f64 / instr * 1000.0,
            coherence_bytes_per_instr: s.coherence_bus_bytes as f64 / instr,
            update_bus_bytes_per_instr: s.bus.update_bus_bytes() as f64 / instr,
        });
    }
    rows
}

/// Runs the whole suite; rows are grouped by benchmark, migration mode
/// first within each group.
pub fn run_all(instructions: u64, threads: usize) -> Vec<CompareRow> {
    run_all_observed(instructions, threads, crate::runner::Obs::none())
}

/// Runs the whole suite with live observability into `obs` (hub beats
/// and/or wall-clock spans, when given).
pub fn run_all_observed(
    instructions: u64,
    threads: usize,
    obs: crate::runner::Obs<'_>,
) -> Vec<CompareRow> {
    crate::runner::parallel_map_observed(suite::names(), threads, obs, |name, ctx| {
        run_benchmark_observed(name, instructions, ctx.as_ref())
    })
    .0
    .into_iter()
    .flatten()
    .collect()
}

/// Renders the comparison table.
pub fn render(rows: &[CompareRow]) -> String {
    use crate::report::fmt_ratio;
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "protocol",
        "L2miss/kinstr",
        "vs mig",
        "inv/kinstr",
        "upd/kinstr",
        "coh B/instr",
        "§2.3 B/instr",
        "migrations",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.protocol.clone(),
            format!("{:.3}", r.l2_misses_per_kinstr),
            fmt_ratio(r.miss_ratio_vs_migration),
            format!("{:.3}", r.invalidations_per_kinstr),
            format!("{:.3}", r.updates_per_kinstr),
            format!("{:.3}", r.coherence_bytes_per_instr),
            format!("{:.3}", r.update_bus_bytes_per_instr),
            r.migrations.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn art_rows_have_the_structural_zeroes() {
        let rows = run_benchmark("art", 2_000_000);
        assert_eq!(rows.len(), 3);
        let (mig, mesi, dragon) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(
            (
                mig.protocol.as_str(),
                mesi.protocol.as_str(),
                dragon.protocol.as_str()
            ),
            ("migration", "mesi", "dragon")
        );
        // Migration mode pays no coherence transactions at all.
        assert_eq!((mig.invalidations, mig.coherence_updates), (0, 0));
        assert_eq!(mig.coherence_bytes_per_instr, 0.0);
        assert!((mig.miss_ratio_vs_migration - 1.0).abs() < 1e-12);
        // MESI invalidates, never updates; Dragon the reverse.
        assert!(mesi.invalidations > 0);
        assert_eq!(mesi.coherence_updates, 0);
        assert_eq!(dragon.invalidations, 0);
        assert!(dragon.coherence_updates > 0);
        assert!(mesi.coherence_bytes_per_instr > 0.0);
        assert!(dragon.coherence_bytes_per_instr > 0.0);
        // Dragon's update keeps copies alive exactly like migration
        // mode's store broadcast: identical miss stream.
        assert_eq!(dragon.l2_misses, mig.l2_misses);
        // The §2.3 bus (register transfers on migration, store
        // broadcast) is where migration mode's sharing cost lives.
        assert!(mig.update_bus_bytes_per_instr > 0.0);
    }

    #[test]
    fn render_groups_protocol_rows() {
        let rows = run_benchmark("swim", 500_000);
        let s = render(&rows);
        assert!(s.contains("mesi"));
        assert!(s.contains("dragon"));
        assert!(s.contains("vs mig"));
    }
}
