//! Cross-run regression diffing of JSON artefacts.
//!
//! Compares two runs' numeric metrics — `BENCH_*.json` arrays from the
//! bench harness, run manifests from [`crate::manifest`], or any other
//! in-tree JSON artefact — by flattening each document to
//! `path → number` leaves and reporting relative deltas against a
//! threshold. The `obs_diff` binary wraps this as a CI soft gate: exit
//! 0 when within threshold, 1 on regression, 2 on usage/IO errors.
//!
//! Semantics: metrics are treated as *lower-is-better* (nanoseconds,
//! misses, bytes — the units our artefacts carry), so a **regression**
//! is an increase by more than the relative threshold. `drift` mode
//! flags movement in *either* direction, which is what a determinism
//! gate wants. Wall-clock and environment fields of manifests
//! (`wall_seconds`, `finished_unix_ms`, `crate_version`, `args`) are
//! ignored: they legitimately differ between identical runs.

use std::collections::BTreeMap;

use execmig_obs::{Json, ToJson};

/// Manifest fields that differ between byte-identical reruns.
const VOLATILE: &[&str] = &["wall_seconds", "finished_unix_ms", "crate_version", "args"];

/// Comparison settings.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative change above which a delta is a regression (0.10 =
    /// 10 %).
    pub threshold: f64,
    /// Flag *any* movement beyond the threshold, not just increases.
    pub drift: bool,
    /// Absolute gate for zero-baseline leaves, whose relative delta is
    /// ±∞ and would otherwise fail on *any* movement: a leaf growing
    /// from 0 only regresses past this value. Leaves present in one
    /// document only (`added`/`removed`) are always informational.
    pub abs_floor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold: 0.10,
            drift: false,
            abs_floor: 10.0,
        }
    }
}

execmig_obs::impl_to_json!(DiffConfig {
    threshold,
    drift,
    abs_floor
});

/// One numeric leaf present in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Slash-separated path of the leaf (array elements with an `id`
    /// field are keyed by it).
    pub path: String,
    /// Value in the baseline document.
    pub before: f64,
    /// Value in the candidate document.
    pub after: f64,
}

execmig_obs::impl_to_json!(MetricDelta {
    path,
    before,
    after
});

impl MetricDelta {
    /// Relative change `(after − before) / |before|`; ±∞ when the
    /// baseline is zero and the candidate is not.
    pub fn rel(&self) -> f64 {
        if self.before == self.after {
            0.0
        } else if self.before == 0.0 {
            f64::INFINITY.copysign(self.after)
        } else {
            (self.after - self.before) / self.before.abs()
        }
    }

    /// Is this delta a regression under `config`? A zero baseline has
    /// no meaningful relative delta ([`rel`](Self::rel) is ±∞), so
    /// movement away from zero is gated on `config.abs_floor` instead
    /// of the relative threshold.
    pub fn regressed(&self, config: &DiffConfig) -> bool {
        if self.before == 0.0 {
            return if config.drift {
                self.after.abs() > config.abs_floor
            } else {
                self.after > config.abs_floor
            };
        }
        let rel = self.rel();
        if config.drift {
            rel.abs() > config.threshold
        } else {
            rel > config.threshold
        }
    }
}

/// The full comparison of two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Leaves present in both documents, in path order.
    pub deltas: Vec<MetricDelta>,
    /// Leaf paths only in the candidate.
    pub added: Vec<String>,
    /// Leaf paths only in the baseline.
    pub removed: Vec<String>,
}

impl DiffReport {
    /// Compares `baseline` against `candidate`.
    pub fn compare(baseline: &Json, candidate: &Json) -> DiffReport {
        let a = flatten(baseline);
        let b = flatten(candidate);
        let mut report = DiffReport::default();
        for (path, &before) in &a {
            match b.get(path) {
                Some(&after) => report.deltas.push(MetricDelta {
                    path: path.clone(),
                    before,
                    after,
                }),
                None => report.removed.push(path.clone()),
            }
        }
        for path in b.keys() {
            if !a.contains_key(path) {
                report.added.push(path.clone());
            }
        }
        report
    }

    /// Restricts the report to leaves under one of `only` (slash
    /// path prefixes, leading `/` optional) whose final segment is
    /// `metric` (when given). Shape changes (`added`/`removed`) are
    /// filtered by the same predicate, so a gate scoped to
    /// `cache/ … median_ns` ignores unrelated suites growing or
    /// shrinking. Empty `only` means "everywhere".
    pub fn retain(&mut self, only: &[String], metric: Option<&str>) {
        let keep = |path: &str| -> bool {
            let rel = path.strip_prefix('/').unwrap_or(path);
            let prefix_ok = only.is_empty() || only.iter().any(|p| rel.starts_with(p.as_str()));
            let metric_ok = metric.is_none_or(|m| rel.rsplit('/').next() == Some(m));
            prefix_ok && metric_ok
        };
        self.deltas.retain(|d| keep(&d.path));
        self.added.retain(|p| keep(p));
        self.removed.retain(|p| keep(p));
    }

    /// Deltas that changed at all.
    pub fn changed(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.before != d.after)
    }

    /// Deltas regressed under `config`.
    pub fn regressions(&self, config: &DiffConfig) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed(config)).collect()
    }

    /// True when the documents carry identical metric sets and values.
    pub fn is_identical(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed().next().is_none()
    }

    /// The report as JSON (changed deltas only, plus shape changes).
    pub fn to_json_summary(&self, config: &DiffConfig) -> Json {
        let changed: Vec<Json> = self
            .changed()
            .map(|d| {
                d.to_json()
                    .field("rel", d.rel())
                    .field("regressed", d.regressed(config))
            })
            .collect();
        Json::object()
            .field("compared", self.deltas.len() as u64)
            .field("changed", Json::Arr(changed))
            .field("added", &self.added)
            .field("removed", &self.removed)
            .field("regressions", self.regressions(config).len() as u64)
    }
}

/// One metric leaf's trajectory across an ordered sequence of
/// documents (e.g. every checked-in `BENCH_*.json` baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Slash-separated leaf path, without the metric segment.
    pub path: String,
    /// The leaf's value in each document, `None` where absent (a
    /// kernel that did not exist yet, or was retired).
    pub values: Vec<Option<f64>>,
}

impl HistoryRow {
    /// Relative change from the first to the last present value;
    /// `None` with fewer than two data points.
    pub fn trend(&self) -> Option<f64> {
        let mut present = self.values.iter().flatten();
        let first = *present.next()?;
        let last = *present.next_back().or(Some(&first))?;
        if first == 0.0 {
            return None;
        }
        Some((last - first) / first.abs())
    }
}

/// Collects the per-leaf trajectory of `metric` across `docs` (in the
/// order given — callers sort baselines by revision first). Leaves are
/// keyed the same way [`flatten`] keys them, so bench arrays pair by
/// kernel `id` across revisions even when reordered.
pub fn history(docs: &[Json], metric: &str) -> Vec<HistoryRow> {
    let flat: Vec<BTreeMap<String, f64>> = docs.iter().map(flatten).collect();
    let mut paths: Vec<String> = Vec::new();
    for doc in &flat {
        for path in doc.keys() {
            let Some(stem) = path.strip_suffix(metric).and_then(|p| p.strip_suffix('/')) else {
                continue;
            };
            if !paths.iter().any(|p| p == stem) {
                paths.push(stem.to_string());
            }
        }
    }
    paths.sort();
    paths
        .into_iter()
        .map(|stem| {
            let leaf = format!("{stem}/{metric}");
            HistoryRow {
                values: flat.iter().map(|doc| doc.get(&leaf).copied()).collect(),
                path: stem,
            }
        })
        .collect()
}

/// `BENCH_<n>.json` baselines under `dir` as `(revision, path)`
/// pairs, ordered by **numeric** revision.
///
/// The revision is parsed out of the filename rather than sorted as
/// text: a lexicographic listing puts `BENCH_10.json` *before*
/// `BENCH_9.json` (`'1' < '9'`), which would silently reverse part of
/// a `--history` trajectory once baselines reach two digits. Files
/// not matching `BENCH_<decimal>.json` are skipped.
pub fn bench_baselines(dir: &str) -> Result<Vec<(u64, String)>, String> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{dir}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(rev) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((rev, entry.path().to_string_lossy().into_owned()));
    }
    found.sort();
    Ok(found)
}

/// Flattens `json` to its numeric leaves. Objects append `/key`;
/// arrays whose elements carry a string `id` field key by
/// `/<id>`, other arrays by `/<index>`; booleans count as 0/1;
/// strings and nulls are dropped. Volatile manifest fields are
/// skipped at any depth.
pub fn flatten(json: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(json, String::new(), &mut out);
    out
}

fn walk(json: &Json, path: String, out: &mut BTreeMap<String, f64>) {
    match json {
        Json::Null | Json::Str(_) => {}
        Json::Bool(b) => {
            out.insert(path, u64::from(*b) as f64);
        }
        Json::UInt(v) => {
            out.insert(path, *v as f64);
        }
        Json::Int(v) => {
            out.insert(path, *v as f64);
        }
        Json::Num(v) => {
            out.insert(path, *v);
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let key = match item.get("id") {
                    Some(Json::Str(id)) => id.clone(),
                    _ => i.to_string(),
                };
                walk(item, format!("{path}/{key}"), out);
            }
        }
        Json::Obj(fields) => {
            for (key, value) in fields {
                if VOLATILE.contains(&key.as_str()) {
                    continue;
                }
                walk(value, format!("{path}/{key}"), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_obs::json;

    fn bench(id: &str, median: f64) -> Json {
        Json::object()
            .field("id", id)
            .field("median_ns", median)
            .field("samples", 20u64)
    }

    #[test]
    fn identical_documents_have_zero_deltas() {
        let doc = Json::Arr(vec![bench("a/b", 100.0), bench("c/d", 5.5)]);
        let r = DiffReport::compare(&doc, &doc);
        assert!(r.is_identical());
        assert_eq!(r.deltas.len(), 4);
        assert!(r.regressions(&DiffConfig::default()).is_empty());
        assert!(r.changed().next().is_none());
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let a = Json::Arr(vec![bench("k", 100.0)]);
        let b = Json::Arr(vec![bench("k", 115.0)]);
        let r = DiffReport::compare(&a, &b);
        let cfg = DiffConfig::default();
        let reg = r.regressions(&cfg);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].path, "/k/median_ns");
        assert!((reg[0].rel() - 0.15).abs() < 1e-12);
        // A 15 % *speed-up* is not a regression (but is drift).
        let r = DiffReport::compare(&b, &a);
        assert!(r.regressions(&cfg).is_empty());
        let drift = DiffConfig { drift: true, ..cfg };
        assert_eq!(r.regressions(&drift).len(), 1);
    }

    #[test]
    fn within_threshold_passes() {
        let a = Json::Arr(vec![bench("k", 100.0)]);
        let b = Json::Arr(vec![bench("k", 109.0)]);
        let r = DiffReport::compare(&a, &b);
        assert!(r.regressions(&DiffConfig::default()).is_empty());
        assert_eq!(r.changed().count(), 1);
    }

    #[test]
    fn arrays_key_by_id_not_position() {
        // Same benchmarks, reordered: must pair up by id.
        let a = Json::Arr(vec![bench("x", 10.0), bench("y", 20.0)]);
        let b = Json::Arr(vec![bench("y", 20.0), bench("x", 10.0)]);
        let r = DiffReport::compare(&a, &b);
        assert!(r.is_identical());
    }

    #[test]
    fn shape_changes_are_reported() {
        let a = Json::Arr(vec![bench("x", 10.0), bench("gone", 1.0)]);
        let b = Json::Arr(vec![bench("x", 10.0), bench("new", 2.0)]);
        let r = DiffReport::compare(&a, &b);
        assert!(!r.is_identical());
        assert!(r.removed.iter().all(|p| p.starts_with("/gone")));
        assert!(r.added.iter().all(|p| p.starts_with("/new")));
    }

    #[test]
    fn volatile_manifest_fields_are_ignored() {
        let mk = |wall: f64, ms: u64, l2: u64| {
            Json::object()
                .field("binary", "fig3")
                .field("wall_seconds", wall)
                .field("finished_unix_ms", ms)
                .field("stats", Json::object().field("l2_misses", l2))
        };
        let r = DiffReport::compare(&mk(1.0, 111, 500), &mk(9.0, 999, 500));
        assert!(r.is_identical(), "volatile fields must not count");
        let r = DiffReport::compare(&mk(1.0, 111, 500), &mk(1.0, 111, 700));
        assert_eq!(r.regressions(&DiffConfig::default()).len(), 1);
    }

    #[test]
    fn zero_baseline_is_gated_on_the_absolute_floor() {
        // `rel()` is ±∞ from a zero baseline — as a *relative* gate
        // that failed on any movement at all (e.g. a counter that was
        // dead in the baseline ticking 3 times). The regression gate
        // uses the absolute floor instead.
        let cfg = DiffConfig::default();
        let zero = Json::object().field("misses", 0u64);
        let small = Json::object().field("misses", 3u64);
        let big = Json::object().field("misses", 5000u64);

        let r = DiffReport::compare(&zero, &small);
        assert!(r.deltas[0].rel().is_infinite(), "rel stays mathematical");
        assert!(
            r.regressions(&cfg).is_empty(),
            "movement under the floor is informational"
        );

        let r = DiffReport::compare(&zero, &big);
        assert_eq!(r.regressions(&cfg).len(), 1, "past the floor regresses");

        // The floor is configurable; 0.0 restores the strict gate.
        let strict = DiffConfig {
            abs_floor: 0.0,
            ..cfg
        };
        let r = DiffReport::compare(&zero, &small);
        assert_eq!(r.regressions(&strict).len(), 1);

        // Drift mode gates |after| the same way.
        let drift = DiffConfig { drift: true, ..cfg };
        let neg = Json::object().field("misses", -3.0);
        let r = DiffReport::compare(&zero, &neg);
        assert!(r.regressions(&drift).is_empty());
    }

    #[test]
    fn retain_scopes_by_prefix_and_metric() {
        let a = Json::Arr(vec![
            bench("cache/lookup", 100.0),
            bench("table1/apsi", 50.0),
            bench("gone/x", 1.0),
        ]);
        let b = Json::Arr(vec![
            bench("cache/lookup", 200.0),
            bench("table1/apsi", 99.0),
            bench("new/y", 2.0),
        ]);
        let mut r = DiffReport::compare(&a, &b);
        r.retain(&["cache/".to_string()], Some("median_ns"));
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].path, "/cache/lookup/median_ns");
        assert!(r.added.is_empty(), "out-of-scope additions dropped");
        assert!(r.removed.is_empty(), "out-of-scope removals dropped");
        // Several prefixes OR together; no metric keeps all leaves.
        let mut r = DiffReport::compare(&a, &b);
        r.retain(&["cache/".to_string(), "table1/".to_string()], None);
        assert_eq!(r.deltas.len(), 4, "median_ns + samples for two ids");
        // Empty prefix list means everywhere.
        let mut r = DiffReport::compare(&a, &b);
        r.retain(&[], Some("samples"));
        assert!(r.deltas.iter().all(|d| d.path.ends_with("/samples")));
        assert_eq!(r.deltas.len(), 2);
    }

    #[test]
    fn history_tracks_kernels_across_revisions() {
        let docs = vec![
            Json::Arr(vec![bench("cache/a", 100.0), bench("gone/b", 7.0)]),
            Json::Arr(vec![bench("cache/a", 110.0)]),
            Json::Arr(vec![bench("cache/a", 120.0), bench("new/c", 3.0)]),
        ];
        let rows = history(&docs, "median_ns");
        assert_eq!(rows.len(), 3, "union of kernels, in path order");
        let a = &rows[0];
        assert_eq!(a.path, "/cache/a");
        assert_eq!(a.values, vec![Some(100.0), Some(110.0), Some(120.0)]);
        assert!((a.trend().expect("two points") - 0.20).abs() < 1e-12);
        let b = &rows[1];
        assert_eq!(b.path, "/gone/b");
        assert_eq!(b.values, vec![Some(7.0), None, None]);
        assert_eq!(b.trend(), Some(0.0), "single point: flat");
        let c = &rows[2];
        assert_eq!(c.values, vec![None, None, Some(3.0)]);
        // Other metrics' leaves never leak in.
        assert!(history(&docs, "nope").is_empty());
    }

    #[test]
    fn bench_baselines_order_numerically_past_one_digit() {
        // Lexicographically "BENCH_10.json" < "BENCH_9.json"; the
        // history scan must order by the parsed revision instead.
        let dir = std::env::temp_dir().join(format!("execmig_baselines_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "BENCH_9.json",
            "BENCH_10.json",
            "BENCH_3.json",
            "BENCH_6.json",
            "BENCH_8.json",
            "BENCH_x.json", // not a revision: skipped
            "BENCH_2.txt",  // wrong extension: skipped
            "notes.json",   // unrelated: skipped
        ] {
            std::fs::write(dir.join(name), "[]").unwrap();
        }
        let found = bench_baselines(dir.to_str().unwrap()).unwrap();
        let revs: Vec<u64> = found.iter().map(|(rev, _)| *rev).collect();
        assert_eq!(revs, [3, 6, 8, 9, 10]);
        for (rev, path) in &found {
            assert!(path.ends_with(&format!("BENCH_{rev}.json")));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_json_round_trips() {
        let a = Json::Arr(vec![bench("k", 100.0)]);
        let b = Json::Arr(vec![bench("k", 150.0)]);
        let cfg = DiffConfig::default();
        let summary = DiffReport::compare(&a, &b).to_json_summary(&cfg);
        let text = summary.pretty();
        assert_eq!(json::parse(&text), Ok(summary.clone()));
        assert_eq!(summary.get("regressions"), Some(&Json::UInt(1)));
    }
}
