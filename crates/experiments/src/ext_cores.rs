//! §6 extension: core-count scaling.
//!
//! "We have shown that this method works on 4-core configurations.
//! However, it works also on 2-core configurations, and we believe it
//! is possible to adapt it to a larger number of cores." This
//! experiment sweeps 1/2/4/8 cores (8-way splitting uses the third
//! recursion level of
//! [`SplitterTree`](execmig_core::SplitterTree)) and reports the
//! L2-miss ratio versus the single-core baseline.

use execmig_core::{ControllerConfig, SplitWays};
use execmig_machine::{Machine, MachineConfig};
use execmig_trace::suite;

/// Result of one (benchmark, cores) cell.
#[derive(Debug, Clone)]
pub struct CoreSweepPoint {
    /// Benchmark.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// L2-miss ratio versus the 1-core baseline (per instruction).
    pub ratio: f64,
    /// Instructions per migration.
    pub migration_ipe: f64,
    /// Instructions per L2 miss.
    pub l2_ipe: f64,
}

execmig_obs::impl_to_json!(CoreSweepPoint {
    name,
    cores,
    ratio,
    migration_ipe,
    l2_ipe
});

/// Builds the machine for a core count.
fn machine_for(cores: usize) -> Machine {
    let controller = match cores {
        1 => None,
        2 => Some(ControllerConfig {
            ways: SplitWays::Two,
            ..ControllerConfig::paper_4core()
        }),
        4 => Some(ControllerConfig::paper_4core()),
        8 => Some(ControllerConfig {
            ways: SplitWays::Eight,
            ..ControllerConfig::paper_4core()
        }),
        _ => panic!("unsupported core count {cores}"),
    };
    Machine::new(MachineConfig {
        cores,
        controller,
        ..MachineConfig::single_core()
    })
}

/// Sweeps core counts for one benchmark.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn sweep(name: &str, core_counts: &[usize], instructions: u64) -> Vec<CoreSweepPoint> {
    let mut baseline_rate = None;
    core_counts
        .iter()
        .map(|&cores| {
            let mut machine = machine_for(cores);
            let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
            machine.run(&mut *w, instructions);
            let s = machine.stats();
            let rate = s.l2_misses as f64 / s.instructions.max(1) as f64;
            let base = *baseline_rate.get_or_insert(rate);
            CoreSweepPoint {
                name: name.to_string(),
                cores,
                ratio: if base > 0.0 { rate / base } else { f64::NAN },
                migration_ipe: s.instr_per_migration(),
                l2_ipe: s.instr_per_l2_miss(),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[CoreSweepPoint]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "cores",
        "L2-miss ratio",
        "L2 ipe",
        "migration ipe",
    ]);
    for p in points {
        t.row(&[
            p.name.clone(),
            p.cores.to_string(),
            crate::report::fmt_ratio(p.ratio),
            crate::report::fmt_ipe(p.l2_ipe),
            crate::report::fmt_ipe(p.migration_ipe),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_degree_must_make_subsets_fit() {
        // art's 1.5 MB circular set: 2-way halves are 768 KB — still
        // bigger than one 512 KB L2, so 2 cores give ~no benefit; the
        // 4-way quarters (384 KB) fit, and the misses collapse.
        let points = sweep("art", &[1, 2, 4], 15_000_000);
        assert!((points[0].ratio - 1.0).abs() < 1e-9);
        assert!(
            (0.85..=1.1).contains(&points[1].ratio),
            "2-core ratio {} — halves should still thrash",
            points[1].ratio
        );
        assert!(
            points[2].ratio < 0.3,
            "4-core ratio {} — quarters should fit",
            points[2].ratio
        );
    }

    #[test]
    fn eight_cores_run_end_to_end() {
        let points = sweep("em3d", &[1, 8], 10_000_000);
        assert_eq!(points[1].cores, 8);
        assert!(points[1].ratio < 0.9, "8-core ratio {}", points[1].ratio);
    }

    #[test]
    #[should_panic(expected = "unsupported core count")]
    fn rejects_bad_core_count() {
        sweep("art", &[3], 1000);
    }
}
