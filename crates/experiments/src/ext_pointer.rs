//! §6 extension: pointer-load filtering.
//!
//! "Pointer loads found in applications using linked data structures
//! generally have a high miss penalty. One could decide to restrict the
//! class of applications triggering migrations by having the transition
//! filter updated only on requests coming from pointer loads."
//!
//! With the filter restricted, pointer-chasing benchmarks keep their
//! benefit while benchmarks without pointer loads stop migrating
//! entirely — trading away any (possibly accidental) benefit for a
//! guarantee that migration costs are only paid where the expensive
//! misses are.

use execmig_core::ControllerConfig;
use execmig_machine::{Machine, MachineConfig};
use execmig_trace::suite;

/// Result of one benchmark under both filter settings.
#[derive(Debug, Clone)]
pub struct PointerFilterRow {
    /// Benchmark.
    pub name: String,
    /// L2-miss ratio without pointer filtering (the Table 2 setting).
    pub ratio_plain: f64,
    /// Migrations per million instructions without pointer filtering.
    pub migr_per_minstr_plain: f64,
    /// L2-miss ratio with pointer filtering.
    pub ratio_pointer: f64,
    /// Migrations per million instructions with pointer filtering.
    pub migr_per_minstr_pointer: f64,
}

execmig_obs::impl_to_json!(PointerFilterRow {
    name,
    ratio_plain,
    migr_per_minstr_plain,
    ratio_pointer,
    migr_per_minstr_pointer
});

fn run_one(name: &str, pointer_filter: bool, instructions: u64) -> (f64, f64) {
    let mut baseline = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    baseline.run(&mut *w, instructions);

    let mut migration = Machine::new(MachineConfig {
        controller: Some(ControllerConfig {
            pointer_filter,
            ..ControllerConfig::paper_4core()
        }),
        ..MachineConfig::four_core_migration()
    });
    let mut w = suite::by_name(name).expect("suite benchmark");
    migration.run(&mut *w, instructions);

    let b = baseline.stats();
    let m = migration.stats();
    let ratio = (m.l2_misses as f64 / m.instructions.max(1) as f64)
        / (b.l2_misses as f64 / b.instructions.max(1) as f64).max(f64::MIN_POSITIVE);
    let migr = m.migrations as f64 * 1e6 / m.instructions.max(1) as f64;
    (ratio, migr)
}

/// Runs one benchmark with and without pointer filtering.
pub fn run_benchmark(name: &str, instructions: u64) -> PointerFilterRow {
    let (ratio_plain, migr_plain) = run_one(name, false, instructions);
    let (ratio_pointer, migr_pointer) = run_one(name, true, instructions);
    PointerFilterRow {
        name: name.to_string(),
        ratio_plain,
        migr_per_minstr_plain: migr_plain,
        ratio_pointer,
        migr_per_minstr_pointer: migr_pointer,
    }
}

/// Renders the comparison.
pub fn render(rows: &[PointerFilterRow]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "ratio (plain)",
        "migr/Minstr",
        "ratio (ptr-filter)",
        "migr/Minstr ",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            crate::report::fmt_ratio(r.ratio_plain),
            format!("{:.1}", r.migr_per_minstr_plain),
            crate::report::fmt_ratio(r.ratio_pointer),
            format!("{:.1}", r.migr_per_minstr_pointer),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_benchmark_keeps_benefit() {
        // em3d's traversal loads are pointer loads: filtering on them
        // must preserve the L2-miss reduction.
        let r = run_benchmark("em3d", 15_000_000);
        assert!(r.ratio_plain < 0.5, "plain {}", r.ratio_plain);
        assert!(r.ratio_pointer < 0.5, "pointer {}", r.ratio_pointer);
    }

    #[test]
    fn non_pointer_benchmark_stops_migrating() {
        // art is array code: no pointer loads, so the restricted filter
        // never moves and no migrations happen.
        let r = run_benchmark("art", 5_000_000);
        assert!(r.migr_per_minstr_plain > 0.0);
        assert_eq!(r.migr_per_minstr_pointer, 0.0, "{r:?}");
        // Without migrations the ratio returns to ~1.
        assert!(
            (0.9..=1.1).contains(&r.ratio_pointer),
            "pointer-filtered art ratio {}",
            r.ratio_pointer
        );
    }
}
