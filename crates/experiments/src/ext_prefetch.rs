//! §6 extension: combining prefetching and execution migration.
//!
//! "Execution migration is not intended to replace prefetching. …
//! much of the splittability we observed seems to come from circular
//! working-set behaviors on which prefetching is likely to succeed. It
//! is possible that execution migration, as a way to decrease L2
//! misses, is mostly interesting on applications using linked data
//! structures."
//!
//! The experiment runs each benchmark through the 2×2 grid
//! {no prefetch, sequential prefetch} × {1 core, 4 cores + migration}
//! and reports L2 misses per kilo-instruction. The paper's conjecture
//! shows up directly: sequential prefetching recovers most of art's
//! (array sweeps) migration benefit, but almost none of em3d's
//! (pointer chasing), where migration keeps its edge.

use execmig_machine::{Machine, MachineConfig, PrefetchConfig};
use execmig_trace::suite;

/// L2 misses per kilo-instruction in each of the four configurations.
#[derive(Debug, Clone)]
pub struct PrefetchRow {
    /// Benchmark.
    pub name: String,
    /// 1 core, no prefetch (Table 2 baseline).
    pub base: f64,
    /// 1 core, sequential prefetch.
    pub base_prefetch: f64,
    /// 4 cores + migration, no prefetch.
    pub migration: f64,
    /// 4 cores + migration + prefetch.
    pub both: f64,
}

execmig_obs::impl_to_json!(PrefetchRow {
    name,
    base,
    base_prefetch,
    migration,
    both
});

fn misses_per_kinstr(config: MachineConfig, name: &str, instructions: u64) -> f64 {
    let mut machine = Machine::new(config);
    let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    machine.run(&mut *w, instructions);
    let s = machine.stats();
    s.l2_misses as f64 * 1000.0 / s.instructions.max(1) as f64
}

/// Runs one benchmark through the 2×2 grid at `degree`-deep prefetch.
pub fn run_benchmark(name: &str, degree: u32, instructions: u64) -> PrefetchRow {
    let prefetch = Some(PrefetchConfig { degree });
    PrefetchRow {
        name: name.to_string(),
        base: misses_per_kinstr(MachineConfig::single_core(), name, instructions),
        base_prefetch: misses_per_kinstr(
            MachineConfig {
                prefetch,
                ..MachineConfig::single_core()
            },
            name,
            instructions,
        ),
        migration: misses_per_kinstr(MachineConfig::four_core_migration(), name, instructions),
        both: misses_per_kinstr(
            MachineConfig {
                prefetch,
                ..MachineConfig::four_core_migration()
            },
            name,
            instructions,
        ),
    }
}

/// Renders the grid.
pub fn render(rows: &[PrefetchRow]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "base",
        "prefetch",
        "migration",
        "both",
        "(L2 misses per kinstr)",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            format!("{:.2}", r.base),
            format!("{:.2}", r.base_prefetch),
            format!("{:.2}", r.migration),
            format!("{:.2}", r.both),
            String::new(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_recovers_sequential_benchmarks() {
        // art sweeps arrays: next-line prefetching removes most of its
        // L2 misses even on one core.
        let r = run_benchmark("art", 4, 10_000_000);
        assert!(
            r.base_prefetch < r.base * 0.5,
            "prefetch did nothing for art: {} -> {}",
            r.base,
            r.base_prefetch
        );
    }

    #[test]
    fn migration_beats_prefetch_on_pointer_chasing() {
        // em3d's ring is scattered: next-line prefetching helps only
        // partially (an address-neighbour must survive the thrashing L2
        // until its random traversal slot), while migration removes the
        // bulk of the misses — the paper's §6 conjecture.
        let r = run_benchmark("em3d", 4, 15_000_000);
        assert!(
            r.base_prefetch > r.base * 0.5,
            "next-line prefetch should not fix em3d: {} -> {}",
            r.base,
            r.base_prefetch
        );
        assert!(
            r.migration < r.base_prefetch * 0.5,
            "migration ({}) should beat prefetch ({}) on em3d",
            r.migration,
            r.base_prefetch
        );
    }
}
