//! Figure 3: affinity snapshots of the raw algorithm on `Circular` and
//! `HalfRandom(300)`.
//!
//! "Figure 3 shows the affinity `A_e` for each `e ∈ [0..3999]` on
//! Circular (upper graphs) and HalfRandom(300) (lower graphs) with
//! `|R| = 100`, after 20k, 100k, and 1000k references. … At t=100k on
//! this example, the splitting is optimal, with only one transition
//! every 2000 references for Circular, and one transition every 300
//! references for HalfRandom(300)."

use execmig_core::{Side, Splitter2, SplitterConfig};
use execmig_trace::gen::{CircularWorkload, HalfRandomWorkload};
use execmig_trace::Workload;

/// Which §3.3 stream to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig3Stream {
    /// `Circular`: 0, 1, …, N−1, repeated.
    Circular,
    /// `HalfRandom(m)`.
    HalfRandom {
        /// Burst length `m`.
        m: u64,
    },
}

impl execmig_obs::ToJson for Fig3Stream {
    fn to_json(&self) -> execmig_obs::Json {
        use execmig_obs::Json;
        match self {
            Fig3Stream::Circular => Json::Str("Circular".to_string()),
            Fig3Stream::HalfRandom { m } => {
                Json::object().field("HalfRandom", Json::object().field("m", *m))
            }
        }
    }
}

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Working-set size `N` (paper: 4000).
    pub n: u64,
    /// `|R|` (paper: 100).
    pub r_window: usize,
    /// Snapshot times in references (paper: 20k, 100k, 1000k).
    pub snapshots: Vec<u64>,
    /// The stream.
    pub stream: Fig3Stream,
}

execmig_obs::impl_to_json!(Fig3Config {
    n,
    r_window,
    snapshots,
    stream
});

impl Fig3Config {
    /// The paper's upper-row configuration.
    pub fn circular() -> Self {
        Fig3Config {
            n: 4000,
            r_window: 100,
            snapshots: vec![20_000, 100_000, 1_000_000],
            stream: Fig3Stream::Circular,
        }
    }

    /// The paper's lower-row configuration.
    pub fn half_random() -> Self {
        Fig3Config {
            stream: Fig3Stream::HalfRandom { m: 300 },
            ..Fig3Config::circular()
        }
    }
}

/// One snapshot of the affinity landscape.
#[derive(Debug, Clone)]
pub struct Fig3Snapshot {
    /// References processed when the snapshot was taken.
    pub t: u64,
    /// `A_e` per element (index = element id; `None` = never seen).
    pub affinities: Vec<Option<i64>>,
    /// Fraction of seen elements with non-negative affinity.
    pub positive_fraction: f64,
    /// Steady-state transition rate measured over the window ending at
    /// this snapshot.
    pub transition_rate: f64,
}

execmig_obs::impl_to_json!(Fig3Snapshot {
    t,
    affinities,
    positive_fraction,
    transition_rate
});

/// The full Figure 3 result for one stream.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// The configuration that produced it.
    pub config: Fig3Config,
    /// One snapshot per requested time.
    pub snapshots: Vec<Fig3Snapshot>,
}

execmig_obs::impl_to_json!(Fig3Result { config, snapshots });

/// Runs the experiment.
///
/// # Panics
///
/// Panics if `snapshots` is empty or not strictly increasing.
pub fn run(config: Fig3Config) -> Fig3Result {
    assert!(!config.snapshots.is_empty(), "need at least one snapshot");
    assert!(
        config.snapshots.windows(2).all(|w| w[0] < w[1]),
        "snapshot times must increase"
    );
    let mut workload: Box<dyn Workload> = match config.stream {
        Fig3Stream::Circular => Box::new(CircularWorkload::new(config.n)),
        Fig3Stream::HalfRandom { m } => Box::new(HalfRandomWorkload::new(config.n, m, 0x5eed)),
    };
    // Raw algorithm: no transition filter (§3.2/§3.3), subsets by
    // affinity sign.
    let mut splitter = Splitter2::new(SplitterConfig {
        r_window: config.r_window,
        filter_bits: None,
        ..SplitterConfig::default()
    });
    let mut snapshots = Vec::new();
    let mut t = 0u64;
    let mut window_start_transitions = 0u64;
    let mut window_start_t = 0u64;
    for &at in &config.snapshots {
        while t < at {
            let e = workload.next_access().addr.raw() / 64;
            splitter.on_reference(e);
            t += 1;
        }
        let affinities: Vec<Option<i64>> = (0..config.n).map(|e| splitter.affinity_of(e)).collect();
        let seen: Vec<i64> = affinities.iter().flatten().copied().collect();
        let positive = seen.iter().filter(|&&a| Side::of(a) == Side::Plus).count() as f64;
        let transitions = splitter.stats().transitions;
        let window_refs = (t - window_start_t).max(1);
        snapshots.push(Fig3Snapshot {
            t,
            positive_fraction: if seen.is_empty() {
                0.0
            } else {
                positive / seen.len() as f64
            },
            transition_rate: (transitions - window_start_transitions) as f64 / window_refs as f64,
            affinities,
        });
        window_start_transitions = transitions;
        window_start_t = t;
    }
    Fig3Result { config, snapshots }
}

/// Down-samples a snapshot into `buckets` mean-affinity buckets for
/// plotting in a terminal (`None`-affinity elements are skipped).
pub fn bucket_means(snapshot: &Fig3Snapshot, buckets: usize) -> Vec<f64> {
    assert!(buckets > 0);
    let n = snapshot.affinities.len();
    let per = n.div_ceil(buckets);
    snapshot
        .affinities
        .chunks(per)
        .map(|chunk| {
            let vals: Vec<i64> = chunk.iter().flatten().copied().collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<i64>() as f64 / vals.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_reaches_balanced_split() {
        let result = run(Fig3Config::circular());
        let last = result.snapshots.last().unwrap();
        assert!(
            (0.35..=0.65).contains(&last.positive_fraction),
            "fraction {}",
            last.positive_fraction
        );
        // Paper: optimal splitting ~ one transition every 2000 refs.
        assert!(
            last.transition_rate <= 1.0 / 500.0,
            "late transition rate {}",
            last.transition_rate
        );
    }

    #[test]
    fn half_random_splits_by_halves() {
        let result = run(Fig3Config::half_random());
        let last = result.snapshots.last().unwrap();
        // Elements of each half should be sign-coherent: the lower half
        // takes one sign, the upper half the other.
        let n = result.config.n as usize;
        let frac_of = |range: std::ops::Range<usize>| {
            let vals: Vec<i64> = last.affinities[range].iter().flatten().copied().collect();
            vals.iter().filter(|&&a| a >= 0).count() as f64 / vals.len() as f64
        };
        let lower = frac_of(0..n / 2);
        let upper = frac_of(n / 2..n);
        assert!(
            (lower - upper).abs() > 0.8,
            "halves not separated: lower {lower}, upper {upper}"
        );
        // Transitions about once per burst (1/300), well under 1/100.
        assert!(
            last.transition_rate < 1.0 / 100.0,
            "rate {}",
            last.transition_rate
        );
    }

    #[test]
    fn snapshots_are_cumulative() {
        let cfg = Fig3Config {
            snapshots: vec![1000, 2000],
            ..Fig3Config::circular()
        };
        let result = run(cfg);
        assert_eq!(result.snapshots[0].t, 1000);
        assert_eq!(result.snapshots[1].t, 2000);
    }

    #[test]
    fn bucket_means_shape() {
        let result = run(Fig3Config {
            snapshots: vec![50_000],
            ..Fig3Config::circular()
        });
        let means = bucket_means(&result.snapshots[0], 40);
        assert_eq!(means.len(), 40);
        assert!(means.iter().any(|&m| m != 0.0));
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn rejects_unordered_snapshots() {
        run(Fig3Config {
            snapshots: vec![100, 100],
            ..Fig3Config::circular()
        });
    }
}
