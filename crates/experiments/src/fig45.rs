//! Figures 4 and 5: LRU stack profiles `p1(x)` vs `p4(x)` and the
//! transition frequency, per benchmark.
//!
//! The L1-filtered reference stream feeds (a) a single LRU stack, giving
//! `p1(x)` — the fraction of references with stack depth greater than a
//! cache of `x` bytes — and (b) the 4-way affinity splitter of §3.6
//! (`|R_X|`=128, `|R_Y|`=64, 20-bit filters, unlimited affinity cache,
//! no L2 filtering), which routes each reference to one of four stacks,
//! giving the merged `p4(x)`. "Splittability" shows as `p4` dropping
//! well before `p1`.

use crate::l1filter::L1Filter;
use execmig_cache::{LruStack, StackProfile};
use execmig_core::{Splitter4, Splitter4Config};
use execmig_trace::{suite, LineSize, Workload};

/// Maximum stack depth tracked exactly (lines). 512k lines = 32 MB,
/// twice the largest plotted size.
const MAX_DEPTH: usize = 512 << 10;

/// Configuration of the stack-profile experiment.
#[derive(Debug, Clone)]
pub struct Fig45Config {
    /// Instruction budget per benchmark.
    pub instructions: u64,
    /// Cache line size (the §4.1 line-size study varies this).
    pub line_bytes: u64,
    /// Plotted cache sizes in bytes (x axis; paper: 16 KB…16 MB).
    pub points_bytes: Vec<u64>,
}

execmig_obs::impl_to_json!(Fig45Config {
    instructions,
    line_bytes,
    points_bytes
});

impl Fig45Config {
    /// The paper's setting at a given instruction budget: 64-byte
    /// lines, x from 16 KB to 16 MB doubling.
    pub fn paper(instructions: u64) -> Self {
        let points_bytes = (0..=10).map(|i| (16 << 10) << i).collect();
        Fig45Config {
            instructions,
            line_bytes: 64,
            points_bytes,
        }
    }
}

/// The profile curves of one benchmark.
#[derive(Debug, Clone)]
pub struct Fig45Row {
    /// Benchmark name.
    pub name: String,
    /// L1-filtered references profiled.
    pub references: u64,
    /// `(x_bytes, p1(x), p4(x))` triples.
    pub points: Vec<(u64, f64, f64)>,
    /// Transitions per stack access (the horizontal line in the paper's
    /// graphs).
    pub transition_rate: f64,
    /// Area-style splittability score: mean of `p1(x) − p4(x)` over the
    /// plotted points (positive = splittable).
    pub split_gain: f64,
    /// Peak splittability: the largest `p1(x) − p4(x)` gap over the
    /// plotted points. The paper's visual judgement ("the curves are
    /// quite distinct") corresponds to this peak, which can be large at
    /// one cache size (e.g. health at 512 KB) while the mean is diluted
    /// by sizes where both curves sit at 0 or 1.
    pub split_gain_max: f64,
}

execmig_obs::impl_to_json!(Fig45Row {
    name,
    references,
    points,
    transition_rate,
    split_gain,
    split_gain_max
});

/// Runs one benchmark.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark or the line size is
/// invalid.
pub fn run_benchmark(name: &str, config: &Fig45Config) -> Fig45Row {
    let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    run_workload(name, &mut *w, config)
}

/// Runs any workload through the profile machinery.
pub fn run_workload(name: &str, w: &mut (dyn Workload + Send), config: &Fig45Config) -> Fig45Row {
    let line = LineSize::new(config.line_bytes).expect("valid line size");
    let mut filter = L1Filter::paper(line);
    // p1: one stack. p4: four stacks fed by the 4-way splitter.
    let mut stack1 = LruStack::new();
    let mut profile1 = StackProfile::new(MAX_DEPTH);
    let mut stacks4: Vec<LruStack> = (0..4).map(|_| LruStack::new()).collect();
    let mut profile4 = StackProfile::new(MAX_DEPTH);
    let mut splitter = Splitter4::new(Splitter4Config::default());
    let mut references = 0u64;
    while w.instructions() < config.instructions {
        let access = w.next_access();
        let Some(miss_line) = filter.filter(access) else {
            continue;
        };
        references += 1;
        profile1.record(stack1.access(miss_line.raw()));
        // §4.1: "The address of each cache line missing the L1 is sent
        // to only one of the four LRU stacks" — the quadrant designated
        // *after* processing the reference.
        let q = splitter.on_reference(miss_line.raw());
        profile4.record(stacks4[q.index()].access(miss_line.raw()));
    }
    let points: Vec<(u64, f64, f64)> = config
        .points_bytes
        .iter()
        .map(|&bytes| {
            let lines = bytes / line.bytes();
            (
                bytes,
                profile1.frac_deeper_than(lines),
                profile4.frac_deeper_than(lines),
            )
        })
        .collect();
    let split_gain = if points.is_empty() {
        0.0
    } else {
        points.iter().map(|(_, p1, p4)| p1 - p4).sum::<f64>() / points.len() as f64
    };
    let split_gain_max = points
        .iter()
        .map(|(_, p1, p4)| p1 - p4)
        .fold(0.0f64, f64::max);
    Fig45Row {
        name: name.to_string(),
        references,
        points,
        transition_rate: splitter.stats().transition_rate(),
        split_gain,
        split_gain_max,
    }
}

/// Runs the whole suite.
pub fn run_all(config: &Fig45Config, threads: usize) -> Vec<Fig45Row> {
    run_all_observed(config, threads, crate::runner::Obs::none())
}

/// Runs the whole suite with per-task live observability into `obs`
/// (when given): the runner's claim/done beats show which benchmark
/// each worker is on, and wall-clock spans time each task.
pub fn run_all_observed(
    config: &Fig45Config,
    threads: usize,
    obs: crate::runner::Obs<'_>,
) -> Vec<Fig45Row> {
    crate::runner::parallel_map_observed(suite::names(), threads, obs, |name, _ctx| {
        run_benchmark(name, config)
    })
    .0
}

/// Renders the curves as a table: one row per benchmark and size.
pub fn render(rows: &[Fig45Row]) -> String {
    let mut t =
        crate::report::TextTable::new(&["benchmark", "size", "p1", "p4", "trans-rate", "gain"]);
    for r in rows {
        for &(bytes, p1, p4) in &r.points {
            t.row(&[
                r.name.clone(),
                crate::report::fmt_bytes(bytes),
                format!("{p1:.3}"),
                format!("{p4:.3}"),
                crate::report::fmt_frac(r.transition_rate),
                format!("{:+.3}", r.split_gain),
            ]);
        }
    }
    t.render()
}

/// Renders a compact per-benchmark summary (one row each), in the
/// spirit of eyeballing the paper's 18 graphs.
pub fn render_summary(rows: &[Fig45Row]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "p1@512k",
        "p4@512k",
        "p1@2M",
        "p4@2M",
        "trans-rate",
        "splittable",
    ]);
    for r in rows {
        let at = |bytes: u64| {
            r.points
                .iter()
                .find(|(b, _, _)| *b == bytes)
                .map(|&(_, p1, p4)| (p1, p4))
                .unwrap_or((f64::NAN, f64::NAN))
        };
        let (p1_512k, p4_512k) = at(512 << 10);
        let (p1_2m, p4_2m) = at(2 << 20);
        t.row(&[
            r.name.clone(),
            format!("{p1_512k:.3}"),
            format!("{p4_512k:.3}"),
            format!("{p1_2m:.3}"),
            format!("{p4_2m:.3}"),
            crate::report::fmt_frac(r.transition_rate),
            if r.split_gain_max > 0.10 { "yes" } else { "no" }.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str) -> Fig45Row {
        run_benchmark(name, &Fig45Config::paper(3_000_000))
    }

    #[test]
    fn p_curves_are_monotone_nonincreasing() {
        let r = quick("ammp");
        for w in r.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "p1 rose: {w:?}");
            assert!(w[1].2 <= w[0].2 + 1e-12, "p4 rose: {w:?}");
        }
    }

    #[test]
    fn art_is_splittable() {
        // Figure 4: art's split curve drops far before the normal one.
        // The settled split needs a longer run than the other checks so
        // the warm-up transient stops dominating the profile.
        let r = run_benchmark("art", &Fig45Config::paper(10_000_000));
        assert!(r.split_gain > 0.1, "art gain {}", r.split_gain);
        // p4 must beat p1 at 512 KB (the per-core L2 size).
        let (_, p1, p4) = r.points[5];
        assert!(p4 < p1 - 0.2, "p1 {p1} p4 {p4}");
    }

    #[test]
    fn vpr_is_not_splittable() {
        // Figure 4: "on 164.gzip, 175.vpr … p1(x) and p4(x) are very
        // close whatever value of x".
        let r = quick("vpr");
        assert!(
            r.split_gain.abs() < 0.08,
            "vpr should not split: gain {}",
            r.split_gain
        );
    }

    #[test]
    fn transition_rates_stay_low() {
        // §4.1: "in all cases, the transition frequency remains low" —
        // the worst benchmark (175.vpr) is 1.34% per stack access.
        for name in ["art", "vpr", "gzip", "em3d"] {
            let r = quick(name);
            assert!(
                r.transition_rate < 0.05,
                "{name} transition rate {}",
                r.transition_rate
            );
        }
    }

    #[test]
    fn curves_bounded_by_unit_interval() {
        let r = quick("health");
        for &(_, p1, p4) in &r.points {
            assert!((0.0..=1.0).contains(&p1));
            assert!((0.0..=1.0).contains(&p4));
        }
    }
}
