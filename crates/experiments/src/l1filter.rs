//! The §4.1 L1 filter: 16 KB fully-associative LRU IL1 and DL1 caches
//! in front of the stack-profiling machinery.
//!
//! "We work with a stream of references that is filtered by a 16-Kbyte
//! DL1 cache and a 16-Kbyte IL1 cache, both fully-associative with LRU
//! replacement. Each reference consists of a cache line address,
//! assuming 64-byte lines. … In this experiment, we do not distinguish
//! between loads and stores."

use execmig_cache::FullyAssocLru;
use execmig_trace::{Access, AccessKind, LineAddr, LineSize};

/// Counters of the filter stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1FilterStats {
    /// Accesses seen.
    pub accesses: u64,
    /// IL1 misses emitted.
    pub il1_misses: u64,
    /// DL1 misses emitted (loads and stores alike).
    pub dl1_misses: u64,
}

/// The two fully-associative L1s.
#[derive(Debug, Clone)]
pub struct L1Filter {
    il1: FullyAssocLru,
    dl1: FullyAssocLru,
    line: LineSize,
    stats: L1FilterStats,
}

impl L1Filter {
    /// The paper's filter: 16 KB IL1 + 16 KB DL1 at the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line` exceeds 16 KB (no lines would fit).
    pub fn paper(line: LineSize) -> Self {
        L1Filter::new(16 << 10, line)
    }

    /// A filter with custom L1 capacity.
    pub fn new(capacity_bytes: u64, line: LineSize) -> Self {
        let lines = (capacity_bytes / line.bytes()) as usize;
        assert!(lines > 0, "capacity below one line");
        L1Filter {
            il1: FullyAssocLru::new(lines),
            dl1: FullyAssocLru::new(lines),
            line,
            stats: L1FilterStats::default(),
        }
    }

    /// Feeds one access; returns the missing line address if the access
    /// missed its L1 (i.e. it survives into the filtered stream).
    pub fn filter(&mut self, access: Access) -> Option<LineAddr> {
        self.stats.accesses += 1;
        let line = self.line.line_of(access.addr);
        let hit = match access.kind {
            AccessKind::IFetch => self.il1.access(line.raw()),
            AccessKind::Load | AccessKind::Store => self.dl1.access(line.raw()),
        };
        if hit {
            None
        } else {
            match access.kind {
                AccessKind::IFetch => self.stats.il1_misses += 1,
                _ => self.stats.dl1_misses += 1,
            }
            Some(line)
        }
    }

    /// Filter counters.
    pub fn stats(&self) -> L1FilterStats {
        self.stats
    }

    /// The line size in use.
    pub fn line(&self) -> LineSize {
        self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_trace::Addr;

    #[test]
    fn filters_hits_and_passes_misses() {
        let mut f = L1Filter::paper(LineSize::DEFAULT);
        let a = Access::load(Addr::new(0x1000));
        assert!(f.filter(a).is_some(), "first touch must pass");
        assert!(f.filter(a).is_none(), "hit must be filtered");
        assert_eq!(f.stats().dl1_misses, 1);
        assert_eq!(f.stats().accesses, 2);
    }

    #[test]
    fn instruction_and_data_sides_are_independent() {
        let mut f = L1Filter::paper(LineSize::DEFAULT);
        let addr = Addr::new(0x2000);
        assert!(f.filter(Access::ifetch(addr)).is_some());
        // Same line on the data side still misses: separate caches.
        assert!(f.filter(Access::load(addr)).is_some());
        assert_eq!(f.stats().il1_misses, 1);
        assert_eq!(f.stats().dl1_misses, 1);
    }

    #[test]
    fn stores_and_loads_share_the_dl1() {
        let mut f = L1Filter::paper(LineSize::DEFAULT);
        let addr = Addr::new(0x3000);
        assert!(f.filter(Access::store(addr)).is_some());
        assert!(
            f.filter(Access::load(addr)).is_none(),
            "load after store hits"
        );
    }

    #[test]
    fn capacity_matches_paper() {
        let mut f = L1Filter::paper(LineSize::DEFAULT);
        // 256 lines: a 256-line circular data stream fits exactly.
        for round in 0..3 {
            for i in 0..256u64 {
                let out = f.filter(Access::load(Addr::new(i * 64)));
                if round == 0 {
                    assert!(out.is_some());
                } else {
                    assert!(out.is_none(), "round {round} line {i} missed");
                }
            }
        }
        // One more line overflows it.
        assert!(f.filter(Access::load(Addr::new(256 * 64))).is_some());
        assert!(f.filter(Access::load(Addr::new(0))).is_some());
    }

    #[test]
    fn larger_lines_mean_fewer_frames() {
        let line = LineSize::new(256).unwrap();
        let mut f = L1Filter::paper(line);
        // 16 KB / 256 B = 64 frames; a 65-line loop thrashes.
        for i in 0..65u64 {
            f.filter(Access::load(Addr::new(i * 256)));
        }
        assert!(f.filter(Access::load(Addr::new(0))).is_some());
    }
}
