#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of Michaud
//! (HPCA 2004).
//!
//! Each module implements one experiment as a pure library function
//! returning structured, serialisable results, plus a binary (under
//! `src/bin/`) that prints the same rows/series the paper reports:
//!
//! | paper artefact | module | binary |
//! |---|---|---|
//! | Figure 3 (affinity snapshots on Circular / HalfRandom) | [`fig3`] | `fig3` |
//! | Table 1 (benchmarks, instruction counts, L1 misses) | [`table1`] | `table1` |
//! | Figures 4–5 (LRU stack profiles `p1` vs `p4`) | [`fig45`] | `fig45` |
//! | Table 2 (4-core, 512 KB L2s: misses and migrations) | [`table2`] | `table2` |
//! | §3.3 R-window claims | [`ablations::rwindow`] | `ablation_rwindow` |
//! | §3.4 filter-width arithmetic | [`ablations::filter`] | `ablation_filter` |
//! | §3.5 sampling ratio | [`ablations::sampling`] | `ablation_sampling` |
//! | §4.1 line-size note | [`ablations::linesize`] | `ablation_linesize` |
//! | Fig 2 register vs Definition-1 sign | [`ablations::signmode`] | `ablation_signmode` |
//! | §2.3–§2.4 bus bandwidth, penalty, break-even `P_mig` | [`perf_model`] | `perf_model` |
//! | §6 core-count scaling (2/4/8-way splitting) | [`ext_cores`] | `ext_cores` |
//! | §6 pointer-load filtering | [`ext_pointer`] | `ext_pointer_filter` |
//! | §6 prefetching × migration | [`ext_prefetch`] | `ext_prefetch` |
//! | §6 register-update cache | `execmig_machine::regcache` | `ext_regcache` |
//! | §6 activity migration (thermal) | `execmig_machine::thermal` | `ext_thermal` |
//! | §2.3/§6 branch-predictor broadcast | `execmig_machine::branch` | `ext_branch` |
//! | §5 related work: bus protocols vs migration | [`coherence_compare`] | `coherence_compare` |
//!
//! All binaries accept `--instr N` / `--refs N` style scaling flags so
//! the full suite can run in minutes instead of the paper's 10⁹
//! instructions per benchmark; the defaults are chosen so that every
//! reported effect is already stable.

pub mod ablations;
pub mod coherence_compare;
pub mod diff;
pub mod ext_cores;
pub mod ext_pointer;
pub mod ext_prefetch;
pub mod fig3;
pub mod fig45;
pub mod l1filter;
pub mod manifest;
pub mod perf_model;
pub mod report;
pub mod runner;
pub mod table1;
pub mod table2;
pub mod telemetry;

pub use report::TextTable;
