//! Run-manifest emission shared by every experiment binary.
//!
//! Each binary records *what ran* — config, workload scaling flags,
//! wall clock, crate version, and headline stats — as
//! `manifests/<binary>.json`, so a result directory is reproducible on
//! its own. Opt out with `--no-manifest`; redirect with
//! `--manifest-dir DIR`.

use std::path::PathBuf;

use execmig_obs::{Json, RunManifest, Stopwatch, ToJson};

use crate::report::{arg_flag, arg_value};

/// Collects manifest fields over a binary's run and writes the JSON on
/// [`ManifestEmitter::write`].
#[derive(Debug)]
pub struct ManifestEmitter {
    manifest: RunManifest,
    watch: Stopwatch,
    dir: Option<PathBuf>,
}

impl ManifestEmitter {
    /// Starts the wall clock, honouring `--no-manifest` and
    /// `--manifest-dir DIR` in `args`.
    pub fn start(binary: &str, args: &[String]) -> ManifestEmitter {
        let dir = if arg_flag(args, "--no-manifest") {
            None
        } else {
            Some(PathBuf::from(
                arg_value(args, "--manifest-dir").unwrap_or_else(|| "manifests".to_string()),
            ))
        };
        ManifestEmitter {
            manifest: RunManifest::new(binary),
            watch: Stopwatch::start(),
            dir,
        }
    }

    /// Records the full experiment configuration.
    pub fn config(&mut self, config: &impl ToJson) {
        self.manifest.config = config.to_json();
    }

    /// Records the workload seed.
    pub fn seed(&mut self, seed: u64) {
        self.manifest.workload_seed = Some(seed);
    }

    /// Records the instruction (or reference) budget.
    pub fn budget(&mut self, budget: u64) {
        self.manifest.instruction_budget = Some(budget);
    }

    /// Records headline statistics.
    pub fn stats(&mut self, stats: Json) {
        self.manifest.stats = stats;
    }

    /// Stamps the wall clock and writes `dir/<binary>.json` (unless
    /// suppressed), reporting the path — or the failure — on stderr.
    pub fn write(mut self) {
        let Some(dir) = self.dir.take() else {
            return;
        };
        self.manifest.finish(&self.watch);
        match self.manifest.write_under(&dir) {
            Ok(path) => eprintln!("manifest: {}", path.display()),
            Err(e) => eprintln!("manifest: write failed under {}: {e}", dir.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_manifest_flag_suppresses_output() {
        let em = ManifestEmitter::start("unit", &strings(&["--no-manifest"]));
        assert!(em.dir.is_none());
        em.write(); // must not create anything
        assert!(!std::path::Path::new("manifests/unit.json").exists());
    }

    #[test]
    fn manifest_dir_is_honoured() {
        let dir = std::env::temp_dir().join("execmig-manifest-emitter-test");
        let args = strings(&["--manifest-dir", dir.to_str().unwrap()]);
        let mut em = ManifestEmitter::start("emitter_unit", &args);
        em.config(&Json::object().field("cores", 4u64));
        em.seed(7);
        em.budget(1000);
        em.stats(Json::object().field("rows", 3u64));
        em.write();
        let path = dir.join("emitter_unit.json");
        let body = std::fs::read_to_string(&path).expect("manifest written");
        assert!(body.contains("\"workload_seed\": 7"));
        assert!(body.contains("\"instruction_budget\": 1000"));
        std::fs::remove_file(path).ok();
    }
}
