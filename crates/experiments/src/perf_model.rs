//! §2.3/§2.4/§4.2: update-bus bandwidth, migration penalty, and the
//! break-even `P_mig` per benchmark.
//!
//! The paper's bottom line for 181.mcf: "as long as the migration
//! penalty is less than 60 times the L2-miss/L3-hit penalty, i.e.
//! `P_mig < 60`, we will observe performance gains."

use execmig_machine::{
    bus::paper_estimate_bytes_per_cycle, perf::break_even_pmig, Machine, MachineConfig,
    MigrationProtocol, PerfModel, PipelineConfig, UpdateBusConfig,
};
use execmig_trace::suite;

/// Performance analysis of one benchmark.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Benchmark.
    pub name: String,
    /// Break-even `P_mig` (L2 misses removed per migration); `None`
    /// when the migration run made no migrations.
    pub break_even_pmig: Option<f64>,
    /// Update-bus bytes per instruction in the migration run.
    pub bus_bytes_per_instr: f64,
    /// Estimated update-bus bytes per cycle at IPC 2.
    pub bus_bytes_per_cycle_ipc2: f64,
    /// Speed-up of the migration run at `P_mig` = 10 (> 1 is a win).
    pub speedup_pmig10: f64,
    /// Speed-up at `P_mig` = 60.
    pub speedup_pmig60: f64,
}

execmig_obs::impl_to_json!(PerfRow {
    name,
    break_even_pmig,
    bus_bytes_per_instr,
    bus_bytes_per_cycle_ipc2,
    speedup_pmig10,
    speedup_pmig60
});

/// Runs the per-benchmark analysis.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark(name: &str, instructions: u64) -> PerfRow {
    let mut baseline = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    baseline.run(&mut *w, instructions);
    let mut migration = Machine::new(MachineConfig::four_core_migration());
    let mut w = suite::by_name(name).expect("suite benchmark");
    migration.run(&mut *w, instructions);

    let b = baseline.stats();
    let m = migration.stats();
    let at = |pmig: f64| {
        PerfModel {
            pmig,
            ..PerfModel::default()
        }
        .speedup(b, m)
    };
    PerfRow {
        name: name.to_string(),
        break_even_pmig: break_even_pmig(b, m),
        bus_bytes_per_instr: m.bus.update_bus_bytes() as f64 / m.instructions.max(1) as f64,
        bus_bytes_per_cycle_ipc2: m.bus.bytes_per_cycle(m.instructions, 2.0),
        speedup_pmig10: at(10.0),
        speedup_pmig60: at(60.0),
    }
}

/// Runs the whole suite.
pub fn run_all(instructions: u64, threads: usize) -> Vec<PerfRow> {
    crate::runner::parallel_map(suite::names(), threads, |name| {
        run_benchmark(name, instructions)
    })
}

/// Renders the per-benchmark rows.
pub fn render(rows: &[PerfRow]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "break-even Pmig",
        "bus B/instr",
        "bus B/cyc@ipc2",
        "speedup@Pmig=10",
        "speedup@Pmig=60",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.break_even_pmig
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.1}", r.bus_bytes_per_instr),
            format!("{:.1}", r.bus_bytes_per_cycle_ipc2),
            format!("{:.3}", r.speedup_pmig10),
            format!("{:.3}", r.speedup_pmig60),
        ]);
    }
    t.render()
}

/// The protocol-level migration-penalty summary (§2.2/§2.4).
#[derive(Debug, Clone)]
pub struct PenaltySummary {
    /// Closed-form penalty (drain + broadcast + stages) in cycles.
    pub analytic_cycles: u64,
    /// Mean simulated penalty over many migrations (with mispredicts).
    pub mean_cycles: f64,
    /// The paper's §2.3 bus estimate in bytes/cycle at 4-wide retire.
    pub paper_bus_estimate: f64,
}

execmig_obs::impl_to_json!(PenaltySummary {
    analytic_cycles,
    mean_cycles,
    paper_bus_estimate
});

/// Computes the penalty summary for a pipeline configuration.
pub fn penalty_summary(config: PipelineConfig, samples: u64) -> PenaltySummary {
    let mut protocol = MigrationProtocol::new(config, 0xfee1);
    PenaltySummary {
        analytic_cycles: protocol.analytic_penalty(),
        mean_cycles: protocol.mean_penalty(samples),
        paper_bus_estimate: paper_estimate_bytes_per_cycle(&UpdateBusConfig::default(), 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_benchmark_has_positive_break_even() {
        let r = run_benchmark("art", 8_000_000);
        let be = r.break_even_pmig.expect("art migrates");
        assert!(be > 1.0, "art break-even {be}");
        // At a small P_mig the win must materialise.
        assert!(r.speedup_pmig10 > 1.0, "art speedup {}", r.speedup_pmig10);
    }

    #[test]
    fn degrading_benchmark_never_wins() {
        let r = run_benchmark("bh", 20_000_000);
        if let Some(be) = r.break_even_pmig {
            assert!(be < 1.0, "bh break-even {be} should be below P_mig > 1");
        }
        assert!(r.speedup_pmig60 <= 1.0, "bh speedup {}", r.speedup_pmig60);
    }

    #[test]
    fn bus_traffic_is_plausible() {
        let r = run_benchmark("swim", 2_000_000);
        // ~0.7 reg writes * 9 B ≈ 6-8 B per instruction.
        assert!(
            (3.0..=15.0).contains(&r.bus_bytes_per_instr),
            "bus B/instr {}",
            r.bus_bytes_per_instr
        );
    }

    #[test]
    fn penalty_summary_matches_paper_estimate() {
        let s = penalty_summary(PipelineConfig::default(), 1000);
        assert_eq!(s.analytic_cycles, 21);
        assert!(s.mean_cycles <= s.analytic_cycles as f64);
        assert!((40.0..=50.0).contains(&s.paper_bus_estimate));
    }
}
