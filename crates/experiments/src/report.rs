//! Plain-text table rendering and number formatting for experiment
//! output, in the style of the paper's tables.

use std::fmt::Write as _;

/// A fixed-width text table.
///
/// ```
/// use execmig_experiments::TextTable;
/// let mut t = TextTable::new(&["bench", "ratio"]);
/// t.row(&["art", "0.03"]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("art"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "  {:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats instructions-per-event the way Table 2 does: small values as
/// plain integers, large ones in scientific style (`2.2e6`), absent
/// events as `-`.
pub fn fmt_ipe(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v < 100_000.0 {
        format!("{}", v.round() as u64)
    } else {
        format!("{:.1e}", v)
    }
}

/// Formats a ratio with two decimals (`-` for non-finite).
pub fn fmt_ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "-".to_string()
    }
}

/// Formats a probability/fraction with four decimals.
pub fn fmt_frac(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a byte count as KB/MB with the paper's base-2 units.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        let mb = bytes as f64 / (1 << 20) as f64;
        if (mb - mb.round()).abs() < 1e-9 {
            format!("{}M", mb.round() as u64)
        } else {
            format!("{mb:.1}M")
        }
    } else {
        format!("{}k", bytes >> 10)
    }
}

/// Parses simple `--flag value` command-line options; returns the value
/// for `flag` if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a `--flag N` numeric option with a default.
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    arg_value(args, flag)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got {v:?}"))
        })
        .unwrap_or(default)
}

/// True if `--flag` appears.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--protocol {migration,mesi,dragon}`, defaulting to migration
/// mode (the paper's machine).
///
/// # Panics
///
/// Panics on an unknown protocol name (consistent with [`arg_u64`]'s
/// handling of garbage values).
pub fn arg_protocol(args: &[String]) -> execmig_machine::Protocol {
    arg_value(args, "--protocol")
        .map(|v| {
            execmig_machine::Protocol::parse(&v)
                .unwrap_or_else(|| panic!("--protocol expects migration|mesi|dragon, got {v:?}"))
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["a,b", "c"]);
        t.row(&["x", "y\"z"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"y\"\"z\""));
    }

    #[test]
    fn ipe_formatting() {
        assert_eq!(fmt_ipe(64.4), "64");
        assert_eq!(fmt_ipe(90424.0), "90424");
        assert_eq!(fmt_ipe(2_200_000.0), "2.2e6");
        assert_eq!(fmt_ipe(f64::INFINITY), "-");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(16 << 10), "16k");
        assert_eq!(fmt_bytes(512 << 10), "512k");
        assert_eq!(fmt_bytes(2 << 20), "2M");
        assert_eq!(fmt_bytes(1 << 20 | 1 << 19), "1.5M");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--instr", "500", "--csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_u64(&args, "--instr", 10), 500);
        assert_eq!(arg_u64(&args, "--refs", 7), 7);
        assert!(arg_flag(&args, "--csv"));
        assert!(!arg_flag(&args, "--json"));
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn arg_u64_rejects_garbage() {
        let args: Vec<String> = ["--instr", "abc"].iter().map(|s| s.to_string()).collect();
        arg_u64(&args, "--instr", 1);
    }

    #[test]
    fn protocol_parsing() {
        use execmig_machine::Protocol;
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(arg_protocol(&to_args(&[])), Protocol::MigrationMode);
        assert_eq!(
            arg_protocol(&to_args(&["--protocol", "mesi"])),
            Protocol::Mesi
        );
        assert_eq!(
            arg_protocol(&to_args(&["--protocol", "dragon"])),
            Protocol::Dragon
        );
    }

    #[test]
    #[should_panic(expected = "migration|mesi|dragon")]
    fn protocol_rejects_garbage() {
        let args: Vec<String> = ["--protocol", "moesi"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        arg_protocol(&args);
    }
}
