//! Thread-parallel experiment execution, with span-timer telemetry.

use std::sync::atomic::{AtomicUsize, Ordering};

use execmig_obs::{Json, SpanSet, ToJson};

/// Wall-clock telemetry of one [`parallel_map_timed`] run: per-task
/// spans (which thread ran what, when, for how long) and the derived
/// per-thread utilisation.
#[derive(Debug)]
pub struct RunnerReport {
    /// The recorded spans, one per task.
    pub spans: SpanSet,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock µs from first task start to last task end.
    pub wall_us: u64,
}

impl RunnerReport {
    /// Busy µs per worker thread.
    pub fn thread_busy_micros(&self) -> Vec<u64> {
        self.spans.thread_busy_micros()
    }

    /// Aggregate utilisation: total busy time / (threads × wall).
    pub fn utilisation(&self) -> f64 {
        self.spans.utilisation(self.threads, self.wall_us)
    }

    /// One line per the report, for stderr diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "{} tasks on {} threads in {:.1} ms, {:.0}% utilisation",
            self.spans.spans().len(),
            self.threads,
            self.wall_us as f64 / 1000.0,
            self.utilisation() * 100.0
        )
    }
}

impl ToJson for RunnerReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("threads", self.threads)
            .field("wall_us", self.wall_us)
            .field("utilisation", self.utilisation())
            .field("thread_busy_us", self.thread_busy_micros())
            .field("spans", self.spans.spans())
    }
}

/// Applies `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// ```
/// use execmig_experiments::runner::parallel_map;
/// let out = parallel_map(vec![1, 2, 3, 4], 2, |x| x * 10);
/// assert_eq!(out, vec![10, 20, 30, 40]);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on a worker thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_timed(items, threads, f).0
}

/// Like [`parallel_map`], additionally returning a [`RunnerReport`]
/// with per-task span timers and per-thread utilisation.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on a worker thread.
pub fn parallel_map_timed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, RunnerReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    let spans = SpanSet::new();
    if n == 0 {
        return (
            Vec::new(),
            RunnerReport {
                spans,
                threads,
                wall_us: 0,
            },
        );
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    // Move items into per-index slots the workers can claim.
    let inputs: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|x| std::sync::Mutex::new(Some(x)))
        .collect();
    let outputs: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let spans = &spans;
            let next = &next;
            let inputs = &inputs;
            let outputs = &outputs;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input lock")
                    .take()
                    .expect("item claimed twice");
                let result = spans.time(&format!("task-{i}"), worker, || f(item));
                *outputs[i].lock().expect("output lock") = Some(result);
            });
        }
    });
    let wall_us = spans.wall_micros();
    let results = outputs
        .into_iter()
        .map(|m| m.into_inner().expect("output lock").expect("worker died"))
        .collect();
    (
        results,
        RunnerReport {
            spans,
            threads,
            wall_us,
        },
    )
}

/// A sensible worker count: the machine's parallelism, at most `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn single_thread_works() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![1], 16, |x| x + 1);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn timed_map_reports_spans() {
        let (out, report) = parallel_map_timed((0..20).collect(), 4, |x: u64| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x + 1
        });
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], 8);
        let spans = report.spans.spans();
        assert_eq!(spans.len(), 20, "one span per task");
        assert!(spans.iter().all(|s| s.thread < 4));
        assert!(report.wall_us > 0);
        let u = report.utilisation();
        assert!(u > 0.0 && u <= 1.0, "utilisation {u}");
        assert!(report.summary().contains("20 tasks"));
        // JSON export carries the spans.
        use execmig_obs::ToJson;
        assert!(report.to_json().get("spans").is_some());
    }

    #[test]
    fn default_threads_bounded() {
        assert!(default_threads(4) >= 1);
        assert!(default_threads(4) <= 4);
    }
}
