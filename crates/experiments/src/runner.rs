//! Thread-parallel experiment execution, with span-timer telemetry,
//! optional live-telemetry hub beats, and wall-clock flight-recorder
//! spans.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use execmig_obs::model::sync::Mutex;
use execmig_obs::model::thread;
use execmig_obs::wall::{self, families};
use execmig_obs::{Beat, Hub, HubWorker, Json, Span, SpanSet, ToJson, Wall, WorkerState};

/// Wall-clock telemetry of one [`parallel_map_timed`] run: per-task
/// spans (which thread ran what, when, for how long) and the derived
/// per-thread utilisation.
#[derive(Debug)]
pub struct RunnerReport {
    /// The recorded spans, one per task.
    pub spans: SpanSet,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock µs from first task start to last task end.
    pub wall_us: u64,
}

impl RunnerReport {
    /// Busy µs per worker thread.
    pub fn thread_busy_micros(&self) -> Vec<u64> {
        self.spans.thread_busy_micros()
    }

    /// Aggregate utilisation: total busy time / (threads × wall).
    pub fn utilisation(&self) -> f64 {
        self.spans.utilisation(self.threads, self.wall_us)
    }

    /// One line per the report, for stderr diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "{} tasks on {} threads in {:.1} ms, {:.0}% utilisation",
            self.spans.spans().len(),
            self.threads,
            self.wall_us as f64 / 1000.0,
            self.utilisation() * 100.0
        )
    }
}

impl ToJson for RunnerReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("threads", self.threads)
            .field("wall_us", self.wall_us)
            .field("utilisation", self.utilisation())
            .field("thread_busy_us", self.thread_busy_micros())
            .field("spans", self.spans.spans())
    }
}

/// Applies `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// ```
/// use execmig_experiments::runner::parallel_map;
/// let out = parallel_map(vec![1, 2, 3, 4], 2, |x| x * 10);
/// assert_eq!(out, vec![10, 20, 30, 40]);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on a worker thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_timed(items, threads, f).0
}

/// Like [`parallel_map`], additionally returning a [`RunnerReport`]
/// with per-task span timers and per-thread utilisation.
///
/// Workers pull `(index, item)` pairs off one shared queue and buffer
/// results and span timings locally, so the per-task hot path takes a
/// single short lock (the claim) and allocates nothing; span labels are
/// formatted and merged after the workers join.
///
/// # Panics
///
/// Panics if `threads == 0`. If `f` panics on a worker thread, the
/// remaining workers stop claiming tasks and the *original* panic
/// payload is re-raised on the caller's thread, after the failing task
/// index is printed to stderr.
pub fn parallel_map_timed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, RunnerReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_observed(items, threads, Obs::none(), |item, _| f(item))
}

/// The observability sinks one observed run publishes into: the
/// live-telemetry [`Hub`] (simulated-time progress beats) and the
/// wall-clock [`Wall`] flight recorder (span latencies). Either side
/// may be absent; [`Obs::none`] observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Obs<'a> {
    /// The hub workers publish claim/completion beats into.
    pub hub: Option<&'a Hub>,
    /// The wall workers record task/claim/run/complete spans into.
    pub wall: Option<&'a Wall>,
}

impl<'a> Obs<'a> {
    /// Observe nothing (plain [`parallel_map_timed`] behaviour).
    pub fn none() -> Obs<'static> {
        Obs {
            hub: None,
            wall: None,
        }
    }

    /// Both sinks, each optional.
    pub fn new(hub: Option<&'a Hub>, wall: Option<&'a Wall>) -> Obs<'a> {
        Obs { hub, wall }
    }

    /// Hub beats only (no wall-clock spans).
    pub fn hub_only(hub: &'a Hub) -> Obs<'a> {
        Obs {
            hub: Some(hub),
            wall: None,
        }
    }
}

/// What an observed task needs to publish consistent mid-task beats:
/// the worker's hub handle plus the task coordinates the runner already
/// announced in its claim beat.
#[derive(Debug)]
pub struct ObsCtx<'a> {
    /// The claiming worker's producer handle.
    pub worker: &'a HubWorker,
    /// The task index being executed.
    pub task: u64,
    /// Tasks this worker had completed before this one.
    pub tasks_done: u64,
}

/// Like [`parallel_map_timed`], additionally publishing live progress
/// beats into a telemetry [`Hub`] and wall-clock spans into a [`Wall`]
/// flight recorder (both via `obs`, either optional).
///
/// Each worker thread claims its hub slot once (`hub.worker(w)`) and
/// publishes a `Running` beat on every task claim and completion, and a
/// final `Done` beat when the queue drains — so `/progress` shows which
/// task every worker is on while the sweep runs. The closure receives
/// an [`ObsCtx`] (when telemetry is active) to publish finer-grained
/// beats mid-task, e.g. via `Machine::run_observed`.
///
/// With a wall attached, each worker additionally claims wall slot `w`
/// as its thread context ([`wall::attach`]) and records one
/// `runner/task` span per task — with `runner/claim`, `runner/run`,
/// and `runner/complete` children — parented to whatever span the
/// *calling* thread had open (e.g. the binaries' `sweep` root), so
/// `/spans` and the flamegraph see the full causal tree. Task closures
/// open further spans (e.g. `machine/block`) with no extra plumbing.
///
/// With `obs` as [`Obs::none`], or without the `trace` feature
/// (`Hub::ACTIVE`/`Wall::ACTIVE` false), behaviour and results are
/// exactly [`parallel_map_timed`]'s.
///
/// # Panics
///
/// As [`parallel_map_timed`]: `threads == 0` or a panicking task.
pub fn parallel_map_observed<T, R, F>(
    items: Vec<T>,
    threads: usize,
    obs: Obs<'_>,
    f: F,
) -> (Vec<R>, RunnerReport)
where
    T: Send,
    R: Send,
    F: Fn(T, Option<ObsCtx<'_>>) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let hub = obs.hub;
    // The caller's innermost open span (its sweep root, if any)
    // parents every task span across the worker threads.
    let sweep_root = wall::current_id();
    let n = items.len();
    let spans = SpanSet::new();
    if n == 0 {
        return (
            Vec::new(),
            RunnerReport {
                spans,
                threads,
                wall_us: 0,
            },
        );
    }
    let threads = threads.min(n);
    let queue = Mutex::new(items.into_iter().enumerate());
    // First panic wins: (task index, original payload).
    let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    // Per-worker (task, result) and (task, start_us, duration_us)
    // buffers, in worker order.
    type Timings = Vec<(usize, u64, u64)>;
    let mut per_worker: Vec<(Vec<(usize, R)>, Timings)> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let queue = &queue;
                let spans = &spans;
                let panicked = &panicked;
                let f = &f;
                scope.spawn(move || {
                    // Claim this thread's hub slot (first claimant wins;
                    // SPSC holds because the handle never leaves this
                    // thread). None when telemetry is off or inactive.
                    let hub_worker = if Hub::ACTIVE {
                        hub.and_then(|h| h.worker(w))
                    } else {
                        None
                    };
                    // Claim wall slot w as this thread's span context:
                    // the flight recorder samples this thread's stack
                    // and task spans nest machine-block spans with no
                    // handle threading. False when tracing is off.
                    let wall_attached = match obs.wall {
                        Some(wl) if Wall::ACTIVE => wall::attach(wl, w),
                        _ => false,
                    };
                    let mut tasks_done = 0u64;
                    let mut results = Vec::new();
                    let mut timings = Vec::new();
                    loop {
                        if panicked.lock().expect("panic slot").is_some() {
                            break;
                        }
                        let task_span = wall::span_with_parent(families::TASK, sweep_root);
                        let claim_span = wall::span(families::CLAIM);
                        let claimed = queue.lock().expect("task queue").next();
                        let Some((i, item)) = claimed else {
                            // Nothing was claimed: these spans cover no
                            // task, so discard rather than record them.
                            claim_span.cancel();
                            task_span.cancel();
                            break;
                        };
                        if Hub::ACTIVE {
                            if let Some(hw) = &hub_worker {
                                hw.publish(Beat {
                                    state: WorkerState::Running,
                                    task: i as u64,
                                    tasks_done,
                                    ..Beat::default()
                                });
                            }
                        }
                        drop(claim_span);
                        let start_us = spans.wall_micros();
                        let ctx = hub_worker.as_ref().map(|worker| ObsCtx {
                            worker,
                            task: i as u64,
                            tasks_done,
                        });
                        let outcome = {
                            let _run_span = wall::span(families::RUN);
                            catch_unwind(AssertUnwindSafe(|| f(item, ctx)))
                        };
                        match outcome {
                            Ok(result) => {
                                let _complete_span = wall::span(families::COMPLETE);
                                let duration_us = spans.wall_micros().saturating_sub(start_us);
                                results.push((i, result));
                                timings.push((i, start_us, duration_us));
                                tasks_done += 1;
                                if Hub::ACTIVE {
                                    if let Some(hw) = &hub_worker {
                                        hw.publish(Beat {
                                            state: WorkerState::Running,
                                            task: i as u64,
                                            tasks_done,
                                            ..Beat::default()
                                        });
                                    }
                                }
                            }
                            Err(payload) => {
                                let mut slot = panicked.lock().expect("panic slot");
                                if slot.is_none() {
                                    *slot = Some((i, payload));
                                }
                                break;
                            }
                        }
                    }
                    if Hub::ACTIVE {
                        if let Some(hw) = &hub_worker {
                            hw.publish(Beat {
                                state: WorkerState::Done,
                                tasks_done,
                                ..Beat::idle()
                            });
                        }
                    }
                    if wall_attached {
                        wall::detach();
                    }
                    (results, timings)
                })
            })
            .collect();
        for handle in workers {
            // Workers catch `f`'s panics themselves; join only fails on
            // a runner-internal bug, which the panic slot cannot carry.
            match handle.join() {
                Ok(buffers) => per_worker.push(buffers),
                Err(payload) => resume_unwind(payload),
            }
        }
    });
    if let Some((i, payload)) = panicked.into_inner().expect("panic slot") {
        eprintln!("parallel_map: task {i} panicked, re-raising");
        resume_unwind(payload);
    }
    let wall_us = spans.wall_micros();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (worker, (worker_results, timings)) in per_worker.into_iter().enumerate() {
        for (i, result) in worker_results {
            results[i] = Some(result);
        }
        for (i, start_us, duration_us) in timings {
            spans.record(Span {
                label: format!("task-{i}"),
                thread: worker,
                start_us,
                duration_us,
            });
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every task produced a result"))
        .collect();
    (
        results,
        RunnerReport {
            spans,
            threads,
            wall_us,
        },
    )
}

/// A sensible worker count: the machine's parallelism, at most `cap`.
pub fn default_threads(cap: usize) -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn single_thread_works() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![1], 16, |x| x + 1);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn timed_map_reports_spans() {
        let (out, report) = parallel_map_timed((0..20).collect(), 4, |x: u64| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x + 1
        });
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], 8);
        let spans = report.spans.spans();
        assert_eq!(spans.len(), 20, "one span per task");
        assert!(spans.iter().all(|s| s.thread < 4));
        assert!(report.wall_us > 0);
        let u = report.utilisation();
        assert!(u > 0.0 && u <= 1.0, "utilisation {u}");
        assert!(report.summary().contains("20 tasks"));
        // JSON export carries the spans.
        use execmig_obs::ToJson;
        assert!(report.to_json().get("spans").is_some());
    }

    #[test]
    fn panicking_task_reraises_the_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect(), 4, |x: i32| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = caught.expect_err("a worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original String payload");
        assert_eq!(msg, "boom at 5");
    }

    #[test]
    fn spans_carry_task_labels() {
        let (_, report) = parallel_map_timed((0..6).collect(), 2, |x: u64| x);
        let labels: Vec<String> = report
            .spans
            .spans()
            .iter()
            .map(|s| s.label.clone())
            .collect();
        for i in 0..6 {
            assert!(labels.contains(&format!("task-{i}")), "missing task-{i}");
        }
    }

    #[test]
    fn default_threads_bounded() {
        assert!(default_threads(4) >= 1);
        assert!(default_threads(4) <= 4);
    }
}
