//! Thread-parallel experiment execution.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// ```
/// use execmig_experiments::runner::parallel_map;
/// let out = parallel_map(vec![1, 2, 3, 4], 2, |x| x * 10);
/// assert_eq!(out, vec![10, 20, 30, 40]);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on a worker thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    // Move items into per-index slots the workers can claim.
    let inputs: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|x| std::sync::Mutex::new(Some(x)))
        .collect();
    let outputs: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input lock")
                    .take()
                    .expect("item claimed twice");
                let result = f(item);
                *outputs[i].lock().expect("output lock") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().expect("output lock").expect("worker died"))
        .collect()
}

/// A sensible worker count: the machine's parallelism, at most `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn single_thread_works() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![1], 16, |x| x + 1);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn default_threads_bounded() {
        assert!(default_threads(4) >= 1);
        assert!(default_threads(4) <= 4);
    }
}
