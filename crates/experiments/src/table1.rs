//! Table 1: the benchmark suite with dynamic instruction counts and
//! 16 KB fully-associative L1 miss counts.
//!
//! The paper runs each benchmark for up to 10⁹ instructions and reports
//! instruction and L1-miss counts in millions. The harness scales the
//! instruction budget (default 50 M) and reports both raw counts and
//! per-1000-instruction densities, which are budget-independent and the
//! quantity the rest of the evaluation actually depends on.

use crate::l1filter::L1Filter;
use crate::runner::ObsCtx;
use execmig_obs::{Beat, Hub, WorkerState};
use execmig_trace::{suite, LineSize};

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// SPEC2000 or Olden.
    pub class: String,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// IL1 misses (16 KB fully-associative LRU).
    pub il1_misses: u64,
    /// DL1 misses (16 KB fully-associative LRU; loads and stores).
    pub dl1_misses: u64,
    /// IL1 misses per 1000 instructions.
    pub il1_per_kinstr: f64,
    /// DL1 misses per 1000 instructions.
    pub dl1_per_kinstr: f64,
}

execmig_obs::impl_to_json!(Table1Row {
    name,
    class,
    instructions,
    il1_misses,
    dl1_misses,
    il1_per_kinstr,
    dl1_per_kinstr
});

/// Runs one benchmark through the §4.1 L1 filter.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark(name: &str, instructions: u64) -> Table1Row {
    run_benchmark_observed(name, instructions, None)
}

/// As [`run_benchmark`], publishing a live telemetry beat every
/// [`BEAT_PERIOD_INSTR`](crate::telemetry::BEAT_PERIOD_INSTR) retired
/// instructions when an [`ObsCtx`] is present. The beats only read the
/// workload's instruction counter — results are identical either way.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark_observed(
    name: &str,
    instructions: u64,
    ctx: Option<&ObsCtx<'_>>,
) -> Table1Row {
    let info = suite::info(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut w = suite::by_name(name).expect("suite benchmark");
    let mut filter = L1Filter::paper(LineSize::DEFAULT);
    let mut next_beat = crate::telemetry::BEAT_PERIOD_INSTR;
    while w.instructions() < instructions {
        let access = w.next_access();
        let _ = filter.filter(access);
        if Hub::ACTIVE && w.instructions() >= next_beat {
            if let Some(c) = ctx {
                c.worker.publish(Beat {
                    state: WorkerState::Running,
                    task: c.task,
                    tasks_done: c.tasks_done,
                    instructions: w.instructions(),
                    ..Beat::default()
                });
            }
            next_beat = w.instructions() + crate::telemetry::BEAT_PERIOD_INSTR;
        }
    }
    let stats = filter.stats();
    let instr = w.instructions();
    Table1Row {
        name: name.to_string(),
        class: info.class.to_string(),
        instructions: instr,
        il1_misses: stats.il1_misses,
        dl1_misses: stats.dl1_misses,
        il1_per_kinstr: stats.il1_misses as f64 * 1000.0 / instr as f64,
        dl1_per_kinstr: stats.dl1_misses as f64 * 1000.0 / instr as f64,
    }
}

/// Runs the whole suite on `threads` workers.
pub fn run_all(instructions: u64, threads: usize) -> Vec<Table1Row> {
    run_all_observed(instructions, threads, crate::runner::Obs::none())
}

/// Runs the whole suite with live observability into `obs` (hub beats
/// and/or wall-clock spans, when given).
pub fn run_all_observed(
    instructions: u64,
    threads: usize,
    obs: crate::runner::Obs<'_>,
) -> Vec<Table1Row> {
    crate::runner::parallel_map_observed(suite::names(), threads, obs, |name, ctx| {
        run_benchmark_observed(name, instructions, ctx.as_ref())
    })
    .0
}

/// Renders rows as the paper's Table 1 (plus density columns).
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "class",
        "instr (M)",
        "i-miss (M)",
        "d-miss (M)",
        "i-miss/kinstr",
        "d-miss/kinstr",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.class.clone(),
            format!("{:.0}", r.instructions as f64 / 1e6),
            format!("{:.2}", r.il1_misses as f64 / 1e6),
            format!("{:.2}", r.dl1_misses as f64 / 1e6),
            format!("{:.2}", r.il1_per_kinstr),
            format!("{:.2}", r.dl1_per_kinstr),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn art_is_data_miss_heavy() {
        let r = run_benchmark("art", 2_000_000);
        assert!(r.dl1_per_kinstr > 50.0, "art d-miss {}", r.dl1_per_kinstr);
        assert!(r.il1_per_kinstr < 1.0, "art i-miss {}", r.il1_per_kinstr);
    }

    #[test]
    fn gcc_is_instruction_miss_heavy() {
        let r = run_benchmark("gcc", 2_000_000);
        assert!(r.il1_per_kinstr > 5.0, "gcc i-miss {}", r.il1_per_kinstr);
    }

    #[test]
    fn data_benchmarks_have_negligible_imisses() {
        for name in ["swim", "mcf", "bh", "em3d"] {
            let r = run_benchmark(name, 1_000_000);
            assert!(r.il1_per_kinstr < 0.5, "{name} i-miss {}", r.il1_per_kinstr);
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![run_benchmark("bh", 200_000), run_benchmark("mst", 200_000)];
        let s = render(&rows);
        assert!(s.contains("bh"));
        assert!(s.contains("mst"));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn rejects_unknown() {
        run_benchmark("nope", 1000);
    }
}
