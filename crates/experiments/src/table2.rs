//! Table 2: the four-core 512 KB-L2 experiment.
//!
//! For each benchmark, two runs over the identical reference stream:
//! a single-core baseline (columns "L1 miss" and "L2 miss") and the
//! four-core migration machine (§4.2 configuration: 8k-entry 4-way
//! skewed affinity cache, 25 % sampling, 18-bit transition filters,
//! `|R_X|`=128, `|R_Y|`=64, L2 filtering). All quantities are reported
//! as instructions per event, higher is better; the "ratio" column is
//! the migration run's L2 misses relative to the baseline's (per
//! instruction) — below 1 means execution migration removed L2 misses.

use execmig_machine::{Machine, MachineConfig, Protocol};
use execmig_trace::suite;

use crate::runner::ObsCtx;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// SPEC2000 or Olden.
    pub class: String,
    /// Instructions simulated.
    pub instructions: u64,
    /// Instructions per L1-miss request (baseline).
    pub l1_ipe: f64,
    /// Instructions per L2 miss (baseline single core).
    pub l2_ipe: f64,
    /// Instructions per L2 miss with migrations ("4xL2").
    pub l2x4_ipe: f64,
    /// L2-miss ratio (migration / baseline, per instruction).
    pub ratio: f64,
    /// Instructions per migration.
    pub migration_ipe: f64,
    /// Raw migration count.
    pub migrations: u64,
    /// The ratio the paper reports for the namesake benchmark.
    pub paper_ratio: f64,
    /// Affinity-cache miss rate in the migration run.
    pub affinity_miss_rate: f64,
    /// L2-to-L2 modified-line forwards in the migration run.
    pub l2_forwards: u64,
    /// Update-bus bytes per instruction in the migration run.
    pub bus_bytes_per_instr: f64,
}

execmig_obs::impl_to_json!(Table2Row {
    name,
    class,
    instructions,
    l1_ipe,
    l2_ipe,
    l2x4_ipe,
    ratio,
    migration_ipe,
    migrations,
    paper_ratio,
    affinity_miss_rate,
    l2_forwards,
    bus_bytes_per_instr
});

/// Runs one benchmark at the given instruction budget.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark(name: &str, instructions: u64) -> Table2Row {
    run_benchmark_observed(name, instructions, None)
}

/// As [`run_benchmark`], with the four-core machine running the given
/// L2 coherence backend instead of migration mode's (the single-core
/// baseline is protocol-independent). `Protocol::MigrationMode`
/// reproduces [`run_benchmark`] exactly.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark_with(name: &str, instructions: u64, protocol: Protocol) -> Table2Row {
    run_benchmark_observed_with(name, instructions, protocol, None)
}

/// As [`run_benchmark`], with live telemetry beats from both machine
/// runs when an [`ObsCtx`] is present. The simulation path is identical
/// either way (`Machine::run_observed` only *reads* the counters), so
/// the row — and the underlying `MachineStats` — are bit-identical with
/// telemetry on or off.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark_observed(
    name: &str,
    instructions: u64,
    ctx: Option<&ObsCtx<'_>>,
) -> Table2Row {
    run_benchmark_observed_with(name, instructions, Protocol::MigrationMode, ctx)
}

/// The fully-general form: telemetry *and* protocol selection.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn run_benchmark_observed_with(
    name: &str,
    instructions: u64,
    protocol: Protocol,
    ctx: Option<&ObsCtx<'_>>,
) -> Table2Row {
    let info = suite::info(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));

    let mut baseline = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name(name).expect("suite benchmark");
    match ctx {
        Some(c) => baseline.run_observed(
            &mut *w,
            instructions,
            c.worker,
            c.task,
            c.tasks_done,
            crate::telemetry::BEAT_PERIOD_INSTR,
        ),
        None => baseline.run(&mut *w, instructions),
    }

    let mut migration = Machine::new(MachineConfig {
        protocol,
        ..MachineConfig::four_core_migration()
    });
    let mut w = suite::by_name(name).expect("suite benchmark");
    match ctx {
        Some(c) => migration.run_observed(
            &mut *w,
            instructions,
            c.worker,
            c.task,
            c.tasks_done,
            crate::telemetry::BEAT_PERIOD_INSTR,
        ),
        None => migration.run(&mut *w, instructions),
    }

    let b = baseline.stats();
    let m = migration.stats();
    let base_rate = b.l2_misses as f64 / b.instructions.max(1) as f64;
    let mig_rate = m.l2_misses as f64 / m.instructions.max(1) as f64;
    Table2Row {
        name: name.to_string(),
        class: info.class.to_string(),
        instructions: m.instructions,
        l1_ipe: b.instr_per_l1_miss(),
        l2_ipe: b.instr_per_l2_miss(),
        l2x4_ipe: m.instr_per_l2_miss(),
        ratio: if base_rate > 0.0 {
            mig_rate / base_rate
        } else {
            f64::NAN
        },
        migration_ipe: m.instr_per_migration(),
        migrations: m.migrations,
        paper_ratio: info.paper_ratio,
        affinity_miss_rate: migration
            .controller()
            .map(|c| c.table_stats().miss_rate())
            .unwrap_or(0.0),
        l2_forwards: m.l2_to_l2_forwards,
        bus_bytes_per_instr: m.bus.update_bus_bytes() as f64 / m.instructions.max(1) as f64,
    }
}

/// Runs the whole suite.
pub fn run_all(instructions: u64, threads: usize) -> Vec<Table2Row> {
    run_all_observed(instructions, threads, crate::runner::Obs::none())
}

/// Runs the whole suite with live observability into `obs` (hub beats
/// and/or wall-clock spans, when given).
pub fn run_all_observed(
    instructions: u64,
    threads: usize,
    obs: crate::runner::Obs<'_>,
) -> Vec<Table2Row> {
    run_all_observed_with(instructions, threads, Protocol::MigrationMode, obs)
}

/// Runs the whole suite under the given L2 coherence backend.
pub fn run_all_observed_with(
    instructions: u64,
    threads: usize,
    protocol: Protocol,
    obs: crate::runner::Obs<'_>,
) -> Vec<Table2Row> {
    crate::runner::parallel_map_observed(suite::names(), threads, obs, |name, ctx| {
        run_benchmark_observed_with(name, instructions, protocol, ctx.as_ref())
    })
    .0
}

/// Renders rows as the paper's Table 2, plus the paper's own ratio for
/// comparison.
pub fn render(rows: &[Table2Row]) -> String {
    use crate::report::{fmt_ipe, fmt_ratio};
    let mut t = crate::report::TextTable::new(&[
        "benchmark",
        "L1 miss",
        "L2 miss",
        "4xL2 miss",
        "ratio",
        "paper",
        "migration",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            fmt_ipe(r.l1_ipe),
            fmt_ipe(r.l2_ipe),
            fmt_ipe(r.l2x4_ipe),
            fmt_ratio(r.ratio),
            fmt_ratio(r.paper_ratio),
            fmt_ipe(r.migration_ipe),
        ]);
    }
    t.render()
}

/// Classifies a measured ratio the way the suite metadata does.
pub fn classify(ratio: f64) -> &'static str {
    if !ratio.is_finite() {
        "n/a"
    } else if ratio < 0.9 {
        "improves"
    } else if ratio <= 1.02 {
        "neutral"
    } else {
        "degrades"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Classification smoke tests at a modest budget; the full-budget
    // sweep lives in the integration tests and the `table2` binary.
    #[test]
    fn art_improves() {
        let r = run_benchmark("art", 10_000_000);
        assert!(r.ratio < 0.5, "art ratio {}", r.ratio);
        assert!(r.migrations > 0);
    }

    #[test]
    fn swim_is_neutral() {
        let r = run_benchmark("swim", 5_000_000);
        assert!((0.95..=1.05).contains(&r.ratio), "swim ratio {}", r.ratio);
    }

    #[test]
    fn bh_degrades() {
        let r = run_benchmark("bh", 20_000_000);
        assert!(r.ratio > 1.1, "bh ratio {}", r.ratio);
    }

    #[test]
    fn classify_bands() {
        assert_eq!(classify(0.1), "improves");
        assert_eq!(classify(1.0), "neutral");
        assert_eq!(classify(1.6), "degrades");
        assert_eq!(classify(f64::NAN), "n/a");
    }

    #[test]
    fn protocol_override_reaches_the_machine() {
        let mig = run_benchmark("art", 2_000_000);
        let mesi = run_benchmark_with("art", 2_000_000, Protocol::Mesi);
        // The single-core baseline is protocol-independent...
        assert_eq!(mig.l1_ipe, mesi.l1_ipe);
        assert_eq!(mig.l2_ipe, mesi.l2_ipe);
        // ...but the four-core run is not: invalidations change the
        // miss stream, hence the controller's migration decisions.
        assert_ne!(mig.migrations, mesi.migrations);
    }

    #[test]
    fn render_contains_columns() {
        let rows = vec![run_benchmark("swim", 1_000_000)];
        let s = render(&rows);
        assert!(s.contains("4xL2 miss"));
        assert!(s.contains("swim"));
    }
}
