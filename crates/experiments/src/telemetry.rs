//! `--serve-telemetry <addr>` wiring shared by the experiment binaries.
//!
//! One call turns a plain sweep into an observable one:
//!
//! ```no_run
//! # let args: Vec<String> = std::env::args().collect();
//! use execmig_experiments::runner::parallel_map_observed;
//! use execmig_experiments::telemetry::Telemetry;
//!
//! let telemetry = Telemetry::from_args(&args, 4);
//! let (rows, report) = parallel_map_observed(vec![1u64, 2, 3], 4, telemetry.obs(), |x, _w| x);
//! telemetry.finish();
//! ```
//!
//! While the run is in flight, `curl http://<addr>/progress` shows
//! per-worker state, `/spans` the wall-clock span latencies, `/healthz`
//! the stall watchdog, and `/metrics` the Prometheus series. Without
//! `--serve-telemetry` everything here is inert; without the `trace`
//! feature the endpoints still answer, with empty per-worker data
//! (`Hub::ACTIVE` is false).

use execmig_obs::model::sync::{Arc, Mutex};
use execmig_obs::serve::DEFAULT_MAX_CONNECTIONS;
use execmig_obs::{wall, Hub, HubConfig, MetricsProvider, Registry, TelemetryServer, Wall};

use crate::report::arg_value;
use crate::runner::Obs;

/// Default retired-instruction interval between mid-task beats
/// (`Machine::run_observed` and the sweep loops): frequent enough that
/// `/progress` moves visibly, rare enough that publishing stays deep
/// under the [`execmig_obs::TelemetryBudget`] (a publish is ~100 ns; at
/// one per million instructions the hub costs well below 0.1 %).
pub const BEAT_PERIOD_INSTR: u64 = 1_000_000;

/// A metrics [`Registry`] shareable with the `/metrics` endpoint:
/// the experiment replaces the snapshot as it goes, scrapes read it.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<Registry>>,
}

impl SharedRegistry {
    /// An empty shared registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    /// Replaces the published snapshot.
    pub fn update(&self, registry: Registry) {
        *self.inner.lock().expect("shared registry") = registry;
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Registry {
        self.inner.lock().expect("shared registry").clone()
    }

    /// A provider closure for [`TelemetryServer::start`].
    pub fn provider(&self) -> MetricsProvider {
        let inner = Arc::clone(&self.inner);
        Arc::new(move || inner.lock().expect("shared registry").clone())
    }
}

/// The live-telemetry wiring of one experiment run: a [`Hub`] for the
/// workers, a [`Wall`] flight recorder for wall-clock spans, a
/// [`SharedRegistry`] for `/metrics`, and (when
/// `--serve-telemetry <addr>` was given) the HTTP server itself.
#[derive(Debug)]
pub struct Telemetry {
    hub: Hub,
    wall: Wall,
    metrics: SharedRegistry,
    server: Option<TelemetryServer>,
}

impl Telemetry {
    /// Reads `--serve-telemetry <addr>` from `args` and, if present,
    /// binds the server. `workers` sizes the hub (one slot per worker
    /// thread the sweep will use).
    pub fn from_args(args: &[String], workers: usize) -> Telemetry {
        Telemetry::new(arg_value(args, "--serve-telemetry").as_deref(), workers)
    }

    /// As [`from_args`](Self::from_args), with the address given
    /// directly (`None` = telemetry off).
    pub fn new(addr: Option<&str>, workers: usize) -> Telemetry {
        let hub = Hub::new(HubConfig::with_workers(workers));
        // One wall slot per worker plus a last slot for the driver
        // thread, so the binaries' `sweep` root span has somewhere to
        // record.
        let wall = Wall::with_threads(workers + 1);
        let metrics = SharedRegistry::new();
        let server = addr.and_then(|addr| {
            match TelemetryServer::start_with_wall(
                addr,
                hub.clone(),
                wall.clone(),
                metrics.provider(),
                DEFAULT_MAX_CONNECTIONS,
            ) {
                Ok(server) => {
                    eprintln!(
                        "telemetry: serving /metrics /progress /spans /healthz on http://{}",
                        server.local_addr()
                    );
                    if !Hub::ACTIVE {
                        eprintln!(
                            "telemetry: built without the `trace` feature — \
                             endpoints answer but carry no per-worker beats \
                             (rebuild with `--features trace`)"
                        );
                    }
                    Some(server)
                }
                Err(e) => {
                    eprintln!("telemetry: cannot bind {addr}: {e} — continuing without");
                    None
                }
            }
        });
        if server.is_some() && Wall::ACTIVE {
            // Attach the calling (driver) thread to the spare wall
            // slot: the binaries' sweep root span and any other
            // driver-side spans record there. Workers claim 0..workers
            // inside the runner.
            wall::attach(&wall, workers);
        }
        Telemetry {
            hub,
            wall,
            metrics,
            server,
        }
    }

    /// The hub to hand to
    /// [`parallel_map_observed`](crate::runner::parallel_map_observed);
    /// `None` when no server is up, so unobserved runs skip publishing
    /// entirely.
    pub fn hub(&self) -> Option<&Hub> {
        self.server.is_some().then_some(&self.hub)
    }

    /// The wall-clock flight recorder; `None` when no server is up
    /// (symmetric with [`hub`](Self::hub)).
    pub fn wall(&self) -> Option<&Wall> {
        self.server.is_some().then_some(&self.wall)
    }

    /// Both observability sinks bundled for
    /// [`parallel_map_observed`](crate::runner::parallel_map_observed).
    pub fn obs(&self) -> Obs<'_> {
        Obs::new(self.hub(), self.wall())
    }

    /// The shared registry backing `/metrics`.
    pub fn metrics(&self) -> &SharedRegistry {
        &self.metrics
    }

    /// Whether a server is actually listening.
    pub fn serving(&self) -> bool {
        self.server.is_some()
    }

    /// The server's bound address, when serving.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(TelemetryServer::local_addr)
    }

    /// Prints the hub's and wall's overhead self-accounting (when
    /// serving) and shuts the server down. Call once the sweep is
    /// finished — on the thread that created the telemetry, so the
    /// driver's wall context is detached with it.
    pub fn finish(self) {
        if let Some(server) = self.server {
            let overhead = self.hub.overhead();
            eprintln!(
                "telemetry: {} beats ({} dropped), {} bytes, {} ns publish + {} ns merge",
                overhead.beats,
                overhead.dropped,
                overhead.bytes,
                overhead.publish_ns,
                overhead.merge_ns
            );
            if Wall::ACTIVE {
                let wall_overhead = self.wall.overhead();
                let verdict = self.wall.budget_verdict();
                eprintln!(
                    "telemetry: wall {} spans ({} dropped), {} ns record + {} ns merge \
                     + {} ns sample = {:.4}% of uptime ({})",
                    wall_overhead.spans,
                    wall_overhead.dropped,
                    wall_overhead.record_ns,
                    wall_overhead.merge_ns,
                    wall_overhead.sample_ns,
                    verdict.fraction * 100.0,
                    if verdict.within {
                        "within budget"
                    } else {
                        "OVER BUDGET"
                    }
                );
                wall::detach();
            }
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_the_flag() {
        let args: Vec<String> = vec!["--instr".into(), "1000".into()];
        let t = Telemetry::from_args(&args, 4);
        assert!(!t.serving());
        assert!(t.hub().is_none());
        assert!(t.local_addr().is_none());
        t.finish();
    }

    #[test]
    fn serves_on_an_ephemeral_port() {
        let t = Telemetry::new(Some("127.0.0.1:0"), 2);
        assert!(t.serving());
        assert!(t.hub().is_some());
        let addr = t.local_addr().expect("bound");
        assert_ne!(addr.port(), 0);
        t.finish();
    }

    #[test]
    fn bad_address_degrades_gracefully() {
        let t = Telemetry::new(Some("256.256.256.256:99999"), 2);
        assert!(!t.serving());
        t.finish();
    }

    #[test]
    fn shared_registry_round_trips() {
        let shared = SharedRegistry::new();
        let mut r = Registry::new();
        r.counter("rows_done", 3);
        shared.update(r);
        let provider = shared.provider();
        let got = provider();
        assert_eq!(got, shared.snapshot());
        assert!(execmig_obs::to_prometheus(&got, "x_").contains("x_rows_done 3"));
    }
}
