//! Interleaving model checks for the runner's claim/complete protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg execmig_model"`: the runner's
//! task-queue claim, panic slot, and hub beats then execute on the
//! `execmig-model` virtual scheduler, and these tests assert the
//! protocol's invariants — every task runs exactly once, results keep
//! input order, and no worker's `Done` beat is lost — across every
//! bounded interleaving.

#![cfg(execmig_model)]

use execmig_experiments::runner::{parallel_map, parallel_map_observed, Obs};
use execmig_model::{explore_with, Config};

/// Two workers racing a three-task queue: under every interleaving each
/// task is claimed exactly once and the output keeps input order.
#[test]
fn claims_are_exclusive_and_order_preserved() {
    explore_with(
        Config {
            preemption_bound: Some(2),
            ..Config::default()
        },
        || {
            let out = parallel_map(vec![1u64, 2, 3], 2, |x| x * 10);
            assert_eq!(out, vec![10, 20, 30]);
        },
    );
}

/// The observed variant with a live hub: beats ride the same SPSC rings
/// the hub model test exercises, and after the run every claimed worker
/// slot must show its final `Done` beat — completion is never lost,
/// and completed-task counts conserve the task count.
#[cfg(feature = "trace")]
#[test]
fn done_beats_are_never_lost() {
    use execmig_obs::{Hub, HubConfig, WorkerState};
    explore_with(
        Config {
            preemption_bound: Some(1),
            ..Config::default()
        },
        || {
            let hub = Hub::new(HubConfig {
                workers: 2,
                // Roomy ring: a dropped beat is legal, but this test
                // pins the *lossless* path so the Done beat must land.
                ring_capacity: 16,
                heartbeat_us: 1_000_000,
                stall_beats: 1_000,
            });
            let (out, _report) =
                parallel_map_observed(vec![1u64, 2], 2, Obs::hub_only(&hub), |x, _ctx| x + 1);
            assert_eq!(out, vec![2, 3]);
            let snap = hub.snapshot();
            assert_eq!(snap.overhead.dropped, 0, "ring never filled");
            let mut tasks_done = 0;
            for row in &snap.workers {
                assert_eq!(
                    row.state,
                    WorkerState::Done,
                    "worker {} lost its Done beat",
                    row.worker
                );
                tasks_done += row.tasks_done;
            }
            assert_eq!(tasks_done, 2, "completions conserve the task count");
        },
    );
}
