//! Branch-predictor training over the update bus (§2.3 / §6).
//!
//! §2.3: "In order to train inactive branch predictors, branch
//! instructions are broadcast on the update bus at retirement." §6
//! lists "the use of execution migration to exploit branch prediction
//! tables" as future work. This module quantifies what the broadcast
//! buys: per-core gshare predictors trained either continuously (every
//! retired branch broadcast) or locally only (inactive predictors go
//! stale), measured around migrations.
//!
//! Branch streams are synthetic but structured: a set of static
//! branches, each with its own bias and a global history influence —
//! enough for gshare to learn real patterns and for staleness to hurt.

/// A gshare branch predictor: global history XOR PC indexing a table of
/// 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or above 24.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index width out of range");
        assert!(history_bits <= index_bits, "history longer than index");
        Gshare {
            table: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (self.table.len() - 1) as u64;
        ((pc ^ (self.history & ((1 << self.history_bits) - 1))) & mask) as usize
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains with the resolved outcome and returns whether the
    /// prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let correct = (self.table[i] >= 2) == taken;
        if taken {
            self.table[i] = (self.table[i] + 1).min(3);
        } else {
            self.table[i] = self.table[i].saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }
}

/// A synthetic branch workload: `statics` branches, each biased, with
/// short loop-exit patterns.
#[derive(Debug, Clone)]
pub struct BranchStream {
    statics: u64,
    rng: u64,
}

impl BranchStream {
    /// Creates the stream.
    pub fn new(statics: u64, seed: u64) -> Self {
        assert!(statics > 0, "need at least one branch");
        BranchStream {
            statics,
            rng: seed | 1,
        }
    }

    /// Draws the next `(pc, taken)` pair.
    pub fn next_branch(&mut self) -> (u64, bool) {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let r = self.rng;
        let branch = (r >> 8) % self.statics;
        let pc = 0x40_0000 + branch * 8;
        // Each branch has a deterministic bias derived from its id:
        // most are strongly biased (predictable), some are 70/30.
        let bias_percent = 60 + (branch % 5) * 10; // 60..100
        let taken = (r >> 32) % 100 < bias_percent;
        (pc, taken)
    }
}

/// Result of the broadcast-vs-stale comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchTrainingOutcome {
    /// Mispredict rate right after migrations when inactive predictors
    /// are trained over the update bus.
    pub post_migration_mispredicts_trained: f64,
    /// Mispredict rate right after migrations when inactive predictors
    /// go stale.
    pub post_migration_mispredicts_stale: f64,
    /// Baseline mispredict rate far from migrations.
    pub steady_mispredicts: f64,
}

/// Simulates `cores` predictors under rotation every `rotate` branches,
/// measuring the first `window` branches after each migration.
pub fn compare_training(
    cores: usize,
    statics: u64,
    rotate: u64,
    window: u64,
    rounds: u64,
    seed: u64,
) -> BranchTrainingOutcome {
    assert!(window <= rotate, "window longer than the residency");
    let run = |broadcast: bool| -> (f64, f64) {
        let mut predictors: Vec<Gshare> = (0..cores).map(|_| Gshare::new(12, 8)).collect();
        let mut stream = BranchStream::new(statics, seed);
        let mut post_wrong = 0u64;
        let mut post_total = 0u64;
        let mut steady_wrong = 0u64;
        let mut steady_total = 0u64;
        for round in 0..rounds {
            let active = (round as usize) % cores;
            for i in 0..rotate {
                let (pc, taken) = stream.next_branch();
                // The active predictor always trains; inactive ones
                // train only when the bus broadcasts.
                let mut correct_active = false;
                for (c, p) in predictors.iter_mut().enumerate() {
                    if c == active {
                        correct_active = p.update(pc, taken);
                    } else if broadcast {
                        p.update(pc, taken);
                    }
                }
                // Skip the cold-start round entirely.
                if round == 0 {
                    continue;
                }
                if i < window {
                    post_total += 1;
                    if !correct_active {
                        post_wrong += 1;
                    }
                } else {
                    steady_total += 1;
                    if !correct_active {
                        steady_wrong += 1;
                    }
                }
            }
        }
        (
            post_wrong as f64 / post_total.max(1) as f64,
            steady_wrong as f64 / steady_total.max(1) as f64,
        )
    };
    let (post_trained, steady) = run(true);
    let (post_stale, _) = run(false);
    BranchTrainingOutcome {
        post_migration_mispredicts_trained: post_trained,
        post_migration_mispredicts_stale: post_stale,
        steady_mispredicts: steady,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_biased_branch() {
        let mut p = Gshare::new(10, 4);
        for _ in 0..100 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        let mut correct = 0;
        for _ in 0..100 {
            if p.update(0x1000, true) {
                correct += 1;
            }
        }
        assert_eq!(correct, 100);
    }

    #[test]
    fn broadcast_training_removes_post_migration_penalty() {
        let out = compare_training(4, 500, 5_000, 500, 40, 7);
        // Trained predictors: post-migration ≈ steady state.
        assert!(
            out.post_migration_mispredicts_trained < out.steady_mispredicts * 1.3 + 0.02,
            "{out:?}"
        );
        // Stale predictors pay on arrival: measurably worse.
        assert!(
            out.post_migration_mispredicts_stale > out.post_migration_mispredicts_trained + 0.01,
            "{out:?}"
        );
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = BranchStream::new(100, 3);
        let mut b = BranchStream::new(100, 3);
        for _ in 0..1000 {
            assert_eq!(a.next_branch(), b.next_branch());
        }
    }

    #[test]
    #[should_panic(expected = "history longer")]
    fn rejects_long_history() {
        Gshare::new(8, 10);
    }
}
