//! Update-bus bandwidth accounting (§2.3).
//!
//! Every instruction retiring on the active core is broadcast so
//! inactive cores can mirror the architectural state: register writes
//! (identifier + 64-bit value), stores (address + value), branches
//! (low-order address bits + outcome), plus a few type bits. The paper's
//! example: a 4-wide retire with one store and one branch per cycle
//! needs ≈ 45 bytes/cycle.

/// Per-event byte costs on the update bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateBusConfig {
    /// Bytes per register-writing instruction (6-bit identifier +
    /// 64-bit value + type bits, rounded).
    pub bytes_per_reg_write: u64,
    /// Extra bytes per store (64-bit address + 64-bit value).
    pub bytes_per_store: u64,
    /// Extra bytes per branch (16 low-order address bits + outcome).
    pub bytes_per_branch: u64,
    /// Fraction (per-mille) of instructions that write a register.
    pub reg_write_permille: u64,
    /// Fraction (per-mille) of instructions that are branches.
    pub branch_permille: u64,
}

execmig_obs::impl_to_json!(UpdateBusConfig {
    bytes_per_reg_write,
    bytes_per_store,
    bytes_per_branch,
    reg_write_permille,
    branch_permille,
});

impl Default for UpdateBusConfig {
    fn default() -> Self {
        UpdateBusConfig {
            // 6-bit id + 64-bit value + type bits. The paper's §2.3
            // bundle (4 reg writes + 1 store address + 1 branch address
            // ≈ 45 bytes) treats the store value as one of the
            // broadcast values, so the store's extra cost is its
            // 64-bit address only.
            bytes_per_reg_write: 9,
            bytes_per_store: 8,
            bytes_per_branch: 2, // 16 low-order address bits + outcome
            reg_write_permille: 700,
            branch_permille: 170,
        }
    }
}

/// Accumulated update-bus traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateBusStats {
    /// Bytes broadcast for register updates.
    pub reg_bytes: u64,
    /// Bytes broadcast for stores.
    pub store_bytes: u64,
    /// Bytes broadcast for branches.
    pub branch_bytes: u64,
    /// Bytes broadcast to mirror L1 fills on inactive L1s (one line per
    /// active-L1 miss, over the shared L2-L3 bus).
    pub l1_mirror_bytes: u64,
}

impl UpdateBusStats {
    /// Total bytes over the dedicated update bus (register + store +
    /// branch traffic; L1 mirroring uses the shared L2-L3 bus and is
    /// reported separately).
    pub fn update_bus_bytes(&self) -> u64 {
        self.reg_bytes + self.store_bytes + self.branch_bytes
    }

    /// Mean update-bus bytes per cycle for a run of `instructions`
    /// retired at `ipc` instructions per cycle.
    pub fn bytes_per_cycle(&self, instructions: u64, ipc: f64) -> f64 {
        if instructions == 0 || ipc <= 0.0 {
            return 0.0;
        }
        let cycles = instructions as f64 / ipc;
        self.update_bus_bytes() as f64 / cycles
    }
}

/// The update bus: charges per-instruction broadcast traffic.
#[derive(Debug, Clone, Default)]
pub struct UpdateBus {
    config: UpdateBusConfig,
    stats: UpdateBusStats,
    /// Fixed-point remainders so fractional per-instruction rates are
    /// exact over a run.
    reg_acc: u64,
    branch_acc: u64,
}

impl UpdateBus {
    /// Creates a bus with the given cost model.
    pub fn new(config: UpdateBusConfig) -> Self {
        UpdateBus {
            config,
            ..UpdateBus::default()
        }
    }

    /// Charges the broadcast traffic of `instructions` retired
    /// instructions, of which `stores` are stores.
    pub fn charge_instructions(&mut self, instructions: u64, stores: u64) {
        self.reg_acc += instructions * self.config.reg_write_permille;
        let regs = self.reg_acc / 1000;
        self.reg_acc %= 1000;
        self.stats.reg_bytes += regs * self.config.bytes_per_reg_write;

        self.branch_acc += instructions * self.config.branch_permille;
        let branches = self.branch_acc / 1000;
        self.branch_acc %= 1000;
        self.stats.branch_bytes += branches * self.config.bytes_per_branch;

        self.stats.store_bytes += stores * self.config.bytes_per_store;
    }

    /// Charges one L1-fill mirror broadcast of `line_bytes`.
    pub fn charge_l1_mirror(&mut self, line_bytes: u64) {
        self.stats.l1_mirror_bytes += line_bytes;
    }

    /// Accumulated traffic.
    pub fn stats(&self) -> UpdateBusStats {
        self.stats
    }

    /// The cost model in use.
    pub fn config(&self) -> &UpdateBusConfig {
        &self.config
    }
}

/// The paper's §2.3 back-of-envelope estimate: bytes per cycle for a
/// retire bundle of `width` instructions with one store and one branch.
///
/// ```
/// use execmig_machine::bus::{paper_estimate_bytes_per_cycle, UpdateBusConfig};
/// let b = paper_estimate_bytes_per_cycle(&UpdateBusConfig::default(), 4);
/// // "the bandwidth requirement is approximately 45 bytes per cycle"
/// assert!((40.0..=50.0).contains(&b), "estimate {b}");
/// ```
pub fn paper_estimate_bytes_per_cycle(config: &UpdateBusConfig, width: u64) -> f64 {
    // All `width` instructions broadcast register identifiers + values;
    // one store and one branch add their extra payloads.
    (width * config.bytes_per_reg_write + config.bytes_per_store + config.bytes_per_branch) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_exactly() {
        let mut bus = UpdateBus::new(UpdateBusConfig {
            reg_write_permille: 500,
            branch_permille: 250,
            ..UpdateBusConfig::default()
        });
        bus.charge_instructions(1000, 100);
        let s = bus.stats();
        assert_eq!(s.reg_bytes, 500 * 9);
        assert_eq!(s.branch_bytes, 250 * 2);
        assert_eq!(s.store_bytes, 100 * 8);
    }

    #[test]
    fn fractional_rates_are_exact_over_many_calls() {
        let mut bus = UpdateBus::new(UpdateBusConfig {
            reg_write_permille: 333,
            branch_permille: 111,
            ..UpdateBusConfig::default()
        });
        for _ in 0..1000 {
            bus.charge_instructions(3, 0);
        }
        let s = bus.stats();
        assert_eq!(s.reg_bytes, (3000 * 333 / 1000) * 9);
        assert_eq!(s.branch_bytes, (3000 * 111 / 1000) * 2);
    }

    #[test]
    fn bytes_per_cycle_uses_ipc() {
        let mut bus = UpdateBus::new(UpdateBusConfig::default());
        bus.charge_instructions(4000, 400);
        let s = bus.stats();
        let at_ipc2 = s.bytes_per_cycle(4000, 2.0);
        let at_ipc4 = s.bytes_per_cycle(4000, 4.0);
        assert!((at_ipc4 / at_ipc2 - 2.0).abs() < 1e-9);
        assert_eq!(s.bytes_per_cycle(0, 2.0), 0.0);
    }

    #[test]
    fn mirror_traffic_counted_separately() {
        let mut bus = UpdateBus::new(UpdateBusConfig::default());
        bus.charge_l1_mirror(64);
        bus.charge_l1_mirror(64);
        assert_eq!(bus.stats().l1_mirror_bytes, 128);
        assert_eq!(bus.stats().update_bus_bytes(), 0);
    }
}
