//! Pluggable L2 coherence backends behind the [`CoherenceProtocol`]
//! trait.
//!
//! The paper's §2 migration-mode scheme (write-through mirrored L1s, a
//! store broadcast that keeps at most one modified L2 copy, L2-to-L2
//! forwarding of modified copies only) was previously inlined in
//! `Machine`. This module extracts the protocol-specific parts — what
//! happens on an L2 write hit, how an L2 miss is filled and sourced,
//! what post-store bus work runs, and when a prefetch may fill — so
//! three backends can share the machine skeleton:
//!
//! - [`MigrationMode`]: the paper's scheme, bit-identical to the
//!   pre-trait machine (it never touches the shared bit, so even the
//!   packed cache metadata matches).
//! - [`Mesi`]: a 4-state invalidation protocol (Illinois variant: a
//!   clean remote copy may supply the data cache-to-cache). States map
//!   onto the packed per-line bits as M = modified, E = clean+unshared,
//!   S = clean+shared, I = not resident.
//! - [`Dragon`]: a 4-state update protocol. M = modified+unshared,
//!   Sm = modified+shared (a dirty line may stay shared — "dirty
//!   sharing"), Sc = clean+shared, E = clean+unshared. Writes to shared
//!   lines broadcast a word update (`BusUpd`) instead of invalidating,
//!   and a dirty owner supplies read misses *without* a memory
//!   write-back.
//!
//! ## Bus accounting
//!
//! The architectural update bus (`UpdateBus`: register/store/branch
//! broadcasts plus L1 mirror fills) models the *execution-migration*
//! machinery and is charged identically under every backend — it is the
//! experiment's controlled variable. The protocols differ only in their
//! *L2 coherence* traffic, recorded in three counters that migration
//! mode leaves at zero:
//!
//! - `invalidations`: remote L2 copies killed by MESI's `BusRdX`/
//!   `BusUpgr`.
//! - `coherence_updates`: remote L2 copies refreshed by Dragon's
//!   `BusUpd` (the analogue of migration mode's
//!   `store_broadcast_updates`).
//! - `coherence_bus_bytes`: the extra bus bytes those transactions
//!   move — [`ADDR_BYTES`] per MESI invalidating transaction,
//!   [`ADDR_BYTES`]` + `[`UPDATE_WORD_BYTES`] per Dragon `BusUpd`.
//!   Data-line movement (fills, forwards, write-backs) is already
//!   visible in `l3_fetches`/`l2_to_l2_forwards`/`l3_writebacks` and is
//!   deliberately not double-counted here.

use execmig_cache::Cache;
use execmig_obs::{Json, ToJson};
use execmig_trace::LineAddr;

use crate::stats::MachineStats;

/// Address/control bytes of one coherence bus transaction.
pub const ADDR_BYTES: u64 = 8;
/// Data bytes of one Dragon `BusUpd` word.
pub const UPDATE_WORD_BYTES: u64 = 8;

/// Which L2 coherence backend a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// The paper's §2 migration-mode scheme (the default).
    #[default]
    MigrationMode,
    /// Invalidation-based MESI (Illinois).
    Mesi,
    /// Update-based Dragon.
    Dragon,
}

impl Protocol {
    /// Every backend, in the order reports compare them.
    pub const ALL: [Protocol; 3] = [Protocol::MigrationMode, Protocol::Mesi, Protocol::Dragon];

    /// The flag/JSON spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Protocol::MigrationMode => "migration",
            Protocol::Mesi => "mesi",
            Protocol::Dragon => "dragon",
        }
    }

    /// Parses a `--protocol` flag value.
    pub fn parse(s: &str) -> Option<Protocol> {
        match s {
            "migration" => Some(Protocol::MigrationMode),
            "mesi" => Some(Protocol::Mesi),
            "dragon" => Some(Protocol::Dragon),
            _ => None,
        }
    }
}

impl ToJson for Protocol {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

/// The slice of machine state a coherence hook may touch: the per-core
/// L2s, the optional L3, and the stats block. The L1s, controller,
/// tracer, and update bus stay protocol-independent and remain in
/// `Machine`.
#[derive(Debug)]
pub struct CoherenceCtx<'a> {
    /// Index of the core executing the access.
    pub active: usize,
    /// All per-core L2 caches.
    pub l2: &'a mut [Cache],
    /// The shared L3, if configured.
    pub l3: Option<&'a mut Cache>,
    /// The machine's counters.
    pub stats: &'a mut MachineStats,
}

impl CoherenceCtx<'_> {
    /// Fetches `line` from L3 (or memory beyond a finite L3 on an L3
    /// miss) — the protocol-independent "no cache supplied it" path.
    fn fetch_from_l3(&mut self, line: LineAddr) {
        self.stats.l3_fetches += 1;
        // With a finite L3, a fetch that misses it goes to memory.
        if let Some(l3) = self.l3.as_deref_mut() {
            if !l3.lookup(line) {
                self.stats.l3_misses += 1;
                l3.fill(line, false);
            }
        }
    }

    /// Fills `line` into the active L2 and retires the victim: a
    /// modified victim is written back *and installed* into the finite
    /// L3; a clean victim is dropped silently.
    fn fill_active(&mut self, line: LineAddr, modified: bool) {
        if let Some(evicted) = self.l2[self.active].fill(line, modified) {
            if evicted.modified {
                self.stats.l3_writebacks += 1;
                // The write-back installs the line in the finite L3.
                if let Some(l3) = self.l3.as_deref_mut() {
                    l3.fill(evicted.line, true);
                }
            }
        }
    }
}

/// The protocol-specific hooks of the L2 coherence scheme. `Machine`
/// owns the skeleton (per-access counters, tracer events, controller
/// consultation) and delegates the coherence decisions here.
pub trait CoherenceProtocol {
    /// Serves an L2 miss for `line` on the active core: source the data
    /// (remote L2 or L3), adjust remote copies, fill the active L2 in
    /// the right state, and retire the fill victim. `store` is true for
    /// the write-allocate path.
    fn serve_miss(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, store: bool);

    /// Applies a store that hit the active L2 (the upgrade path).
    /// `frame` is the line's frame index in `ctx.l2[ctx.active]` as
    /// returned by the hit probe (`Cache::lookup_at`), so the hook can
    /// edit the active copy's state without re-scanning the set; it is
    /// valid as long as the hook fills nothing into the active L2.
    fn write_hit(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, frame: usize);

    /// Post-store bus work that runs after every store, hit or miss
    /// (migration mode's §2.3 store broadcast; a no-op for the bus
    /// protocols, which act in [`CoherenceProtocol::write_hit`] /
    /// [`CoherenceProtocol::serve_miss`]).
    fn after_write(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr);

    /// Whether a prefetch may fill `line` into `l2[active]` without a
    /// bus transaction.
    fn may_prefetch(&self, active: usize, l2: &[Cache], line: LineAddr) -> bool;
}

/// The paper's §2 migration-mode backend.
///
/// Reads: a modified remote copy is forwarded L2-to-L2 with a
/// simultaneous write-back and its modified bit reset; clean remote
/// copies "cannot be forwarded … and must be re-fetched from L3".
/// Writes: the store broadcast refreshes every inactive copy and
/// resets its modified bit, so at most one copy is modified. The
/// shared bit is never set, keeping cache metadata bit-identical to
/// the pre-trait machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationMode;

impl CoherenceProtocol for MigrationMode {
    fn serve_miss(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, store: bool) {
        let active = ctx.active;
        let mut forwarded = false;
        for (c, l2) in ctx.l2.iter_mut().enumerate() {
            if c != active && l2.modified(line) == Some(true) {
                l2.set_modified(line, false);
                ctx.stats.l2_to_l2_forwards += 1;
                ctx.stats.l3_writebacks += 1;
                forwarded = true;
                break;
            }
        }
        if !forwarded {
            ctx.fetch_from_l3(line);
        }
        ctx.fill_active(line, store);
    }

    fn write_hit(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, frame: usize) {
        let _ = line;
        ctx.l2[ctx.active].set_modified_at(frame, true);
    }

    fn after_write(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr) {
        // Store broadcast (§2.3): inactive copies are refreshed and
        // their modified bit reset, so at most one copy is modified.
        let active = ctx.active;
        for (c, l2) in ctx.l2.iter_mut().enumerate() {
            if c != active && l2.set_modified(line, false) {
                ctx.stats.store_broadcast_updates += 1;
            }
        }
    }

    fn may_prefetch(&self, active: usize, l2: &[Cache], line: LineAddr) -> bool {
        // Skip lines whose only up-to-date copy is modified remotely:
        // the L3 image is stale until the owner writes back.
        !l2.iter()
            .enumerate()
            .any(|(c, l2)| c != active && l2.modified(line) == Some(true))
    }
}

/// Invalidation-based MESI (Illinois variant).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mesi;

impl CoherenceProtocol for Mesi {
    fn serve_miss(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, store: bool) {
        let active = ctx.active;
        if store {
            // BusRdX: every remote copy is invalidated. A modified
            // owner flushes (forward + simultaneous write-back);
            // failing that, Illinois lets the first clean copy supply
            // the data cache-to-cache.
            let mut supplied = false;
            let mut killed = 0u64;
            for (c, l2) in ctx.l2.iter_mut().enumerate() {
                if c == active {
                    continue;
                }
                if let Some(ev) = l2.invalidate(line) {
                    killed += 1;
                    if ev.modified {
                        ctx.stats.l2_to_l2_forwards += 1;
                        ctx.stats.l3_writebacks += 1;
                        if let Some(l3) = ctx.l3.as_deref_mut() {
                            l3.fill(line, true);
                        }
                        supplied = true;
                    } else if !supplied {
                        ctx.stats.l2_to_l2_forwards += 1;
                        supplied = true;
                    }
                }
            }
            if killed > 0 {
                ctx.stats.invalidations += killed;
                ctx.stats.coherence_bus_bytes += ADDR_BYTES;
            }
            if !supplied {
                ctx.fetch_from_l3(line);
            }
            // The requester ends in M: modified, unshared.
            ctx.fill_active(line, true);
        } else {
            // BusRd: a modified owner does M→S with a flush (forward +
            // write-back); otherwise the first clean copy supplies the
            // data (Illinois). Every surviving copy — including the
            // new one — becomes S.
            let mut supplied = false;
            let mut any_copy = false;
            for (c, l2) in ctx.l2.iter_mut().enumerate() {
                if c == active {
                    continue;
                }
                if !l2.contains(line) {
                    continue;
                }
                any_copy = true;
                if l2.modified(line) == Some(true) {
                    l2.set_modified(line, false);
                    ctx.stats.l2_to_l2_forwards += 1;
                    ctx.stats.l3_writebacks += 1;
                    if let Some(l3) = ctx.l3.as_deref_mut() {
                        l3.fill(line, true);
                    }
                    supplied = true;
                } else if !supplied {
                    ctx.stats.l2_to_l2_forwards += 1;
                    supplied = true;
                }
                l2.set_shared(line, true);
            }
            if !supplied {
                ctx.fetch_from_l3(line);
            }
            ctx.fill_active(line, false);
            // S if anyone else holds it, E otherwise.
            ctx.l2[active].set_shared(line, any_copy);
        }
    }

    fn write_hit(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, frame: usize) {
        let active = ctx.active;
        if ctx.l2[active].shared_at(frame) {
            // BusUpgr: the writer believes the line is shared, so the
            // upgrade goes on the bus even if every sharer has since
            // been silently evicted. Only remote caches are touched, so
            // `frame` stays valid.
            ctx.stats.coherence_bus_bytes += ADDR_BYTES;
            for (c, l2) in ctx.l2.iter_mut().enumerate() {
                if c != active && l2.invalidate(line).is_some() {
                    ctx.stats.invalidations += 1;
                }
            }
            ctx.l2[active].set_shared_at(frame, false);
        }
        // S→M over the bus; E→M and M→M are silent.
        ctx.l2[active].set_modified_at(frame, true);
    }

    fn after_write(&self, _ctx: &mut CoherenceCtx<'_>, _line: LineAddr) {}

    fn may_prefetch(&self, active: usize, l2: &[Cache], line: LineAddr) -> bool {
        // A bus-free prefetch may only fill E, which requires that no
        // other cache holds the line at all.
        !l2.iter()
            .enumerate()
            .any(|(c, l2)| c != active && l2.contains(line))
    }
}

/// Update-based Dragon.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dragon;

impl Dragon {
    /// `BusUpd`: broadcast the written word. Remote copies snarf it
    /// (and a remote owner degrades Sm→Sc); the writer ends Sm if a
    /// sharer remains, M otherwise — the snoop result stands in for
    /// the shared-line bus wire.
    fn bus_update(ctx: &mut CoherenceCtx<'_>, line: LineAddr) {
        let active = ctx.active;
        let mut sharers = false;
        for (c, l2) in ctx.l2.iter_mut().enumerate() {
            if c == active {
                continue;
            }
            if l2.contains(line) {
                l2.set_modified(line, false);
                l2.set_shared(line, true);
                ctx.stats.coherence_updates += 1;
                sharers = true;
            }
        }
        ctx.l2[active].set_modified(line, true);
        if sharers {
            ctx.stats.coherence_bus_bytes += ADDR_BYTES + UPDATE_WORD_BYTES;
            ctx.l2[active].set_shared(line, true);
        } else {
            ctx.l2[active].set_shared(line, false);
        }
    }
}

impl CoherenceProtocol for Dragon {
    fn serve_miss(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, store: bool) {
        let active = ctx.active;
        // BusRd: a dirty owner (M or Sm) supplies the line and stays
        // dirty-shared — no memory write-back (Dragon's hallmark).
        // Clean copies do not supply; memory (L3) does.
        let mut supplied = false;
        let mut any_copy = false;
        for (c, l2) in ctx.l2.iter_mut().enumerate() {
            if c == active {
                continue;
            }
            if l2.contains(line) {
                any_copy = true;
                if !supplied && l2.modified(line) == Some(true) {
                    ctx.stats.l2_to_l2_forwards += 1;
                    supplied = true;
                }
                l2.set_shared(line, true);
            }
        }
        if !supplied {
            ctx.fetch_from_l3(line);
        }
        ctx.fill_active(line, false);
        ctx.l2[active].set_shared(line, any_copy);
        if store {
            if any_copy {
                // Write miss = BusRd + BusUpd: the old owner loses
                // ownership to the writer, which ends Sm.
                Dragon::bus_update(ctx, line);
            } else {
                ctx.l2[active].set_modified(line, true);
            }
        }
    }

    fn write_hit(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, frame: usize) {
        let active = ctx.active;
        if ctx.l2[active].shared_at(frame) {
            Dragon::bus_update(ctx, line);
        } else {
            // E→M / M→M: silent.
            ctx.l2[active].set_modified_at(frame, true);
        }
    }

    fn after_write(&self, _ctx: &mut CoherenceCtx<'_>, _line: LineAddr) {}

    fn may_prefetch(&self, active: usize, l2: &[Cache], line: LineAddr) -> bool {
        // Same rule as MESI: a bus-free fill may only create E.
        !l2.iter()
            .enumerate()
            .any(|(c, l2)| c != active && l2.contains(line))
    }
}

impl CoherenceProtocol for Protocol {
    fn serve_miss(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, store: bool) {
        match self {
            Protocol::MigrationMode => MigrationMode.serve_miss(ctx, line, store),
            Protocol::Mesi => Mesi.serve_miss(ctx, line, store),
            Protocol::Dragon => Dragon.serve_miss(ctx, line, store),
        }
    }

    fn write_hit(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr, frame: usize) {
        match self {
            Protocol::MigrationMode => MigrationMode.write_hit(ctx, line, frame),
            Protocol::Mesi => Mesi.write_hit(ctx, line, frame),
            Protocol::Dragon => Dragon.write_hit(ctx, line, frame),
        }
    }

    fn after_write(&self, ctx: &mut CoherenceCtx<'_>, line: LineAddr) {
        match self {
            Protocol::MigrationMode => MigrationMode.after_write(ctx, line),
            Protocol::Mesi => Mesi.after_write(ctx, line),
            Protocol::Dragon => Dragon.after_write(ctx, line),
        }
    }

    fn may_prefetch(&self, active: usize, l2: &[Cache], line: LineAddr) -> bool {
        match self {
            Protocol::MigrationMode => MigrationMode.may_prefetch(active, l2, line),
            Protocol::Mesi => Mesi.may_prefetch(active, l2, line),
            Protocol::Dragon => Dragon.may_prefetch(active, l2, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_cache::CacheConfig;

    fn two_l2s() -> Vec<Cache> {
        (0..2)
            .map(|_| Cache::new(CacheConfig::set_associative(1 << 10, 2, 64)))
            .collect()
    }

    fn ctx<'a>(
        active: usize,
        l2: &'a mut [Cache],
        stats: &'a mut MachineStats,
    ) -> CoherenceCtx<'a> {
        CoherenceCtx {
            active,
            l2,
            l3: None,
            stats,
        }
    }

    #[test]
    fn protocol_parses_its_own_spelling() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.as_str()), Some(p));
        }
        assert_eq!(Protocol::parse("mosi"), None);
        assert_eq!(Protocol::default(), Protocol::MigrationMode);
    }

    #[test]
    fn mesi_write_miss_invalidates_remote_copies() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(7);
        l2[1].fill(line, false);
        Mesi.serve_miss(&mut ctx(0, &mut l2, &mut stats), line, true);
        assert!(!l2[1].contains(line), "remote copy survived BusRdX");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.coherence_bus_bytes, ADDR_BYTES);
        assert_eq!(l2[0].modified(line), Some(true));
        assert_eq!(l2[0].shared(line), Some(false));
        // Illinois: the clean remote copy supplied the data.
        assert_eq!(stats.l2_to_l2_forwards, 1);
        assert_eq!(stats.l3_fetches, 0);
    }

    #[test]
    fn mesi_read_miss_demotes_modified_owner_to_shared() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(9);
        l2[1].fill(line, true);
        Mesi.serve_miss(&mut ctx(0, &mut l2, &mut stats), line, false);
        assert_eq!(l2[1].modified(line), Some(false), "owner must flush");
        assert_eq!(l2[1].shared(line), Some(true));
        assert_eq!(l2[0].shared(line), Some(true));
        assert_eq!((stats.l2_to_l2_forwards, stats.l3_writebacks), (1, 1));
        assert_eq!(stats.invalidations, 0, "reads never invalidate");
    }

    #[test]
    fn mesi_upgrade_from_shared_invalidates() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(3);
        l2[0].fill(line, false);
        l2[0].set_shared(line, true);
        l2[1].fill(line, false);
        l2[1].set_shared(line, true);
        let frame = l2[0].lookup_at(line).unwrap();
        Mesi.write_hit(&mut ctx(0, &mut l2, &mut stats), line, frame);
        assert!(!l2[1].contains(line));
        assert_eq!(stats.invalidations, 1);
        assert_eq!(l2[0].modified(line), Some(true));
        assert_eq!(l2[0].shared(line), Some(false));
    }

    #[test]
    fn dragon_write_updates_instead_of_invalidating() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(5);
        l2[0].fill(line, false);
        l2[0].set_shared(line, true);
        l2[1].fill(line, true);
        l2[1].set_shared(line, true); // remote owner in Sm
        let frame = l2[0].lookup_at(line).unwrap();
        Dragon.write_hit(&mut ctx(0, &mut l2, &mut stats), line, frame);
        assert!(l2[1].contains(line), "Dragon must not invalidate");
        assert_eq!(l2[1].modified(line), Some(false), "old owner → Sc");
        assert_eq!(l2[0].modified(line), Some(true), "writer → Sm");
        assert_eq!(l2[0].shared(line), Some(true));
        assert_eq!(stats.coherence_updates, 1);
        assert_eq!(stats.coherence_bus_bytes, ADDR_BYTES + UPDATE_WORD_BYTES);
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn dragon_read_miss_shares_dirty_line_without_writeback() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(11);
        l2[1].fill(line, true);
        Dragon.serve_miss(&mut ctx(0, &mut l2, &mut stats), line, false);
        assert_eq!(
            l2[1].modified(line),
            Some(true),
            "owner keeps the dirty line"
        );
        assert_eq!(l2[1].shared(line), Some(true), "owner M → Sm");
        assert_eq!(l2[0].shared(line), Some(true), "requester fills Sc");
        assert_eq!(l2[0].modified(line), Some(false));
        assert_eq!(stats.l2_to_l2_forwards, 1);
        assert_eq!(stats.l3_writebacks, 0, "dirty sharing: no write-back");
        assert_eq!(stats.l3_fetches, 0);
    }

    #[test]
    fn dragon_write_to_last_copy_goes_exclusive_silently() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(13);
        l2[0].fill(line, false);
        l2[0].set_shared(line, true); // stale: the sharer is gone
        let frame = l2[0].lookup_at(line).unwrap();
        Dragon.write_hit(&mut ctx(0, &mut l2, &mut stats), line, frame);
        assert_eq!(l2[0].modified(line), Some(true));
        assert_eq!(l2[0].shared(line), Some(false), "no sharers ⇒ M");
        assert_eq!(stats.coherence_updates, 0);
        assert_eq!(
            stats.coherence_bus_bytes, 0,
            "the snoop found no sharer, so no update word is broadcast"
        );
    }

    #[test]
    fn migration_mode_never_sets_the_shared_bit() {
        let mut l2 = two_l2s();
        let mut stats = MachineStats::default();
        let line = LineAddr::new(17);
        l2[1].fill(line, true);
        MigrationMode.serve_miss(&mut ctx(0, &mut l2, &mut stats), line, false);
        let frame = l2[0].lookup_at(line).unwrap();
        MigrationMode.write_hit(&mut ctx(0, &mut l2, &mut stats), line, frame);
        MigrationMode.after_write(&mut ctx(0, &mut l2, &mut stats), line);
        for cache in &l2 {
            assert!(cache.resident_states().all(|(_, _, shared)| !shared));
        }
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.coherence_updates, 0);
        assert_eq!(stats.coherence_bus_bytes, 0);
    }
}
