//! Machine configuration.

use execmig_cache::{CacheConfig, Indexing};
use execmig_core::ControllerConfig;
use execmig_obs::impl_to_json;
use execmig_trace::LineSize;

use crate::coherence::Protocol;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Index mapping.
    pub indexing: Indexing,
}

impl CacheGeometry {
    /// Converts to a [`CacheConfig`] with the given line size.
    pub fn to_cache_config(self, line_bytes: u64) -> CacheConfig {
        CacheConfig {
            capacity_bytes: self.capacity_bytes,
            ways: self.ways,
            line_bytes,
            indexing: self.indexing,
        }
    }
}

/// Sequential next-line prefetcher configuration (§6 extension: "future
/// research should determine how to best combine prefetching and
/// execution migration").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Lines prefetched past each read miss (into the active L2).
    pub degree: u32,
}

/// Full machine configuration.
///
/// Defaults mirror §4.2: 16 KB 4-way set-associative IL1/DL1, 512 KB
/// 4-way skewed-associative L2 per core, 64-byte lines.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of cores (1, 2, 4 or 8).
    pub cores: usize,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Instruction L1 geometry.
    pub il1: CacheGeometry,
    /// Data L1 geometry.
    pub dl1: CacheGeometry,
    /// Per-core L2 geometry.
    pub l2: CacheGeometry,
    /// Migration controller; `None` pins execution to core 0.
    pub controller: Option<ControllerConfig>,
    /// Sequential prefetcher; `None` disables prefetching.
    pub prefetch: Option<PrefetchConfig>,
    /// Shared L3 geometry; `None` models the paper's setting (the L3
    /// is a latency class, not a capacity constraint — every L2 miss
    /// not served L2-to-L2 hits it).
    pub l3: Option<CacheGeometry>,
    /// L2 coherence backend (default: the paper's migration-mode
    /// scheme).
    pub protocol: Protocol,
}

impl MachineConfig {
    /// The single-core baseline of Table 2 (columns "L2 miss").
    pub fn single_core() -> Self {
        MachineConfig {
            cores: 1,
            line_bytes: 64,
            il1: CacheGeometry {
                capacity_bytes: 16 << 10,
                ways: 4,
                indexing: Indexing::Modulo,
            },
            dl1: CacheGeometry {
                capacity_bytes: 16 << 10,
                ways: 4,
                indexing: Indexing::Modulo,
            },
            l2: CacheGeometry {
                capacity_bytes: 512 << 10,
                ways: 4,
                indexing: Indexing::Skewed,
            },
            controller: None,
            prefetch: None,
            l3: None,
            protocol: Protocol::MigrationMode,
        }
    }

    /// The four-core migration machine of §4.2 (columns "4xL2 miss" and
    /// "migration").
    pub fn four_core_migration() -> Self {
        MachineConfig {
            cores: 4,
            controller: Some(ControllerConfig::paper_4core()),
            ..MachineConfig::single_core()
        }
    }

    /// Checks internal consistency and returns the validated line size.
    ///
    /// # Panics
    ///
    /// Panics if the core count is unsupported, if a controller is
    /// configured whose split degree does not match the core count, or
    /// if the line size is not a power of two.
    pub fn validate(&self) -> LineSize {
        assert!(
            matches!(self.cores, 1 | 2 | 4 | 8),
            "supported core counts: 1, 2, 4, 8"
        );
        let Some(line) = LineSize::new(self.line_bytes) else {
            panic!("line size must be a power of two, got {}", self.line_bytes)
        };
        if let Some(c) = &self.controller {
            assert_eq!(
                c.ways.count(),
                self.cores,
                "controller split degree must match core count"
            );
        }
        if let Some(p) = &self.prefetch {
            assert!(
                (1..=16).contains(&p.degree),
                "prefetch degree must be in [1, 16]"
            );
        }
        line
    }
}

impl_to_json!(CacheGeometry {
    capacity_bytes,
    ways,
    indexing,
});

impl_to_json!(PrefetchConfig { degree });

impl_to_json!(MachineConfig {
    cores,
    line_bytes,
    il1,
    dl1,
    l2,
    controller,
    prefetch,
    l3,
    protocol,
});

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::four_core_migration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let c = MachineConfig::four_core_migration();
        c.validate();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l2.capacity_bytes, 512 << 10);
        assert_eq!(c.l2.indexing, Indexing::Skewed);
        assert_eq!(c.il1.capacity_bytes, 16 << 10);
        let cfg = c.l2.to_cache_config(c.line_bytes);
        assert_eq!(cfg.sets(), 2048);
    }

    #[test]
    fn single_core_has_no_controller() {
        let c = MachineConfig::single_core();
        c.validate();
        assert!(c.controller.is_none());
    }

    #[test]
    #[should_panic(expected = "split degree")]
    fn mismatched_controller_rejected() {
        let c = MachineConfig {
            cores: 2,
            ..MachineConfig::four_core_migration()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "core counts")]
    fn bad_core_count_rejected() {
        MachineConfig {
            cores: 3,
            controller: None,
            ..MachineConfig::single_core()
        }
        .validate();
    }
}
