//! Runtime invariant checkers for the machine-level coherence model.
//!
//! These are the machine half of the numbered invariant catalog (see
//! `DESIGN.md`, "Invariant catalog & static analysis"); the affinity
//! half (I101–I104) lives in `execmig_core::invariants`. Each check is
//! a `debug_assert!` — active in the tier-1 debug test build and in the
//! CI debug leg, compiled out of release binaries.
//!
//! - **I105** — per-line L2 state is legal for the configured
//!   coherence protocol. Under the paper's migration mode this is the
//!   §2.3 rule ("a cache line may be in the modified state in at most
//!   one L2 cache") plus the shared bit staying unused; under MESI,
//!   modified or unshared copies must be chip-wide exclusive; under
//!   Dragon, a single modified owner (M or Sm) may coexist with clean
//!   `Sc` sharers only when marked shared. Use [`check_coherence`] to
//!   dispatch on the protocol.
//! - **I106** — the write-through L1s never hold a modified line
//!   (§2.3: DL1 is write-through, so no dirty state can accumulate
//!   above the L2s; the mirrored-L1 model depends on this).
//! - **I107** — occupancy and migration bookkeeping are consistent:
//!   per-core instruction counters sum to the machine total, and the
//!   machine's migration count agrees with the controller's.

use std::collections::BTreeMap;

use execmig_cache::Cache;

use crate::coherence::Protocol;

/// How many accesses between full cache scans for I105/I106. The O(1)
/// bookkeeping checks of I107 run on every access in debug builds; the
/// scans walk every L2 frame and are sampled to keep debug runs usable.
pub const SCAN_PERIOD: u64 = 65_536;

/// I105: at most one modified copy of each line across the per-core
/// L2s. A violated check names the line and both offending cores.
///
/// This is the migration-mode kernel; it is protocol-agnostic in the
/// weak sense that MESI and Dragon also forbid two modified owners,
/// but it does not check the shared-bit legality those protocols add —
/// use [`check_coherence`] for the full per-protocol check.
pub fn check_single_modified_owner(l2s: &[Cache]) {
    if cfg!(debug_assertions) {
        let mut owner = BTreeMap::new();
        for (core, l2) in l2s.iter().enumerate() {
            for (line, modified) in l2.resident_lines() {
                if !modified {
                    continue;
                }
                if let Some(prev) = owner.insert(line, core) {
                    debug_assert!(
                        false,
                        "I105: line {line:?} modified in L2 {prev} and L2 {core} \
                         (§2.3: at most one modified owner per line)"
                    );
                }
            }
        }
    }
}

/// Per-line view of every L2 copy, gathered for the protocol kernels:
/// `line -> [(core, modified, shared)]`.
#[allow(clippy::type_complexity)]
fn copies_by_line(l2s: &[Cache]) -> BTreeMap<execmig_trace::LineAddr, Vec<(usize, bool, bool)>> {
    let mut by_line: BTreeMap<_, Vec<(usize, bool, bool)>> = BTreeMap::new();
    for (core, l2) in l2s.iter().enumerate() {
        for (line, modified, shared) in l2.resident_states() {
            by_line
                .entry(line)
                .or_default()
                .push((core, modified, shared));
        }
    }
    by_line
}

/// I105 (protocol dispatch): checks that every line's set of L2 copies
/// is a legal state combination for `protocol`.
///
/// - [`Protocol::MigrationMode`] — at most one modified owner, and the
///   shared bit is never set (migration mode does not use it).
/// - [`Protocol::Mesi`] — a modified (`M`) or clean-unshared (`E`)
///   copy must be the only copy chip-wide; multiple copies must all be
///   clean and marked shared (`S`).
/// - [`Protocol::Dragon`] — at most one modified owner (`M`/`Sm`); an
///   unshared copy (`M`/`E`) must be exclusive; a modified copy with
///   sharers must be marked shared (`Sm`), and its co-resident copies
///   must all be clean (`Sc`).
pub fn check_coherence(protocol: Protocol, l2s: &[Cache]) {
    if !cfg!(debug_assertions) {
        return;
    }
    match protocol {
        Protocol::MigrationMode => {
            check_single_modified_owner(l2s);
            for (core, l2) in l2s.iter().enumerate() {
                for (line, _, shared) in l2.resident_states() {
                    debug_assert!(
                        !shared,
                        "I105: migration mode does not use the shared bit, \
                         yet L2 {core} marks line {line:?} shared"
                    );
                }
            }
        }
        Protocol::Mesi => {
            for (line, copies) in copies_by_line(l2s) {
                if copies.len() < 2 {
                    continue;
                }
                for &(core, modified, shared) in &copies {
                    debug_assert!(
                        !modified,
                        "I105/MESI: line {line:?} modified in L2 {core} \
                         with {} other copies (M must be exclusive)",
                        copies.len() - 1
                    );
                    debug_assert!(
                        shared,
                        "I105/MESI: line {line:?} unshared (E) in L2 {core} \
                         with {} other copies (E must be exclusive)",
                        copies.len() - 1
                    );
                }
            }
        }
        Protocol::Dragon => {
            for (line, copies) in copies_by_line(l2s) {
                let owners: Vec<usize> = copies
                    .iter()
                    .filter(|&&(_, modified, _)| modified)
                    .map(|&(core, _, _)| core)
                    .collect();
                debug_assert!(
                    owners.len() <= 1,
                    "I105/Dragon: line {line:?} modified in L2s {owners:?} \
                     (at most one M/Sm owner per line)"
                );
                if copies.len() < 2 {
                    continue;
                }
                for &(core, modified, shared) in &copies {
                    debug_assert!(
                        shared,
                        "I105/Dragon: line {line:?} unshared ({}) in L2 {core} \
                         with {} other copies (M/E must be exclusive)",
                        if modified { "M" } else { "E" },
                        copies.len() - 1
                    );
                }
            }
        }
    }
}

/// I106: the shared write-through IL1/DL1 pair never marks a line
/// modified — dirty state lives only in the L2s.
pub fn check_l1_write_through(il1: &Cache, dl1: &Cache) {
    if cfg!(debug_assertions) {
        for (name, l1) in [("IL1", il1), ("DL1", dl1)] {
            for (line, modified) in l1.resident_lines() {
                debug_assert!(
                    !modified,
                    "I106: {name} holds modified line {line:?} \
                     (§2.3: L1s are write-through, mirrored across cores)"
                );
            }
        }
    }
}

/// I107 (occupancy half): the per-core instruction counters must sum
/// to the machine's total retired-instruction count.
pub fn check_occupancy(core_instructions: &[u64], instructions: u64) {
    let total: u64 = core_instructions.iter().sum();
    debug_assert!(
        total == instructions,
        "I107: per-core instruction counters sum to {total}, \
         machine retired {instructions}"
    );
}

/// I107 (migration half): the machine's migration count must agree
/// with the controller's, and the active core must be a valid
/// destination for the configured split degree.
pub fn check_migration_accounting(
    machine_migrations: u64,
    controller_migrations: u64,
    active: usize,
    cores: usize,
) {
    debug_assert!(
        machine_migrations == controller_migrations,
        "I107: machine counted {machine_migrations} migrations, \
         controller counted {controller_migrations}"
    );
    debug_assert!(
        active < cores,
        "I107: active core {active} out of range for {cores} cores"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use execmig_cache::{CacheConfig, Indexing};
    use execmig_trace::LineAddr;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 1 << 10,
            ways: 2,
            line_bytes: 64,
            indexing: Indexing::Modulo,
        })
    }

    #[test]
    fn accepts_disjoint_modified_lines() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(1), true);
        b.fill(LineAddr::new(2), true);
        b.fill(LineAddr::new(1), false);
        check_single_modified_owner(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "I105")]
    #[cfg(debug_assertions)]
    fn rejects_two_modified_owners() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(7), true);
        b.fill(LineAddr::new(7), true);
        check_single_modified_owner(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "I106")]
    #[cfg(debug_assertions)]
    fn rejects_modified_l1_line() {
        let il1 = small_cache();
        let mut dl1 = small_cache();
        dl1.fill(LineAddr::new(3), true);
        check_l1_write_through(&il1, &dl1);
    }

    #[test]
    #[should_panic(expected = "I107")]
    #[cfg(debug_assertions)]
    fn rejects_occupancy_mismatch() {
        check_occupancy(&[10, 20], 31);
    }

    #[test]
    #[should_panic(expected = "I107")]
    #[cfg(debug_assertions)]
    fn rejects_migration_count_mismatch() {
        check_migration_accounting(3, 4, 0, 4);
    }

    #[test]
    #[should_panic(expected = "shared bit")]
    #[cfg(debug_assertions)]
    fn migration_rejects_shared_bit() {
        let mut a = small_cache();
        a.fill(LineAddr::new(5), false);
        a.set_shared(LineAddr::new(5), true);
        check_coherence(Protocol::MigrationMode, &[a, small_cache()]);
    }

    #[test]
    fn mesi_accepts_clean_shared_copies() {
        let mut a = small_cache();
        let mut b = small_cache();
        for c in [&mut a, &mut b] {
            c.fill(LineAddr::new(9), false);
            c.set_shared(LineAddr::new(9), true);
        }
        check_coherence(Protocol::Mesi, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "I105/MESI")]
    #[cfg(debug_assertions)]
    fn mesi_rejects_modified_copy_with_sharers() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(9), true);
        b.fill(LineAddr::new(9), false);
        b.set_shared(LineAddr::new(9), true);
        check_coherence(Protocol::Mesi, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "I105/MESI")]
    #[cfg(debug_assertions)]
    fn mesi_rejects_exclusive_marked_copy_with_sharers() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(9), false); // E, but a sharer exists
        b.fill(LineAddr::new(9), false);
        b.set_shared(LineAddr::new(9), true);
        check_coherence(Protocol::Mesi, &[a, b]);
    }

    #[test]
    fn dragon_accepts_sm_owner_with_sc_sharers() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(4), true); // Sm
        a.set_shared(LineAddr::new(4), true);
        b.fill(LineAddr::new(4), false); // Sc
        b.set_shared(LineAddr::new(4), true);
        check_coherence(Protocol::Dragon, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "I105/Dragon")]
    #[cfg(debug_assertions)]
    fn dragon_rejects_two_modified_owners() {
        let mut a = small_cache();
        let mut b = small_cache();
        for c in [&mut a, &mut b] {
            c.fill(LineAddr::new(4), true);
            c.set_shared(LineAddr::new(4), true);
        }
        check_coherence(Protocol::Dragon, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "I105/Dragon")]
    #[cfg(debug_assertions)]
    fn dragon_rejects_unshared_copy_with_sharers() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.fill(LineAddr::new(4), true); // claims M (unshared)...
        b.fill(LineAddr::new(4), false); // ...but a second copy exists
        b.set_shared(LineAddr::new(4), true);
        check_coherence(Protocol::Dragon, &[a, b]);
    }

    #[test]
    fn paper_machine_stays_consistent() {
        use crate::{Machine, MachineConfig};
        use execmig_trace::suite;

        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        m.run(&mut *w, 200_000);
        m.check_invariants();
        assert!(m.stats().migrations > 0 || m.stats().l2_misses > 0);
    }
}
