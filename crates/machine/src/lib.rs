#![warn(missing_docs)]

//! The multi-core machine model of Michaud (HPCA 2004) §2.
//!
//! A four-core single-chip processor in *migration mode*: one active core
//! executes a sequential program; the others are powered but idle, their
//! architectural state kept current over a dedicated *update bus*. Each
//! core has private IL1/DL1 and L2 caches; an L3 behind them is shared.
//!
//! The model reproduces the paper's event-level semantics:
//!
//! - **L1 mirroring** (§2.3): every line brought into the active L1 is
//!   broadcast to all inactive L1s, so "the L1 miss frequency is the same
//!   as if execution had not migrated". The model exploits this by
//!   keeping a single (mirrored) L1 pair.
//! - **Migration-mode L2 coherence** (§2.1): the DL1 is write-through
//!   non-write-allocate, the L2 write-back write-allocate; stores set the
//!   *modified* bit on the active L2 and reset it on (still valid,
//!   update-bus-refreshed) inactive copies; at most one copy is modified.
//!   A modified line can be forwarded L2-to-L2 (simultaneously written
//!   back to L3, bit reset); a non-modified line must be re-fetched from
//!   L3. L2-to-L2 misses are *counted as L2 misses* — "we do not
//!   distinguish between L2-to-L2 misses and L3 hits".
//! - **The migration controller** drives migrations from the L1-miss
//!   request stream (`execmig-core`).
//! - **Pluggable L2 coherence** (`coherence`): the migration-mode scheme
//!   above is one backend of a [`CoherenceProtocol`] trait; MESI and
//!   Dragon backends let experiments compare the paper's design against
//!   conventional invalidate and update protocols on the same machine.
//! - **Update-bus accounting** (§2.3) and a **migration-protocol model**
//!   (§2.2) quantify the bandwidth and the penalty `P_mig`.
//!
//! ```
//! use execmig_machine::{Machine, MachineConfig};
//! use execmig_trace::suite;
//!
//! let mut baseline = Machine::new(MachineConfig::single_core());
//! let mut w = suite::by_name("art").unwrap();
//! baseline.run(&mut *w, 200_000);
//! assert!(baseline.stats().l2_misses > 0);
//! ```

pub mod branch;
pub mod bus;
pub mod coherence;
pub mod config;
pub mod invariants;
pub mod machine;
pub mod perf;
pub mod pipeline;
pub mod regcache;
pub mod stats;
pub mod thermal;
pub mod timeline;

pub use bus::{UpdateBus, UpdateBusConfig};
pub use coherence::{CoherenceProtocol, Protocol};
pub use config::{CacheGeometry, MachineConfig, PrefetchConfig};
pub use machine::{Machine, MAX_CORES};
pub use perf::{PerfModel, PerfSummary};
pub use pipeline::{MigrationProtocol, PipelineConfig, ProtocolOutcome};
pub use regcache::{RegCacheConfig, RegCacheStats, RegUpdateCache};
pub use stats::MachineStats;
pub use thermal::{ThermalConfig, ThermalModel};
pub use timeline::TimelineSample;
