//! The machine: cores, caches, coherence, and the run loop.

use execmig_cache::{Cache, FillIfAbsent};
use execmig_core::MigrationController;
use execmig_obs::{
    wall, Beat, EventKind, Histogram, Hub, HubWorker, ProfileConfig, ProfileCumulative, Profiler,
    Registry, Tracer, WorkerState,
};
use execmig_trace::{AccessKind, LineAddr, LineSize, Workload, WorkloadEvent};

use crate::bus::UpdateBus;
use crate::coherence::{CoherenceCtx, CoherenceProtocol, Protocol};
use crate::config::MachineConfig;
use crate::invariants;
use crate::stats::MachineStats;

/// Upper bound on the core count (see [`MachineConfig::validate`]),
/// sizing the per-core occupancy counters.
pub const MAX_CORES: usize = 8;

// The profiler's residency array must hold every core's counter.
const _: () = assert!(MAX_CORES == execmig_obs::profile::PROFILE_MAX_CORES);

/// The multi-core machine in migration mode.
///
/// Because inactive L1s mirror the active one exactly (fills are
/// broadcast, DL1 is write-through so there is no divergent dirty state,
/// and stores are broadcast too — §2.3), the model keeps a *single*
/// IL1/DL1 pair shared by all cores; only the L2s are per-core. This is
/// not an approximation: it is the paper's stated design point ("when
/// execution migrates to another core, the L1 miss frequency is the same
/// as if execution had not migrated").
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    line: LineSize,
    il1: Cache,
    dl1: Cache,
    l2: Vec<Cache>,
    l3: Option<Cache>,
    controller: Option<MigrationController>,
    bus: UpdateBus,
    active: usize,
    stats: MachineStats,
    last_instructions: u64,
    /// Instructions executed on each core (occupancy).
    core_instructions: [u64; MAX_CORES],
    /// Instructions between consecutive migrations.
    inter_arrival: Histogram,
    /// Instruction count at the last migration.
    last_migration_at: u64,
    /// Event tracer (zero-sized no-op without the `trace` feature).
    tracer: Tracer,
    /// Interval profiler (zero-sized no-op without the `trace`
    /// feature).
    profiler: Profiler,
    /// Update-bus instruction charge batched since the last flush
    /// (see [`flush_bus`](Self::flush_bus)).
    pend_bus_instr: u64,
    /// Store count batched since the last bus flush.
    pend_bus_stores: u64,
    /// Line-run memo for the IL1: the line of the previous instruction
    /// fetch, which that fetch left resident — a repeat fetch is a
    /// guaranteed hit and skips the set scan entirely.
    il1_run: Option<LineAddr>,
    /// Line-run memo for the DL1: the line of the previous data access
    /// and whether it is resident (stores do not allocate, so a store
    /// miss memoizes `false`).
    dl1_run: Option<(LineAddr, bool)>,
    /// Store-run memo (migration mode only): the line of the previous
    /// store, which hit the active L2, together with the number of
    /// remote L2 copies its §2.3 store broadcast refreshed. While no
    /// other event touches any L2 (every such path clears this), an
    /// immediately repeated store to the same line is state-idempotent —
    /// the active copy is already modified, the remote copies are
    /// already clean and still resident — so the block fast path replays
    /// it as two counter bumps instead of up to four set scans.
    store_run: Option<(LineAddr, u64)>,
}

impl Machine {
    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig) -> Self {
        let line = config.validate();
        let il1 = Cache::new(config.il1.to_cache_config(config.line_bytes));
        let dl1 = Cache::new(config.dl1.to_cache_config(config.line_bytes));
        let l2 = (0..config.cores)
            .map(|_| Cache::new(config.l2.to_cache_config(config.line_bytes)))
            .collect();
        let l3 = config
            .l3
            .map(|g| Cache::new(g.to_cache_config(config.line_bytes)));
        let controller = config.controller.map(MigrationController::new);
        Machine {
            config,
            line,
            il1,
            dl1,
            l2,
            l3,
            controller,
            bus: UpdateBus::default(),
            active: 0,
            stats: MachineStats::default(),
            last_instructions: 0,
            core_instructions: [0; MAX_CORES],
            inter_arrival: Histogram::new(),
            last_migration_at: 0,
            tracer: Tracer::with_capacity(execmig_obs::tracer::DEFAULT_CAPACITY),
            profiler: Profiler::with_config(ProfileConfig::default()),
            pend_bus_instr: 0,
            pend_bus_stores: 0,
            il1_run: None,
            dl1_run: None,
            store_run: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The core currently executing.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// Switches execution to `core` directly, as an external scheduler
    /// would. Unlike controller-driven migration this does not count in
    /// [`MachineStats::migrations`] — tests and experiments use it to
    /// drive cross-core coherence scenarios on controller-less
    /// machines.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not below the configured core count.
    pub fn activate(&mut self, core: usize) {
        assert!(
            core < self.config.cores,
            "core {core} out of range for {} cores",
            self.config.cores
        );
        // The active/remote split the store-run memo was measured
        // against no longer holds.
        self.store_run = None;
        self.active = core;
    }

    /// Collected statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The migration controller, if configured.
    pub fn controller(&self) -> Option<&MigrationController> {
        self.controller.as_ref()
    }

    /// The (shared) instruction L1. Read-only: differential checkers
    /// compare cache contents without perturbing recency state.
    pub fn il1_cache(&self) -> &Cache {
        &self.il1
    }

    /// The (shared) data L1.
    pub fn dl1_cache(&self) -> &Cache {
        &self.dl1
    }

    /// Core `core`'s private L2.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not below the configured core count.
    pub fn l2_cache(&self, core: usize) -> &Cache {
        &self.l2[core]
    }

    /// The shared L3, when finite.
    pub fn l3_cache(&self) -> Option<&Cache> {
        self.l3.as_ref()
    }

    /// The event tracer. Without the `trace` feature this is a
    /// zero-sized no-op whose `events()` is always empty.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The interval profiler. Without the `trace` feature this is a
    /// zero-sized no-op that records nothing.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Replaces the profiler with one using `config` (fresh, empty).
    /// Without the `trace` feature this is a no-op.
    pub fn set_profile_config(&mut self, config: ProfileConfig) {
        self.profiler = Profiler::with_config(config);
    }

    /// Instructions executed on each core. Only the first
    /// [`MachineConfig::cores`] entries can be non-zero.
    pub fn core_instructions(&self) -> &[u64; MAX_CORES] {
        &self.core_instructions
    }

    /// Distribution of instruction distances between consecutive
    /// migrations (the first migration measures from instruction 0).
    pub fn migration_interarrival(&self) -> &Histogram {
        &self.inter_arrival
    }

    /// The machine's metrics as a named registry: every
    /// [`MachineStats`] counter, per-core occupancy counters, the
    /// migration inter-arrival / filter-dwell / affinity-age
    /// histograms, and controller gauges. Registry snapshots delta
    /// cleanly across windows (see `execmig_obs::Registry`).
    pub fn metrics(&self) -> Registry {
        let s = &self.stats;
        let mut r = Registry::new();
        for (name, v) in [
            ("instructions", s.instructions),
            ("accesses", s.accesses),
            ("ifetches", s.ifetches),
            ("loads", s.loads),
            ("stores", s.stores),
            ("il1_misses", s.il1_misses),
            ("dl1_misses", s.dl1_misses),
            ("l1_requests", s.l1_requests),
            ("l2_accesses", s.l2_accesses),
            ("l2_misses", s.l2_misses),
            ("l2_to_l2_forwards", s.l2_to_l2_forwards),
            ("l3_fetches", s.l3_fetches),
            ("l3_writebacks", s.l3_writebacks),
            ("migrations", s.migrations),
            ("store_broadcast_updates", s.store_broadcast_updates),
            ("prefetch_fills", s.prefetch_fills),
            ("l3_misses", s.l3_misses),
            ("invalidations", s.invalidations),
            ("coherence_updates", s.coherence_updates),
            ("coherence_bus_bytes", s.coherence_bus_bytes),
            ("bus_reg_bytes", s.bus.reg_bytes),
            ("bus_store_bytes", s.bus.store_bytes),
            ("bus_branch_bytes", s.bus.branch_bytes),
            ("bus_l1_mirror_bytes", s.bus.l1_mirror_bytes),
            ("bus_update_bytes", s.bus.update_bus_bytes()),
        ] {
            r.counter(name, v);
        }
        for (c, &instr) in self
            .core_instructions
            .iter()
            .enumerate()
            .take(self.config.cores)
        {
            r.counter(&format!("core{c}_instructions"), instr);
        }
        r.histogram("migration_interarrival_instr", &self.inter_arrival);
        if let Some(mc) = &self.controller {
            r.histogram("filter_dwell_requests", mc.dwell_histogram());
            if let Some(ages) = mc.affinity_age_histogram() {
                r.histogram("affinity_age_at_eviction", ages);
            }
            r.gauge("affinity_table_miss_rate", mc.table_stats().miss_rate());
        }
        r
    }

    /// Runs `workload` until at least `instructions` dynamic
    /// instructions have retired. Can be called repeatedly; the budget
    /// is absolute (total instructions since the workload started).
    ///
    /// The loop is block-stepping: events are buffered
    /// [`BLOCK_EVENTS`](Self::BLOCK_EVENTS) at a time through
    /// `Workload::fill_block` and replayed with
    /// [`run_block`](Self::run_block), whose observable state is
    /// bit-identical to the per-step loop this replaces.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, instructions: u64) {
        let mut buf: Vec<WorkloadEvent> = Vec::with_capacity(Self::BLOCK_EVENTS);
        loop {
            buf.clear();
            if workload.fill_block(&mut buf, instructions, Self::BLOCK_EVENTS) == 0 {
                break;
            }
            self.run_block(&buf);
        }
    }

    /// Like [`run`](Self::run), publishing live progress beats into a
    /// telemetry hub every `beat_period` retired instructions (plus one
    /// final beat when the budget is reached).
    ///
    /// The beats are pure reads of the machine's counters — the
    /// simulation path is byte-for-byte the one [`run`](Self::run)
    /// takes, so [`MachineStats`] stay bit-identical with telemetry on
    /// or off. Without the `trace` feature, `Hub::ACTIVE` is false and
    /// the whole publishing branch is dead code.
    ///
    /// `task` and `tasks_done` identify the caller's unit of work; they
    /// pass through into every beat unchanged (the hub merge keeps the
    /// newest beat per worker, so mixed publishers should agree on
    /// them).
    pub fn run_observed<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        instructions: u64,
        worker: &HubWorker,
        task: u64,
        tasks_done: u64,
        beat_period: u64,
    ) {
        let period = beat_period.max(1);
        let mut next_beat = workload.instructions().saturating_add(period);
        let mut last_beat_at: Option<u64> = None;
        // One wall-clock span per beat-period block, recorded into the
        // calling thread's attached flight-recorder context (a no-op
        // when unattached or without `trace`). The spans are pure
        // timers — the simulation path stays byte-for-byte `run`'s.
        let mut block_span = Some(wall::span(wall::families::MACHINE_BLOCK));
        let mut buf: Vec<WorkloadEvent> = Vec::with_capacity(Self::BLOCK_EVENTS);
        loop {
            // Cap each fill at the next beat boundary so the first
            // event crossing it ends its block: beats then land at
            // exactly the instruction counts the per-step loop
            // produced. Without a hub the cap (like the beats) is dead.
            let until = if Hub::ACTIVE {
                instructions.min(next_beat)
            } else {
                instructions
            };
            buf.clear();
            if workload.fill_block(&mut buf, until, Self::BLOCK_EVENTS) == 0 {
                break;
            }
            self.run_block(&buf);
            let now = self.stats.instructions;
            if Hub::ACTIVE && now >= next_beat {
                worker.publish(self.progress_beat(WorkerState::Running, task, tasks_done));
                last_beat_at = Some(now);
                next_beat = now.saturating_add(period);
                // Close the finished block before opening the next, so
                // the guards nest LIFO on the thread's span stack.
                block_span.take();
                block_span = Some(wall::span(wall::families::MACHINE_BLOCK));
            }
        }
        // Close the trailing block before the final beat is published.
        block_span.take();
        // Final beat — skipped when the last in-loop beat already
        // reported this exact instruction count (a budget landing on a
        // beat boundary), which would double-count the publish in the
        // hub's `HubOverhead` self-accounting.
        if Hub::ACTIVE && last_beat_at != Some(self.stats.instructions) {
            worker.publish(self.progress_beat(WorkerState::Running, task, tasks_done));
        }
    }

    /// The machine's counters as one telemetry [`Beat`] (the live-hub
    /// analogue of [`profile_cumulative`](Self::profile_cumulative)).
    pub fn progress_beat(&self, state: WorkerState, task: u64, tasks_done: u64) -> Beat {
        let (f_value, a_r) = match &self.controller {
            Some(mc) => (mc.filter_value(), mc.ar()),
            None => (0, 0),
        };
        Beat {
            state,
            task,
            tasks_done,
            instructions: self.stats.instructions,
            l2_misses: self.stats.l2_misses,
            migrations: self.stats.migrations,
            f_value,
            a_r,
            bus_bytes: self.stats.bus.update_bus_bytes(),
        }
    }

    /// Processes one access. `instructions_now` is the workload's total
    /// retired-instruction count after this access.
    pub fn step(&mut self, kind: AccessKind, line: LineAddr, instructions_now: u64) {
        self.step_tagged(kind, line, instructions_now, false)
    }

    /// Like [`step`](Self::step), with the access's pointer-load origin
    /// (used by the §6 pointer-filter extension).
    pub fn step_tagged(
        &mut self,
        kind: AccessKind,
        line: LineAddr,
        instructions_now: u64,
        pointer: bool,
    ) {
        self.step_event(kind, line, instructions_now, pointer);
        self.flush_bus();

        // Interval profiling. `Profiler::ACTIVE` is a compile-time
        // constant: without the `trace` feature the whole branch —
        // including the cumulative snapshot — is dead code the
        // optimiser removes, leaving the hot path unchanged.
        if Profiler::ACTIVE && self.profiler.sample_due(instructions_now) {
            let snapshot = self.profile_cumulative();
            self.profiler.record_sample(&snapshot);
        }
    }

    /// Number of events block-stepping run loops buffer per
    /// [`run_block`](Self::run_block) call: large enough to amortize
    /// the per-block work to noise, small enough that a block of
    /// [`WorkloadEvent`]s stays L1-resident.
    pub const BLOCK_EVENTS: usize = 2048;

    /// Replays a buffered block of workload events.
    ///
    /// Observable state after the call — [`MachineStats`], cache
    /// contents, profiles, traces, controller state — is bit-identical
    /// to feeding the same events through
    /// [`step_tagged`](Self::step_tagged) one at a time; the per-event
    /// overheads are hoisted to block boundaries:
    ///
    /// - update-bus instruction/store charging batches into two pending
    ///   counters and lands once per block — and exactly at each
    ///   profiler sample, where bus bytes become observable. The bus's
    ///   fixed-point carry accumulators make split charging
    ///   associative, so every flush point sees identical byte counts
    ///   (see `UpdateBus::charge_instructions`).
    /// - the `stats.bus` mirror copy happens at flush points instead of
    ///   per event.
    /// - the profiler boundary test runs once, against the block's last
    ///   event; only a block that actually contains an interval
    ///   boundary pays the per-event catch-up loop, which records at
    ///   exactly the events the per-step loop would have
    ///   (`sample_due` is monotone in the instruction count).
    ///
    /// Events must carry monotone post-event instruction counts, as
    /// `Workload::fill_block` produces. Blocks of any size work,
    /// including a single event or a slice overshooting a caller's
    /// instruction budget.
    pub fn run_block(&mut self, events: &[WorkloadEvent]) {
        let Some(last) = events.last() else {
            return;
        };
        if Profiler::ACTIVE && self.profiler.sample_due(last.instructions) {
            // An interval boundary falls inside this block: take the
            // exact catch-up path so samples land on the same events,
            // and see the same flushed bus bytes, as per-step runs.
            for e in events {
                self.step_event(
                    e.access.kind,
                    self.line.line_of(e.access.addr),
                    e.instructions,
                    e.access.pointer,
                );
                if Profiler::ACTIVE && self.profiler.sample_due(e.instructions) {
                    self.flush_bus();
                    let snapshot = self.profile_cumulative();
                    self.profiler.record_sample(&snapshot);
                }
            }
        } else {
            // Lean loop: no interval boundary falls inside this block
            // (`sample_due` is monotone), so nothing observes the stats
            // mid-block. Per-kind event counts accumulate in locals and
            // land once at the end; `stats.instructions` and the
            // per-core occupancy sync only when a miss path needs them
            // (tracer timestamps, controller consultation) and at the
            // block boundary. Totals at every flush point are identical
            // to the per-step loop's.
            let mut ifetches = 0u64;
            let mut loads = 0u64;
            let mut stores = 0u64;
            let mut l2_accesses = 0u64;
            let mut broadcast_updates = 0u64;
            #[cfg(debug_assertions)]
            let accesses_base = self.stats.accesses;
            #[cfg(debug_assertions)]
            let mut seen = 0u64;
            for e in events {
                let line = self.line.line_of(e.access.addr);
                match e.access.kind {
                    AccessKind::IFetch => {
                        ifetches += 1;
                        // Same memos as `step_event`; see the proofs
                        // there.
                        if self.il1_run != Some(line) {
                            self.il1_run = Some(line);
                            if !self.il1.access(line, false).hit {
                                self.sync_to(e.instructions);
                                self.il1_miss(line, e.access.pointer);
                            }
                        }
                    }
                    AccessKind::Load => {
                        loads += 1;
                        if self.dl1_run != Some((line, true)) {
                            if !self.dl1.access(line, false).hit {
                                self.sync_to(e.instructions);
                                self.dl1_load_miss(line, e.access.pointer);
                            }
                            self.dl1_run = Some((line, true));
                        }
                    }
                    AccessKind::Store => {
                        stores += 1;
                        // Store-run fast path: the previous store hit
                        // this same line (so did the DL1 memo), and no
                        // L2 has been touched since — the repeat is
                        // state-idempotent (see the `store_run` field)
                        // and its only observable effect is the two
                        // counters.
                        let fast = match self.store_run {
                            Some((l, k)) if l == line && self.dl1_run == Some((line, true)) => {
                                l2_accesses += 1;
                                broadcast_updates += k;
                                true
                            }
                            _ => false,
                        };
                        if !fast {
                            self.sync_to(e.instructions);
                            self.store_event(line);
                        }
                    }
                }
                #[cfg(debug_assertions)]
                {
                    seen += 1;
                    self.sync_to(e.instructions);
                    invariants::check_occupancy(
                        &self.core_instructions[..self.config.cores],
                        self.stats.instructions,
                    );
                    if (accesses_base + seen).is_multiple_of(invariants::SCAN_PERIOD) {
                        self.check_invariants();
                    }
                }
            }
            self.sync_to(last.instructions);
            self.stats.accesses += events.len() as u64;
            self.stats.ifetches += ifetches;
            self.stats.loads += loads;
            self.stats.stores += stores;
            self.stats.l2_accesses += l2_accesses;
            self.stats.store_broadcast_updates += broadcast_updates;
            // Every store — hit or miss, fast or slow — broadcasts its
            // value on the update bus (§2.3); the byte charge lands at
            // the flush below.
            self.pend_bus_stores += stores;
        }
        self.flush_bus();
    }

    /// Brings `stats.instructions`, the active core's occupancy
    /// counter, and the pending update-bus instruction charge up to
    /// `now`. Idempotent at a given `now`; every path that makes those
    /// counters observable (miss paths, block boundaries, per-step
    /// stepping) syncs first.
    #[inline]
    fn sync_to(&mut self, now: u64) {
        let delta = now.saturating_sub(self.last_instructions);
        self.last_instructions = now;
        self.stats.instructions = now;
        self.core_instructions[self.active] += delta;
        self.pend_bus_instr += delta;
    }

    /// Flushes batched update-bus charges and re-mirrors `stats.bus`.
    ///
    /// Every path that makes bus bytes observable — profile snapshots,
    /// step/block boundaries — runs this first, so batching is
    /// invisible: `UpdateBus::charge_instructions` carries fractional
    /// bytes in fixed-point accumulators, which makes one batched
    /// charge byte-identical to the per-event charges it replaces.
    fn flush_bus(&mut self) {
        if self.pend_bus_instr != 0 || self.pend_bus_stores != 0 {
            self.bus
                .charge_instructions(self.pend_bus_instr, self.pend_bus_stores);
            self.pend_bus_instr = 0;
            self.pend_bus_stores = 0;
        }
        self.stats.bus = self.bus.stats();
    }

    /// The per-event datapath shared by [`step_tagged`](Self::step_tagged)
    /// and [`run_block`](Self::run_block): everything except the bus
    /// flush and the profiler boundary check, which those callers
    /// amortize.
    #[inline]
    fn step_event(&mut self, kind: AccessKind, line: LineAddr, instructions_now: u64, pointer: bool) {
        // Charge update-bus traffic for the instructions retired since
        // the previous access (register/branch broadcast) and any
        // store. Charges accumulate and land on the bus at the next
        // flush point (see `flush_bus`).
        self.sync_to(instructions_now);
        self.pend_bus_stores += u64::from(kind.is_store());

        self.stats.accesses += 1;
        match kind {
            AccessKind::IFetch => {
                self.stats.ifetches += 1;
                // Line-run memo: a repeat fetch of the previous fetch's
                // line is a guaranteed hit (that fetch left the line
                // resident, and only fetches touch the IL1), so the set
                // scan — and its LRU restamp — is skipped. Skipped
                // restamps never change a victim: between two touches
                // of one line no other stamp enters this cache, so the
                // relative stamp order every LRU decision reads is
                // preserved exactly.
                if self.il1_run != Some(line) {
                    // Fused probe: one set scan decides hit-or-fill.
                    if !self.il1.access(line, false).hit {
                        self.il1_miss(line, pointer);
                    }
                    self.il1_run = Some(line);
                }
            }
            AccessKind::Load => {
                self.stats.loads += 1;
                // Same line-run memo as the IL1; `true` means the run's
                // line is resident (a store miss memoizes `false`, and
                // a load then takes the full fill path below).
                if self.dl1_run != Some((line, true)) {
                    if !self.dl1.access(line, false).hit {
                        self.dl1_load_miss(line, pointer);
                    }
                    self.dl1_run = Some((line, true));
                }
            }
            AccessKind::Store => {
                self.stats.stores += 1;
                self.store_event(line);
            }
        }

        #[cfg(debug_assertions)]
        {
            invariants::check_occupancy(
                &self.core_instructions[..self.config.cores],
                self.stats.instructions,
            );
            if self.stats.accesses.is_multiple_of(invariants::SCAN_PERIOD) {
                self.check_invariants();
            }
        }
    }

    /// IL1 miss tail: counters, the §2.3 mirror fill broadcast, and the
    /// L2 read request. The caller has already synced
    /// `stats.instructions` to the event.
    #[inline]
    fn il1_miss(&mut self, line: LineAddr, pointer: bool) {
        self.stats.il1_misses += 1;
        self.bus.charge_l1_mirror(self.line.bytes());
        self.tracer
            .emit(self.stats.instructions, EventKind::BusBroadcast);
        self.l1_request(line, pointer);
    }

    /// DL1 load-miss tail; same shape as [`il1_miss`](Self::il1_miss).
    #[inline]
    fn dl1_load_miss(&mut self, line: LineAddr, pointer: bool) {
        self.stats.dl1_misses += 1;
        self.bus.charge_l1_mirror(self.line.bytes());
        self.tracer
            .emit(self.stats.instructions, EventKind::BusBroadcast);
        self.l1_request(line, pointer);
    }

    /// The store datapath below the per-kind counter: resolves the DL1
    /// (write-through, non-write-allocate) and forwards the write to
    /// the active L2. The caller has already synced
    /// `stats.instructions` to the event.
    #[inline]
    fn store_event(&mut self, line: LineAddr) {
        // Write-through, non-write-allocate DL1: a hit updates
        // the line in place, a miss does not allocate — but the
        // write always goes to the L2 (which *is*
        // write-allocate, "write allocation in L2 may be
        // triggered even upon DL1 hits").
        let dl1_hit = match self.dl1_run {
            Some((l, present)) if l == line => present,
            _ => {
                let hit = self.dl1.lookup(line);
                self.dl1_run = Some((line, hit));
                hit
            }
        };
        if !dl1_hit {
            self.stats.dl1_misses += 1;
        }
        // A DL1 store miss deliberately charges no
        // `charge_l1_mirror` bytes and emits no `BusBroadcast`,
        // unlike the Load/IFetch miss paths: under §2.3 the
        // mirror broadcast carries a *filled line* so inactive
        // L1s stay identical copies, and a non-write-allocate
        // miss fills nothing — there is no line to broadcast.
        // The store's own value crosses the update bus either
        // way (§2.3: every retired store is broadcast), which
        // `charge_instructions` prices per store as
        // `store_bytes` whether the DL1 hit or missed.
        self.l2_write(line, !dl1_hit);
    }

    /// The machine's counters as one cumulative profiling snapshot
    /// (the profiler differences consecutive snapshots into
    /// [`execmig_obs::ProfileRecord`] intervals).
    pub fn profile_cumulative(&self) -> ProfileCumulative {
        let s = &self.stats;
        let (flips, aff_hits, aff_misses, f_value, a_r, subset) = match &self.controller {
            Some(mc) => {
                let t = mc.table_stats();
                (
                    mc.splitter_stats().transitions,
                    t.hits,
                    t.misses,
                    mc.filter_value(),
                    mc.ar(),
                    mc.current_subset() as u8,
                )
            }
            None => (0, 0, 0, 0, 0, self.active as u8),
        };
        ProfileCumulative {
            instructions: s.instructions,
            il1_misses: s.il1_misses,
            dl1_misses: s.dl1_misses,
            l2_misses: s.l2_misses,
            l3_misses: s.l3_misses,
            migrations: s.migrations,
            flips,
            affinity_hits: aff_hits,
            affinity_misses: aff_misses,
            // Total bus traffic: the architectural update bus plus any
            // protocol coherence transactions (0 under migration mode,
            // so its profiles are unchanged by the protocol seam).
            bus_bytes: s.bus.update_bus_bytes() + s.coherence_bus_bytes,
            invalidations: s.invalidations,
            coherence_updates: s.coherence_updates,
            residency: self.core_instructions,
            f_value,
            a_r,
            active_core: self.active as u8,
            subset,
        }
    }

    /// Runs the machine-level invariant checks (I105–I107, see the
    /// [`invariants`] module). Debug builds call this automatically
    /// every [`invariants::SCAN_PERIOD`] accesses; in release builds
    /// the checks compile to nothing.
    pub fn check_invariants(&self) {
        invariants::check_coherence(self.config.protocol, &self.l2);
        invariants::check_l1_write_through(&self.il1, &self.dl1);
        invariants::check_occupancy(
            &self.core_instructions[..self.config.cores],
            self.stats.instructions,
        );
        invariants::check_migration_accounting(
            self.stats.migrations,
            self.controller.as_ref().map_or(0, |c| c.stats().migrations),
            self.active,
            self.config.cores,
        );
    }

    /// Read path for an L1 miss: consult the active L2, the remote L2s
    /// (modified copies only), then L3; notify the controller.
    fn l1_request(&mut self, line: LineAddr, pointer: bool) {
        // Fills, forwards, prefetches, and migrations below may move
        // lines in any L2.
        self.store_run = None;
        self.stats.l1_requests += 1;
        self.stats.l2_accesses += 1;
        let l2_hit = self.l2[self.active].lookup(line);
        if !l2_hit {
            self.stats.l2_misses += 1;
            self.tracer.emit(self.stats.instructions, EventKind::L2Miss);
            self.serve_l2_miss(line, false);
            self.prefetch_after(line);
        }
        self.consult_controller(line, !l2_hit, pointer);
    }

    /// The configured coherence backend plus the mutable view of the
    /// machine state its hooks may touch.
    fn coherence(&mut self) -> (Protocol, CoherenceCtx<'_>) {
        (
            self.config.protocol,
            CoherenceCtx {
                active: self.active,
                l2: &mut self.l2,
                l3: self.l3.as_mut(),
                stats: &mut self.stats,
            },
        )
    }

    /// Sequential prefetch (§6 extension): on a read miss for `line`,
    /// pull the next `degree` lines into the active L2 from L3.
    ///
    /// Prefetches are bus-free, so the backend decides which lines may
    /// fill at all (migration mode skips lines modified remotely — the
    /// L3 image is stale until the owner writes back; the bus protocols
    /// skip any remotely-held line, since a bus-free fill may only
    /// create an exclusive copy). Lines past the top of the address
    /// space are dropped, not wrapped. A modified prefetch victim is
    /// written back *and installed* into the finite L3, exactly like a
    /// demand-fill victim — merely counting the write-back would lose
    /// the only up-to-date copy of the line.
    fn prefetch_after(&mut self, line: LineAddr) {
        let Some(p) = self.config.prefetch else {
            return;
        };
        let protocol = self.config.protocol;
        let active = self.active;
        for i in 1..=p.degree as u64 {
            let Some(raw) = line.raw().checked_add(i) else {
                break;
            };
            let next = LineAddr::new(raw);
            if !protocol.may_prefetch(active, &self.l2, next) {
                continue;
            }
            if let FillIfAbsent::Filled(evicted) = self.l2[active].fill_if_absent(next, false) {
                self.stats.prefetch_fills += 1;
                if let Some(e) = evicted {
                    if e.modified {
                        self.stats.l3_writebacks += 1;
                        if let Some(l3) = &mut self.l3 {
                            l3.fill(e.line, true);
                        }
                    }
                }
            }
        }
    }

    /// Write path: every store reaches the active L2 (write-through L1).
    /// Only stores that missed the DL1 count as L1-miss requests for the
    /// migration controller.
    fn l2_write(&mut self, line: LineAddr, was_l1_request: bool) {
        self.store_run = None;
        let migration = self.config.protocol == Protocol::MigrationMode;
        self.stats.l2_accesses += 1;
        // The hit probe hands its frame index to `write_hit`, so the
        // upgrade path edits the active copy without a second set scan.
        let hit_frame = self.l2[self.active].lookup_at(line);
        let l2_hit = hit_frame.is_some();
        if let Some(frame) = hit_frame {
            let (protocol, mut ctx) = self.coherence();
            protocol.write_hit(&mut ctx, line, frame);
        } else {
            self.stats.l2_misses += 1;
            self.tracer.emit(self.stats.instructions, EventKind::L2Miss);
            self.serve_l2_miss(line, true);
        }
        let broadcast = {
            let before = self.stats.store_broadcast_updates;
            let (protocol, mut ctx) = self.coherence();
            protocol.after_write(&mut ctx, line);
            self.stats.store_broadcast_updates - before
        };
        if was_l1_request {
            self.stats.l1_requests += 1;
            // Stores are never pointer loads.
            self.consult_controller(line, !l2_hit, false);
        } else if l2_hit && migration {
            // Arm the store-run memo: a DL1-hit store that hit the L2
            // ran no fill and consulted no controller, so until some
            // other path touches an L2 a repeat store to this line is
            // state-idempotent. Migration mode only — its `write_hit`
            // is a plain modified-bit set and its broadcast effect is
            // the counter bump measured above, both stable across
            // repeats. The shared-bit protocols re-examine bus state
            // per store and always take the full path.
            self.store_run = Some((line, broadcast));
        }
    }

    /// Fills `line` into the active L2 after a miss, delegating the
    /// sourcing (remote forward vs L3 fetch), remote-state adjustment,
    /// and victim retirement to the configured coherence backend.
    fn serve_l2_miss(&mut self, line: LineAddr, store: bool) {
        let (protocol, mut ctx) = self.coherence();
        protocol.serve_miss(&mut ctx, line, store);
    }

    /// Feeds the request to the migration controller and performs the
    /// migration it mandates, if any.
    fn consult_controller(&mut self, line: LineAddr, l2_miss: bool, pointer: bool) {
        let Some(mc) = self.controller.as_mut() else {
            return;
        };
        let at = self.stats.instructions;
        // Splitter/table counters are pre-read only in trace builds:
        // `Tracer::ACTIVE` is a compile-time constant, so without the
        // `trace` feature this bookkeeping is dead code the optimiser
        // removes and the hot path is unchanged.
        let (flips_before, table_misses_before) = if Tracer::ACTIVE {
            (mc.splitter_stats().transitions, mc.table_stats().misses)
        } else {
            (0, 0)
        };
        let target = mc.on_request_tagged(line.raw(), l2_miss, pointer);
        if Tracer::ACTIVE {
            if mc.splitter_stats().transitions > flips_before {
                self.tracer.emit(at, EventKind::TransitionFlip);
            }
            if mc.table_stats().misses > table_misses_before {
                self.tracer.emit(at, EventKind::AffinityCacheMiss);
            }
        }
        if target != self.active {
            self.tracer.emit(
                at,
                EventKind::Migration {
                    from: self.active as u8,
                    to: target as u8,
                },
            );
            self.active = target;
            self.stats.migrations += 1;
            self.inter_arrival.observe(at - self.last_migration_at);
            self.last_migration_at = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;
    use execmig_cache::Indexing;
    use execmig_trace::gen::CircularWorkload;
    use execmig_trace::suite;

    fn tiny_config(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            line_bytes: 64,
            il1: CacheGeometry {
                capacity_bytes: 1 << 10,
                ways: 2,
                indexing: Indexing::Modulo,
            },
            dl1: CacheGeometry {
                capacity_bytes: 1 << 10,
                ways: 2,
                indexing: Indexing::Modulo,
            },
            l2: CacheGeometry {
                capacity_bytes: 8 << 10,
                ways: 4,
                indexing: Indexing::Skewed,
            },
            // No controller: these configs drive coherence directly by
            // setting `active` in tests.
            controller: None,
            prefetch: None,
            l3: None,
            protocol: Protocol::MigrationMode,
        }
    }

    #[test]
    fn baseline_counts_l1_and_l2_misses() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = CircularWorkload::new(64 << 10); // 4 MB circular
        m.run(&mut w, 300_000);
        let s = m.stats();
        assert!(s.instructions >= 300_000);
        assert!(s.dl1_misses > 0, "4 MB circular must miss a 16 KB DL1");
        assert!(s.l2_misses > 0, "4 MB circular must miss a 512 KB L2");
        assert_eq!(s.migrations, 0, "no controller, no migrations");
        assert_eq!(m.active_core(), 0);
    }

    #[test]
    fn small_working_set_hits_l2() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = CircularWorkload::new(1024); // 64 KB circular
        m.run(&mut w, 500_000);
        let s = m.stats();
        // After warm-up, a 64 KB working set lives in the 512 KB L2:
        // L2 misses are bounded by the compulsory fills (~1024).
        assert!(
            s.l2_misses < 2048,
            "L2 misses {} for a resident working set",
            s.l2_misses
        );
        // But it does miss the 16 KB DL1 continuously.
        assert!(s.dl1_misses > 100_000);
    }

    #[test]
    fn stores_set_modified_and_broadcast_resets() {
        let mut m = Machine::new(tiny_config(4));
        let line = LineAddr::new(100);
        // Store on core 0: allocates modified in L2[0].
        m.step(AccessKind::Store, line, 1);
        assert_eq!(m.l2[0].modified(line), Some(true));
        // Load the same line after forcing a migration-free refill on
        // another core: emulate by switching active manually.
        m.activate(1);
        m.step(AccessKind::IFetch, LineAddr::new(999), 2); // unrelated warmup
        m.activate(1);
        m.step(AccessKind::Load, line, 3);
        // Core 1 missed its L2; the modified copy on core 0 was
        // forwarded: its bit is reset, line written back to L3.
        assert_eq!(m.l2[0].modified(line), Some(false));
        assert!(m.l2[1].contains(line));
        assert_eq!(m.stats().l2_to_l2_forwards, 1);
        assert!(m.stats().l3_writebacks >= 1);
        // A store on core 1 now resets nothing (copy on 0 already
        // clean) but refreshes it via broadcast accounting.
        m.step(AccessKind::Store, line, 4);
        assert_eq!(m.l2[1].modified(line), Some(true));
        assert_eq!(m.l2[0].modified(line), Some(false));
        assert!(m.stats().store_broadcast_updates >= 1);
    }

    #[test]
    fn non_modified_remote_copy_is_refetched_from_l3() {
        let mut m = Machine::new(tiny_config(4));
        let line = LineAddr::new(200);
        // Clean fill on core 0.
        m.step(AccessKind::Load, line, 1);
        assert_eq!(m.l2[0].modified(line), Some(false));
        // Evict `line` from the (mirrored) DL1 — but not from L2[0] —
        // so the next load actually reaches the L2 level.
        for i in 0..64u64 {
            m.step(AccessKind::Load, LineAddr::new(1000 + i), 1 + i);
        }
        assert!(!m.dl1.contains(line), "DL1 thrash failed");
        assert!(m.l2[0].contains(line), "L2 lost the line");
        let l3_before = m.stats().l3_fetches;
        // Miss on core 2: remote copy is clean, must go to L3.
        m.activate(2);
        m.step(AccessKind::Load, line, 100);
        assert_eq!(m.stats().l2_to_l2_forwards, 0);
        assert_eq!(m.stats().l3_fetches, l3_before + 1);
    }

    #[test]
    fn dl1_write_through_does_not_allocate() {
        let mut m = Machine::new(tiny_config(1));
        let line = LineAddr::new(300);
        m.step(AccessKind::Store, line, 1);
        assert_eq!(m.stats().dl1_misses, 1);
        // The store missed the DL1 and must NOT have allocated there…
        assert!(!m.dl1.contains(line));
        // …but write-allocation happened in the L2.
        assert!(m.l2[0].contains(line));
        assert_eq!(m.l2[0].modified(line), Some(true));
        // A second store misses the DL1 again (non-allocating).
        m.step(AccessKind::Store, line, 2);
        assert_eq!(m.stats().dl1_misses, 2);
    }

    #[test]
    fn migration_machine_migrates_on_splittable_stream() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        m.run(&mut *w, 3_000_000);
        let s = m.stats();
        assert!(s.migrations > 0, "art must trigger migrations");
        assert_eq!(
            s.migrations,
            m.controller().unwrap().stats().migrations,
            "machine and controller must agree on migration count"
        );
    }

    #[test]
    fn l1_requests_only_for_misses() {
        let mut m = Machine::new(tiny_config(1));
        let line = LineAddr::new(5);
        m.step(AccessKind::Load, line, 1); // miss
        m.step(AccessKind::Load, line, 2); // hit
        m.step(AccessKind::Load, line, 3); // hit
        assert_eq!(m.stats().l1_requests, 1);
        assert_eq!(m.stats().dl1_misses, 1);
    }

    #[test]
    fn instructions_track_workload() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("gzip").unwrap();
        m.run(&mut *w, 50_000);
        assert!(m.stats().instructions >= 50_000);
        assert_eq!(m.stats().instructions, w.instructions());
    }

    #[test]
    fn finite_l3_counts_memory_accesses() {
        use crate::config::CacheGeometry;
        let mut with_l3 = Machine::new(MachineConfig {
            l3: Some(CacheGeometry {
                capacity_bytes: 2 << 20,
                ways: 8,
                indexing: Indexing::Skewed,
            }),
            ..MachineConfig::single_core()
        });
        let mut w = suite::by_name("swim").unwrap(); // 16 MB working set
        with_l3.run(&mut *w, 2_000_000);
        let s = with_l3.stats();
        assert!(s.l3_misses > 0, "16 MB sweep must miss a 2 MB L3");
        assert!(s.l3_misses <= s.l3_fetches);

        // A working set inside the L3 misses it only compulsorily.
        let mut small = Machine::new(MachineConfig {
            l3: Some(CacheGeometry {
                capacity_bytes: 2 << 20,
                ways: 8,
                indexing: Indexing::Skewed,
            }),
            ..MachineConfig::single_core()
        });
        let mut w = CircularWorkload::new(16 << 10); // 1 MB circular
        small.run(&mut w, 2_000_000);
        let s = small.stats();
        assert!(
            s.l3_misses <= (16 << 10) + 100,
            "resident set re-missed the L3: {}",
            s.l3_misses
        );
    }

    #[test]
    fn infinite_l3_never_counts_memory() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("swim").unwrap();
        m.run(&mut *w, 1_000_000);
        assert_eq!(m.stats().l3_misses, 0);
    }

    #[test]
    fn metrics_registry_mirrors_stats() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        m.run(&mut *w, 3_000_000);
        let r = m.metrics();
        let s = m.stats();
        assert_eq!(r.counter_value("l2_misses"), Some(s.l2_misses));
        assert_eq!(r.counter_value("migrations"), Some(s.migrations));
        assert_eq!(r.counter_value("instructions"), Some(s.instructions));
        // Occupancy counters cover exactly the configured cores and sum
        // to the instruction total.
        assert!(r.counter_value("core3_instructions").is_some());
        assert!(r.counter_value("core4_instructions").is_none());
        let occupancy: u64 = (0..4)
            .map(|c| r.counter_value(&format!("core{c}_instructions")).unwrap())
            .sum();
        assert_eq!(occupancy, s.instructions);
        // One inter-arrival sample per migration.
        assert_eq!(m.migration_interarrival().count(), s.migrations);
        assert!(m.migration_interarrival().sum() <= s.instructions);
        // Controller histograms are exposed under stable names.
        match r.get("filter_dwell_requests") {
            Some(execmig_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), m.controller().unwrap().stats().migrations)
            }
            other => panic!("filter_dwell_requests {other:?}"),
        }
    }

    #[test]
    fn tracer_matches_feature_mode() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        m.run(&mut *w, 2_000_000);
        if Tracer::ACTIVE {
            let events = m.tracer().events();
            assert!(!events.is_empty());
            // Timestamps are monotonic.
            for pair in events.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
            let migrations = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Migration { .. }))
                .count() as u64;
            assert!(migrations <= m.stats().migrations);
            assert!(
                migrations == m.stats().migrations || m.tracer().dropped() > 0,
                "missing migration events without drops"
            );
        } else {
            assert!(m.tracer().events().is_empty());
            assert_eq!(m.tracer().emitted(), 0);
        }
    }

    #[test]
    fn profiler_matches_feature_mode() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        m.set_profile_config(ProfileConfig {
            period: 64 << 10,
            capacity: 1 << 10,
        });
        let mut w = suite::by_name("art").unwrap();
        m.run(&mut *w, 2_000_000);
        let snap = m.profile_cumulative();
        assert_eq!(snap.instructions, m.stats().instructions);
        assert_eq!(snap.l2_misses, m.stats().l2_misses);
        assert_eq!(snap.residency.iter().sum::<u64>(), snap.instructions);
        if Profiler::ACTIVE {
            let recs = m.profiler().records();
            assert!(recs.len() >= 2_000_000 / (64 << 10) - 1, "{}", recs.len());
            // Intervals tile the run from instruction 0.
            assert_eq!(recs[0].start, 0);
            for pair in recs.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            // Interval counters sum to (at most) the cumulative totals;
            // the tail past the last boundary is not yet recorded.
            let l2: u64 = recs.iter().map(|r| r.l2_misses).sum();
            assert!(l2 <= m.stats().l2_misses);
            let migrations: u64 = recs.iter().map(|r| r.migrations).sum();
            assert!(migrations <= m.stats().migrations);
            assert!(migrations > 0, "art must migrate within profiled span");
        } else {
            assert!(m.profiler().records().is_empty());
            assert_eq!(std::mem::size_of::<Profiler>(), 0);
        }
    }

    #[test]
    fn bus_bytes_are_charged_once_per_broadcast_not_per_mirror() {
        // The update bus broadcasts each retired event once; inactive
        // cores listen, they are not charged individually. Replaying the
        // same stream through 1-, 2-, and 4-core machines must therefore
        // produce byte-identical bus counters.
        let run = |cores: usize| {
            let mut m = Machine::new(tiny_config(cores));
            let mut x = 9u64;
            let mut instr = 0u64;
            for _ in 0..40_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let line = LineAddr::new((x >> 33) % 4096);
                let kind = match (x >> 20) % 10 {
                    0..=2 => AccessKind::IFetch,
                    3..=4 => AccessKind::Store,
                    _ => AccessKind::Load,
                };
                instr += 1 + (x >> 50) % 3;
                m.step(kind, line, instr);
            }
            (m.stats().bus, *m.stats())
        };
        let (bus1, s1) = run(1);
        let (bus2, _) = run(2);
        let (bus4, s4) = run(4);
        assert_eq!(bus1, bus2, "2-core machine double-charged broadcasts");
        assert_eq!(bus1, bus4, "4-core machine double-charged broadcasts");
        // Tie the counters to the retired-event counts: one store charge
        // per store instruction.
        let cost = crate::bus::UpdateBusConfig::default();
        assert_eq!(bus4.store_bytes, s4.stores * cost.bytes_per_store);
        assert_eq!(s1.stores, s4.stores);
        // On a store-free stream every L1 request mirrors exactly one
        // line (stores reach the L2 without a fill broadcast, so they
        // are excluded here to make the count exact).
        let mut m = Machine::new(tiny_config(4));
        let mut x = 7u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = if x & 1 == 0 {
                AccessKind::IFetch
            } else {
                AccessKind::Load
            };
            m.step(kind, LineAddr::new((x >> 33) % 4096), i + 1);
        }
        let s = m.stats();
        assert_eq!(s.bus.l1_mirror_bytes, s.l1_requests * 64);
        assert_eq!(s.l1_requests, s.il1_misses + s.dl1_misses);
    }

    #[test]
    fn update_bus_traffic_accumulates() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("bzip2").unwrap();
        m.run(&mut *w, 100_000);
        let bus = m.stats().bus;
        assert!(bus.reg_bytes > 0);
        assert!(bus.store_bytes > 0);
        assert!(bus.update_bus_bytes() > 100_000, "≥1 B/instr expected");
    }

    /// A DL1 *store* miss is exempt from the L1 mirror traffic that
    /// load/ifetch misses generate: the DL1 is non-write-allocate, so
    /// the miss fills no line and there is nothing to broadcast to the
    /// inactive L1 mirrors (§2.3 — the store's value itself is priced
    /// separately, per retired store, by `charge_instructions`). This
    /// pins the exemption so a refactor can't silently start charging
    /// `charge_l1_mirror`/emitting `BusBroadcast` on the store path.
    #[test]
    fn store_miss_charges_no_mirror_bytes_and_no_broadcast() {
        let mut m = Machine::new(tiny_config(4));
        let line = LineAddr::new(77);
        // Cold store: DL1 miss, no allocate, no mirror traffic.
        m.step(AccessKind::Store, line, 1);
        let s = m.stats();
        assert_eq!(s.dl1_misses, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.bus.l1_mirror_bytes, 0, "store miss must not mirror");
        #[cfg(feature = "trace")]
        assert!(
            !m.tracer()
                .events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::BusBroadcast)),
            "store miss must not emit BusBroadcast"
        );
        // Non-allocating: the same store misses again, still exempt.
        m.step(AccessKind::Store, line, 2);
        assert_eq!(m.stats().dl1_misses, 2);
        assert_eq!(m.stats().bus.l1_mirror_bytes, 0);
        // Contrast: a load miss *does* mirror the filled line, which
        // keeps this test honest about the counter being live at all.
        m.step(AccessKind::Load, LineAddr::new(200), 3);
        assert_eq!(m.stats().bus.l1_mirror_bytes, 64);
        #[cfg(feature = "trace")]
        assert!(m
            .tracer()
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::BusBroadcast)));
    }

    /// `run_observed` publishes exactly one beat per period crossing
    /// plus one final beat — unless the budget lands *on* a beat
    /// boundary, in which case the final publish would report the same
    /// instruction count twice and is skipped. `CircularWorkload`
    /// retires exactly one instruction per event, so beat positions
    /// are exact and the expected counts are closed-form.
    #[cfg(feature = "trace")]
    #[test]
    fn observed_run_publishes_one_beat_per_period() {
        let beats_for = |budget: u64, period: u64| {
            let hub = Hub::with_workers(1);
            let worker = hub.worker(0).expect("first claim");
            let mut m = Machine::new(MachineConfig::single_core());
            let mut w = CircularWorkload::new(4096);
            m.run_observed(&mut w, budget, &worker, 0, 0, period);
            assert_eq!(m.stats().instructions, budget);
            hub.overhead().beats
        };
        // Budget on a beat boundary: the in-loop beats at 1000, 2000,
        // 3000, 4000 already cover the end state; no trailing beat.
        assert_eq!(beats_for(4000, 1000), 4, "final beat double-counted");
        // Budget off the boundary: 4 in-loop beats plus the trailing
        // one reporting the final 4500.
        assert_eq!(beats_for(4500, 1000), 5);
        // Budget below one period: only the trailing beat fires.
        assert_eq!(beats_for(500, 1000), 1);
        // Observability must not perturb the simulation.
        let hub = Hub::with_workers(1);
        let worker = hub.worker(0).expect("first claim");
        let mut observed = Machine::new(MachineConfig::single_core());
        let mut w = CircularWorkload::new(4096);
        observed.run_observed(&mut w, 4500, &worker, 0, 0, 1000);
        let mut plain = Machine::new(MachineConfig::single_core());
        let mut w = CircularWorkload::new(4096);
        plain.run(&mut w, 4500);
        assert_eq!(observed.stats(), plain.stats());
    }
}
