//! Analytic performance model and the break-even migration penalty.
//!
//! The paper deliberately avoids fixing `P_mig` (the penalty of a
//! migration relative to an L2-miss/L3-hit): "We make no assumption on
//! the value of `P_mig` in this study, but `P_mig > 1`." Instead it
//! reasons about the break-even point — e.g. for 181.mcf, "the number of
//! L2 misses removed per migration is 4500/24 − 4500/36 ≈ 60. It means
//! that as long as the migration penalty is less than 60 times the
//! L2-miss/L3-hit penalty, i.e., `P_mig < 60`, we will observe
//! performance gains."
//!
//! [`PerfModel`] turns event counts into cycles for a *given* `P_mig`,
//! and [`break_even_pmig`] computes the paper's figure of merit from a
//! baseline run and a migration run.

use crate::stats::MachineStats;

/// Latency parameters, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Base cycles per instruction with an ideal memory system.
    pub base_cpi: f64,
    /// Added cycles for an L1 miss that hits the local L2.
    pub l2_hit_penalty: f64,
    /// Added cycles for an L2 miss (L3 hit or L2-to-L2 forward — the
    /// paper treats them as equivalent).
    pub l3_hit_penalty: f64,
    /// Migration penalty relative to `l3_hit_penalty` (`P_mig`).
    pub pmig: f64,
    /// Added cycles for a finite-L3 miss (memory access). Only
    /// relevant when the machine is configured with a finite L3.
    pub memory_penalty: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            base_cpi: 0.5,
            l2_hit_penalty: 10.0,
            l3_hit_penalty: 40.0,
            pmig: 10.0,
            memory_penalty: 200.0,
        }
    }
}

/// Cycle totals derived from one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSummary {
    /// Total estimated cycles.
    pub cycles: f64,
    /// Estimated instructions per cycle.
    pub ipc: f64,
    /// Fraction of cycles spent on migrations.
    pub migration_overhead: f64,
}

impl PerfModel {
    /// Estimates the cycle count of a run.
    ///
    /// L1 misses that hit the L2 pay `l2_hit_penalty`; L2 misses pay
    /// `l3_hit_penalty` on top; migrations pay `pmig × l3_hit_penalty`.
    pub fn summarize(&self, stats: &MachineStats) -> PerfSummary {
        let l2_hits = stats.l1_requests.saturating_sub(stats.l2_misses) as f64;
        let base = stats.instructions as f64 * self.base_cpi;
        let l2 = l2_hits * self.l2_hit_penalty;
        let l3 = stats.l2_misses as f64 * (self.l2_hit_penalty + self.l3_hit_penalty);
        let mem = stats.l3_misses as f64 * self.memory_penalty;
        let mig = stats.migrations as f64 * self.pmig * self.l3_hit_penalty;
        let cycles = base + l2 + l3 + mem + mig;
        PerfSummary {
            cycles,
            ipc: if cycles > 0.0 {
                stats.instructions as f64 / cycles
            } else {
                0.0
            },
            migration_overhead: if cycles > 0.0 { mig / cycles } else { 0.0 },
        }
    }

    /// Speed-up of `migration` over `baseline` for this model's `pmig`
    /// (> 1 means migration wins).
    pub fn speedup(&self, baseline: &MachineStats, migration: &MachineStats) -> f64 {
        let b = self.summarize(baseline);
        let m = self.summarize(migration);
        // Normalize per instruction in case the runs differ slightly.
        let b_cpi = b.cycles / baseline.instructions.max(1) as f64;
        let m_cpi = m.cycles / migration.instructions.max(1) as f64;
        b_cpi / m_cpi
    }
}

/// The paper's break-even `P_mig`: L2 misses removed per migration.
/// Migration is profitable whenever `P_mig` is below this value.
/// Returns `None` when the migration run has no migrations, or a
/// non-positive value when migration *adds* misses (never profitable).
pub fn break_even_pmig(baseline: &MachineStats, migration: &MachineStats) -> Option<f64> {
    if migration.migrations == 0 {
        return None;
    }
    // Normalize miss counts per instruction before differencing.
    let b_rate = baseline.l2_misses as f64 / baseline.instructions.max(1) as f64;
    let m_rate = migration.l2_misses as f64 / migration.instructions.max(1) as f64;
    let removed_per_instr = b_rate - m_rate;
    let migrations_per_instr = migration.migrations as f64 / migration.instructions.max(1) as f64;
    Some(removed_per_instr / migrations_per_instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instr: u64, l1: u64, l2: u64, mig: u64) -> MachineStats {
        MachineStats {
            instructions: instr,
            l1_requests: l1,
            l2_misses: l2,
            migrations: mig,
            ..MachineStats::default()
        }
    }

    #[test]
    fn paper_mcf_break_even_is_sixty() {
        // mcf: L1 request every 14 instr, L2 miss every 24 (baseline)
        // vs every 36 (migration), migration every 4500 instr.
        let n = 1_000_000_000u64;
        let base = stats(n, n / 14, n / 24, 0);
        let mig = stats(n, n / 14, n / 36, n / 4500);
        let be = break_even_pmig(&base, &mig).unwrap();
        assert!(
            (55.0..=65.0).contains(&be),
            "expected ≈60 (paper §4.2), got {be}"
        );
    }

    #[test]
    fn break_even_none_without_migrations() {
        let base = stats(1000, 100, 50, 0);
        let mig = stats(1000, 100, 40, 0);
        assert_eq!(break_even_pmig(&base, &mig), None);
    }

    #[test]
    fn break_even_negative_when_misses_increase() {
        let base = stats(1000, 100, 40, 0);
        let mig = stats(1000, 100, 50, 10);
        assert!(break_even_pmig(&base, &mig).unwrap() < 0.0);
    }

    #[test]
    fn speedup_crosses_one_at_break_even() {
        let n = 10_000_000u64;
        let base = stats(n, n / 14, n / 24, 0);
        let mig = stats(n, n / 14, n / 36, n / 4500);
        let be = break_even_pmig(&base, &mig).unwrap();
        let below = PerfModel {
            pmig: be * 0.5,
            ..PerfModel::default()
        };
        let above = PerfModel {
            pmig: be * 2.0,
            ..PerfModel::default()
        };
        assert!(below.speedup(&base, &mig) > 1.0);
        assert!(above.speedup(&base, &mig) < 1.0);
        let at = PerfModel {
            pmig: be,
            ..PerfModel::default()
        };
        assert!((at.speedup(&base, &mig) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn summary_accounts_migration_overhead() {
        let m = PerfModel::default();
        let with = m.summarize(&stats(1000, 100, 50, 20));
        let without = m.summarize(&stats(1000, 100, 50, 0));
        assert!(with.cycles > without.cycles);
        assert!(with.migration_overhead > 0.0);
        assert_eq!(without.migration_overhead, 0.0);
        assert!(with.ipc < without.ipc);
    }
}
