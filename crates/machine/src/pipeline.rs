//! The migration protocol of §2.2 and its penalty.
//!
//! When the controller decides to migrate from X1 to X2:
//!
//! 1. X1's I-fetch unit receives an interrupt, stops fetching, and marks
//!    the most recently fetched instruction as the *transition
//!    instruction* `T`;
//! 2. the transition PC is forwarded to X2, which starts fetching but
//!    keeps its issue stage blocked;
//! 3. X1 drains; if a branch mispredict occurs while draining, the
//!    mispredicted branch becomes the new transition point, X2 is
//!    flushed and refetched;
//! 4. when `T` retires on X1 (and its broadcast reaches X2), X2's issue
//!    unblocks; X2 is the new active core.
//!
//! §2.4: "the migration penalty corresponds to the number of cycles for
//! broadcasting `T` on the update bus plus the number of pipeline stages
//! from the issue stage to retirement". This module simulates exactly
//! that protocol over a simple in-order-retire window model, including
//! the mispredict-during-drain case, to produce a penalty distribution
//! in cycles.

/// Pipeline and bus parameters for the protocol model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Instructions in flight between fetch and retire when the
    /// interrupt arrives (window occupancy).
    pub inflight: u64,
    /// Maximum retires per cycle on X1 while draining.
    pub retire_width: u64,
    /// Pipeline stages from the issue stage to retirement (§2.4).
    pub issue_to_retire_stages: u64,
    /// Cycles to broadcast one retired instruction on the update bus
    /// (also assumed equal to the transition-PC transfer delay, as in
    /// §2.4).
    pub broadcast_cycles: u64,
    /// Probability (per-mille) that a branch mispredict redirects the
    /// drain, per drained instruction.
    pub mispredict_permille: u64,
}

execmig_obs::impl_to_json!(PipelineConfig {
    inflight,
    retire_width,
    issue_to_retire_stages,
    broadcast_cycles,
    mispredict_permille,
});

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            inflight: 48,
            retire_width: 4,
            issue_to_retire_stages: 8,
            broadcast_cycles: 1,
            mispredict_permille: 5,
        }
    }
}

/// Result of simulating one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolOutcome {
    /// Cycles from the interrupt on X1 to the first instruction retiring
    /// on X2 — the migration penalty.
    pub penalty_cycles: u64,
    /// Number of drain restarts caused by mispredicts.
    pub mispredict_restarts: u64,
}

/// Simulator of the §2.2 migration protocol.
#[derive(Debug, Clone)]
pub struct MigrationProtocol {
    config: PipelineConfig,
    /// xorshift state for the mispredict draw (deterministic).
    rng_state: u64,
}

impl MigrationProtocol {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `retire_width` is 0.
    pub fn new(config: PipelineConfig, seed: u64) -> Self {
        assert!(config.retire_width > 0, "retire width must be positive");
        MigrationProtocol {
            config,
            rng_state: seed | 1,
        }
    }

    fn flip(&mut self, permille: u64) -> bool {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state % 1000 < permille
    }

    /// Simulates one migration and returns its penalty.
    pub fn simulate_migration(&mut self) -> ProtocolOutcome {
        let c = self.config;
        let mut cycles = 0u64;
        let mut restarts = 0u64;
        // X1 drains the in-flight window at retire_width per cycle; a
        // mispredict flushes the younger part of the window and makes
        // the branch the new transition point (X2 refetches — modelled
        // as restarting the transition-PC transfer).
        let mut remaining = c.inflight;
        while remaining > 0 {
            let retired = remaining.min(c.retire_width);
            remaining -= retired;
            cycles += 1;
            let mut drained_mispredicted = false;
            for _ in 0..retired {
                if self.flip(c.mispredict_permille) {
                    drained_mispredicted = true;
                }
            }
            if drained_mispredicted && remaining > 0 {
                // Instructions after the mispredict are flushed: the
                // drain shortens, but X2 must be flushed and refetched.
                remaining /= 2;
                restarts += 1;
            }
        }
        // After T retires on X1: broadcast T on the update bus, then T's
        // follower must traverse issue→retire on X2 (§2.4).
        cycles += c.broadcast_cycles + c.issue_to_retire_stages;
        ProtocolOutcome {
            penalty_cycles: cycles,
            mispredict_restarts: restarts,
        }
    }

    /// Simulates `n` migrations; returns the mean penalty in cycles.
    pub fn mean_penalty(&mut self, n: u64) -> f64 {
        assert!(n > 0, "need at least one sample");
        let total: u64 = (0..n)
            .map(|_| self.simulate_migration().penalty_cycles)
            .sum();
        total as f64 / n as f64
    }

    /// The §2.4 closed-form lower bound: drain + broadcast + stages.
    pub fn analytic_penalty(&self) -> u64 {
        let c = self.config;
        c.inflight.div_ceil(c.retire_width) + c.broadcast_cycles + c.issue_to_retire_stages
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_without_mispredicts_is_analytic() {
        let cfg = PipelineConfig {
            mispredict_permille: 0,
            ..PipelineConfig::default()
        };
        let mut p = MigrationProtocol::new(cfg, 42);
        let out = p.simulate_migration();
        assert_eq!(out.penalty_cycles, p.analytic_penalty());
        assert_eq!(out.mispredict_restarts, 0);
    }

    #[test]
    fn analytic_matches_paper_formula() {
        // 48 in flight at 4/cycle = 12 cycles of drain, +1 broadcast,
        // +8 issue→retire stages = 21 cycles.
        let p = MigrationProtocol::new(PipelineConfig::default(), 1);
        assert_eq!(p.analytic_penalty(), 21);
    }

    #[test]
    fn mispredicts_shorten_drain_but_add_restarts() {
        let cfg = PipelineConfig {
            mispredict_permille: 300,
            inflight: 256,
            ..PipelineConfig::default()
        };
        let mut p = MigrationProtocol::new(cfg, 7);
        let mut any_restart = false;
        for _ in 0..100 {
            let out = p.simulate_migration();
            assert!(out.penalty_cycles <= p.analytic_penalty());
            if out.mispredict_restarts > 0 {
                any_restart = true;
            }
        }
        assert!(any_restart, "30% mispredict rate never restarted");
    }

    #[test]
    fn mean_penalty_is_deterministic_per_seed() {
        let mut a = MigrationProtocol::new(PipelineConfig::default(), 9);
        let mut b = MigrationProtocol::new(PipelineConfig::default(), 9);
        assert_eq!(a.mean_penalty(1000), b.mean_penalty(1000));
    }

    #[test]
    fn empty_window_still_pays_stages() {
        let cfg = PipelineConfig {
            inflight: 0,
            mispredict_permille: 0,
            ..PipelineConfig::default()
        };
        let mut p = MigrationProtocol::new(cfg, 3);
        assert_eq!(p.simulate_migration().penalty_cycles, 1 + 8);
    }

    #[test]
    #[should_panic(expected = "retire width")]
    fn zero_retire_width_rejected() {
        MigrationProtocol::new(
            PipelineConfig {
                retire_width: 0,
                ..PipelineConfig::default()
            },
            1,
        );
    }
}
