//! §6 extension: filtering register updates with a register-update
//! cache.
//!
//! "Register updates consume most bandwidth. … One may also filter
//! register updates with a small register-update cache. A register
//! update would be sent only upon evicting an entry from the
//! register-update cache. Upon a migration, the content of the
//! register-update cache would be spilled on the update bus."
//!
//! Only the most recent pending write per logical register matters to
//! inactive cores, so consecutive writes to the same register coalesce.
//! The model replays a synthetic register-destination stream (a skewed
//! distribution over the logical registers, matching the hot-register
//! concentration of compiled code) through a small fully-associative
//! cache and reports how much broadcast traffic survives and what each
//! migration's spill costs.

/// Configuration of the register-update cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCacheConfig {
    /// Cache entries (0 disables the cache: every write broadcasts).
    pub entries: usize,
    /// Logical registers in the ISA (PISA: 32 int + 32 fp).
    pub logical_regs: u32,
    /// Per-mille fraction of destination draws taken from the hot
    /// subset (compiled code concentrates writes on few registers).
    pub hot_permille: u64,
    /// Size of the hot register subset.
    pub hot_regs: u32,
}

execmig_obs::impl_to_json!(RegCacheConfig {
    entries,
    logical_regs,
    hot_permille,
    hot_regs,
});

impl Default for RegCacheConfig {
    fn default() -> Self {
        RegCacheConfig {
            entries: 8,
            logical_regs: 64,
            hot_permille: 700,
            hot_regs: 8,
        }
    }
}

/// Counters of the register-update cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegCacheStats {
    /// Register writes observed.
    pub writes: u64,
    /// Writes that coalesced into a pending entry (no broadcast).
    pub coalesced: u64,
    /// Broadcasts caused by evictions.
    pub evict_broadcasts: u64,
    /// Migrations processed.
    pub spills: u64,
    /// Entries spilled across all migrations.
    pub spilled_entries: u64,
}

impl RegCacheStats {
    /// Total update-bus register messages (evictions + spills). Without
    /// a cache this equals `writes`.
    pub fn broadcasts(&self) -> u64 {
        self.evict_broadcasts + self.spilled_entries
    }

    /// Fraction of register writes whose broadcast was avoided.
    pub fn saved_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            1.0 - self.broadcasts() as f64 / self.writes as f64
        }
    }

    /// Mean entries spilled per migration.
    pub fn spill_per_migration(&self) -> f64 {
        if self.spills == 0 {
            0.0
        } else {
            self.spilled_entries as f64 / self.spills as f64
        }
    }
}

/// The register-update cache, with a deterministic synthetic
/// destination stream.
#[derive(Debug, Clone)]
pub struct RegUpdateCache {
    config: RegCacheConfig,
    /// Pending registers, most recently written last.
    pending: Vec<u32>,
    stats: RegCacheStats,
    rng_state: u64,
}

impl RegUpdateCache {
    /// Creates the cache.
    ///
    /// # Panics
    ///
    /// Panics if the hot subset exceeds the logical register count.
    pub fn new(config: RegCacheConfig, seed: u64) -> Self {
        assert!(
            config.hot_regs <= config.logical_regs,
            "hot subset larger than the register file"
        );
        assert!(config.logical_regs > 0, "need at least one register");
        RegUpdateCache {
            config,
            pending: Vec::with_capacity(config.entries),
            stats: RegCacheStats::default(),
            rng_state: seed | 1,
        }
    }

    fn draw_dest(&mut self) -> u32 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        let r = self.rng_state;
        if r % 1000 < self.config.hot_permille {
            ((r >> 32) % self.config.hot_regs as u64) as u32
        } else {
            ((r >> 32) % self.config.logical_regs as u64) as u32
        }
    }

    /// Processes one register write to a synthetic destination; returns
    /// true if a broadcast went out (eviction, or no cache configured).
    pub fn on_reg_write(&mut self) -> bool {
        let reg = self.draw_dest();
        self.stats.writes += 1;
        if self.config.entries == 0 {
            self.stats.evict_broadcasts += 1;
            return true;
        }
        if let Some(pos) = self.pending.iter().position(|&r| r == reg) {
            // Coalesce: refresh recency.
            self.pending.remove(pos);
            self.pending.push(reg);
            self.stats.coalesced += 1;
            return false;
        }
        let mut broadcast = false;
        if self.pending.len() == self.config.entries {
            self.pending.remove(0); // evict LRU -> broadcast it
            self.stats.evict_broadcasts += 1;
            broadcast = true;
        }
        self.pending.push(reg);
        broadcast
    }

    /// Spills all pending entries (a migration); returns how many.
    pub fn on_migration(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.stats.spills += 1;
        self.stats.spilled_entries += n as u64;
        n
    }

    /// Counters.
    pub fn stats(&self) -> RegCacheStats {
        self.stats
    }

    /// Entries currently pending (not yet broadcast or spilled). Every
    /// write is accounted for exactly once:
    /// `writes == coalesced + evict_broadcasts + spilled_entries +
    /// pending_len()`.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configuration.
    pub fn config(&self) -> &RegCacheConfig {
        &self.config
    }
}

/// Replays `reg_writes` register writes with `migrations` evenly-spaced
/// migrations and reports the traffic outcome.
pub fn simulate(
    config: RegCacheConfig,
    reg_writes: u64,
    migrations: u64,
    seed: u64,
) -> RegCacheStats {
    let mut cache = RegUpdateCache::new(config, seed);
    let spill_every = (reg_writes.checked_div(migrations))
        .map(|n| n.max(1))
        .unwrap_or(u64::MAX);
    for i in 0..reg_writes {
        cache.on_reg_write();
        if i % spill_every == spill_every - 1 {
            cache.on_migration();
        }
    }
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cache_broadcasts_everything() {
        let stats = simulate(
            RegCacheConfig {
                entries: 0,
                ..RegCacheConfig::default()
            },
            10_000,
            0,
            1,
        );
        assert_eq!(stats.broadcasts(), 10_000);
        assert_eq!(stats.saved_fraction(), 0.0);
    }

    #[test]
    fn cache_coalesces_hot_registers() {
        let stats = simulate(RegCacheConfig::default(), 100_000, 0, 2);
        // 70% of writes hit 8 hot registers and an 8-entry cache: a
        // large fraction must coalesce.
        assert!(
            stats.saved_fraction() > 0.4,
            "saved only {}",
            stats.saved_fraction()
        );
    }

    #[test]
    fn every_write_is_accounted_exactly_once() {
        // Conservation: a write either coalesces, is broadcast when its
        // entry is evicted, is spilled by a migration, or is still
        // pending. The previous form of this check subtracted the
        // right-hand side from itself and could never fail.
        for entries in [0usize, 1, 4, 8, 32] {
            let mut c = RegUpdateCache::new(
                RegCacheConfig {
                    entries,
                    ..RegCacheConfig::default()
                },
                7,
            );
            for i in 0..50_000u64 {
                c.on_reg_write();
                if i % 977 == 0 {
                    c.on_migration();
                }
            }
            let s = c.stats();
            assert_eq!(
                s.writes,
                s.coalesced + s.evict_broadcasts + s.spilled_entries + c.pending_len() as u64,
                "accounting leak with {entries} entries"
            );
            // And the traffic summary matches the spill/evict counters.
            assert_eq!(s.broadcasts(), s.evict_broadcasts + s.spilled_entries);
            let expected_saved = if s.writes == 0 {
                0.0
            } else {
                1.0 - s.broadcasts() as f64 / s.writes as f64
            };
            assert!((s.saved_fraction() - expected_saved).abs() < 1e-12);
        }
    }

    #[test]
    fn bigger_cache_saves_more() {
        let small = simulate(
            RegCacheConfig {
                entries: 4,
                ..RegCacheConfig::default()
            },
            100_000,
            0,
            3,
        );
        let large = simulate(
            RegCacheConfig {
                entries: 32,
                ..RegCacheConfig::default()
            },
            100_000,
            0,
            3,
        );
        assert!(large.saved_fraction() > small.saved_fraction());
    }

    #[test]
    fn migrations_spill_pending_entries() {
        let stats = simulate(RegCacheConfig::default(), 100_000, 100, 4);
        assert_eq!(stats.spills, 100);
        assert!(stats.spill_per_migration() > 0.0);
        assert!(stats.spill_per_migration() <= 8.0, "spill exceeds capacity");
    }

    #[test]
    fn spill_empties_the_cache() {
        let mut c = RegUpdateCache::new(RegCacheConfig::default(), 5);
        for _ in 0..100 {
            c.on_reg_write();
        }
        let n = c.on_migration();
        assert!(n > 0);
        assert_eq!(c.on_migration(), 0, "second spill must be empty");
    }

    #[test]
    #[should_panic(expected = "hot subset")]
    fn rejects_oversized_hot_set() {
        RegUpdateCache::new(
            RegCacheConfig {
                hot_regs: 100,
                logical_regs: 64,
                ..RegCacheConfig::default()
            },
            1,
        );
    }
}
