//! Event counters collected by the machine.

use crate::bus::UpdateBusStats;
use execmig_obs::impl_to_json;

impl_to_json!(UpdateBusStats {
    reg_bytes,
    store_bytes,
    branch_bytes,
    l1_mirror_bytes
});

impl_to_json!(MachineStats {
    instructions,
    accesses,
    ifetches,
    loads,
    stores,
    il1_misses,
    dl1_misses,
    l1_requests,
    l2_accesses,
    l2_misses,
    l2_to_l2_forwards,
    l3_fetches,
    l3_writebacks,
    migrations,
    store_broadcast_updates,
    prefetch_fills,
    l3_misses,
    invalidations,
    coherence_updates,
    coherence_bus_bytes,
    bus
});

/// Event counters for one simulation run.
///
/// Tables 1 and 2 report *instructions per event* — use the
/// `instr_per_*` accessors (higher is better, as in the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Total accesses processed.
    pub accesses: u64,
    /// Instruction fetches.
    pub ifetches: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// IL1 misses.
    pub il1_misses: u64,
    /// DL1 misses (loads and stores; stores do not allocate).
    pub dl1_misses: u64,
    /// L1-miss requests monitored by the migration controller.
    pub l1_requests: u64,
    /// Accesses reaching the active L2 (L1 misses + write-throughs).
    pub l2_accesses: u64,
    /// Active-L2 misses (includes those served L2-to-L2; the paper does
    /// not distinguish L2-to-L2 misses from L3 hits).
    pub l2_misses: u64,
    /// L2 misses served by forwarding a modified remote copy.
    pub l2_to_l2_forwards: u64,
    /// L2 misses served from L3 (no modified remote copy).
    pub l3_fetches: u64,
    /// Lines written back to L3 (dirty evictions + forward write-backs).
    pub l3_writebacks: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// Inactive-L2 copies refreshed by store broadcasts.
    pub store_broadcast_updates: u64,
    /// Lines prefetched into the active L2 (sequential prefetcher).
    pub prefetch_fills: u64,
    /// Finite-L3 misses (memory accesses); 0 when the L3 is modelled
    /// as infinite.
    pub l3_misses: u64,
    /// Remote L2 copies invalidated by MESI `BusRdX`/`BusUpgr`
    /// transactions; 0 under migration mode and Dragon.
    pub invalidations: u64,
    /// Remote L2 copies refreshed by Dragon `BusUpd` transactions (the
    /// update-protocol analogue of `store_broadcast_updates`); 0 under
    /// migration mode and MESI.
    pub coherence_updates: u64,
    /// Extra bus bytes moved by coherence transactions (MESI
    /// invalidation addresses, Dragon update words); 0 under migration
    /// mode, whose update traffic is accounted in `bus`.
    pub coherence_bus_bytes: u64,
    /// Update-bus traffic.
    pub bus: UpdateBusStats,
}

impl MachineStats {
    fn per_event(&self, events: u64) -> f64 {
        if events == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / events as f64
        }
    }

    /// Instructions per L1-miss request (Table 2 column "L1 miss").
    pub fn instr_per_l1_miss(&self) -> f64 {
        self.per_event(self.l1_requests)
    }

    /// Instructions per L2 miss (Table 2 columns "L2 miss"/"4xL2 miss").
    pub fn instr_per_l2_miss(&self) -> f64 {
        self.per_event(self.l2_misses)
    }

    /// Instructions per migration (Table 2 column "migration").
    pub fn instr_per_migration(&self) -> f64 {
        self.per_event(self.migrations)
    }

    /// Instructions per IL1 miss (Table 1 column "16KB i-miss").
    pub fn instr_per_il1_miss(&self) -> f64 {
        self.per_event(self.il1_misses)
    }

    /// Instructions per DL1 miss (Table 1 column "16KB d-miss").
    pub fn instr_per_dl1_miss(&self) -> f64 {
        self.per_event(self.dl1_misses)
    }

    /// L2 misses per instruction (convenience for rate plots).
    pub fn l2_miss_rate_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_event_handles_zero() {
        let s = MachineStats {
            instructions: 100,
            ..MachineStats::default()
        };
        assert!(s.instr_per_migration().is_infinite());
        assert_eq!(s.l2_miss_rate_per_instr(), 0.0);
    }

    #[test]
    fn per_event_divides() {
        let s = MachineStats {
            instructions: 1000,
            l2_misses: 10,
            migrations: 4,
            l1_requests: 100,
            ..MachineStats::default()
        };
        assert_eq!(s.instr_per_l2_miss(), 100.0);
        assert_eq!(s.instr_per_migration(), 250.0);
        assert_eq!(s.instr_per_l1_miss(), 10.0);
        assert_eq!(s.l2_miss_rate_per_instr(), 0.01);
    }
}
