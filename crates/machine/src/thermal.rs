//! §6 extension: activity migration for heat dissipation.
//!
//! "It has been suggested that migrating periodically the activity to
//! different parts of the chip permits a higher heat dissipation"
//! (citing Heo, Barr & Asanović, ISLPED 2003). The paper argues the
//! hardware cost of fast migration "will be better accepted if one can
//! find other advantages" — this module quantifies that bonus with a
//! simple lumped-RC thermal model.
//!
//! Each core is a thermal node: executing adds heat at a fixed rate,
//! every node leaks toward ambient exponentially. Peak steady-state
//! temperature falls as activity rotates faster, until migration
//! overhead (not modelled here — see [`PerfModel`](crate::PerfModel))
//! eats the gain.

/// Lumped thermal parameters (arbitrary consistent units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Heat added to the active core per kilo-instruction.
    pub heat_per_kinstr: f64,
    /// Exponential decay toward ambient per kilo-instruction
    /// (`T ← T · (1 − cooling)`), for every core.
    pub cooling_per_kinstr: f64,
}

execmig_obs::impl_to_json!(ThermalConfig {
    heat_per_kinstr,
    cooling_per_kinstr,
});

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            heat_per_kinstr: 1.0,
            cooling_per_kinstr: 0.001,
        }
    }
}

/// Per-core temperatures above ambient.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    config: ThermalConfig,
    temps: Vec<f64>,
    peak: f64,
}

impl ThermalModel {
    /// Creates the model with all cores at ambient.
    ///
    /// # Panics
    ///
    /// Panics with zero cores or a cooling rate outside `(0, 1)`.
    pub fn new(cores: usize, config: ThermalConfig) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            config.cooling_per_kinstr > 0.0 && config.cooling_per_kinstr < 1.0,
            "cooling rate must be in (0, 1)"
        );
        ThermalModel {
            config,
            temps: vec![0.0; cores],
            peak: 0.0,
        }
    }

    /// Advances the model by `kinstr` kilo-instructions with `active`
    /// executing.
    ///
    /// # Panics
    ///
    /// Panics if `active` is out of range.
    pub fn advance(&mut self, active: usize, kinstr: f64) {
        assert!(active < self.temps.len(), "active core out of range");
        // Closed-form update over the interval: heat the active core,
        // cool everyone. Using per-step Euler at kinstr granularity is
        // accurate enough for the comparison.
        for (i, t) in self.temps.iter_mut().enumerate() {
            let decay = (1.0 - self.config.cooling_per_kinstr).powf(kinstr);
            *t *= decay;
            if i == active {
                // Heat input integrated against the decay.
                let gain =
                    self.config.heat_per_kinstr * (1.0 - decay) / self.config.cooling_per_kinstr;
                *t += gain;
            }
            if *t > self.peak {
                self.peak = *t;
            }
        }
    }

    /// Current temperature of a core above ambient.
    pub fn temperature(&self, core: usize) -> f64 {
        self.temps[core]
    }

    /// Hottest instantaneous temperature seen so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The steady-state temperature of a never-migrating core.
    pub fn pinned_steady_state(&self) -> f64 {
        self.config.heat_per_kinstr / self.config.cooling_per_kinstr
    }
}

/// Simulates rotation among `cores` cores every `rotate_kinstr`
/// kilo-instructions for `total_kinstr`, returning the peak
/// temperature.
pub fn peak_with_rotation(
    cores: usize,
    config: ThermalConfig,
    rotate_kinstr: f64,
    total_kinstr: f64,
) -> f64 {
    let mut model = ThermalModel::new(cores, config);
    let mut at = 0.0;
    let mut core = 0;
    while at < total_kinstr {
        let step = rotate_kinstr.min(total_kinstr - at);
        model.advance(core, step);
        core = (core + 1) % cores;
        at += step;
    }
    model.peak()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_execution_approaches_steady_state() {
        let config = ThermalConfig::default();
        let mut m = ThermalModel::new(4, config);
        m.advance(0, 20_000.0);
        let t = m.temperature(0);
        let steady = m.pinned_steady_state();
        assert!(
            (t - steady).abs() / steady < 0.01,
            "t {t} vs steady {steady}"
        );
        assert_eq!(m.temperature(1), 0.0);
    }

    #[test]
    fn rotation_lowers_peak_temperature() {
        let config = ThermalConfig::default();
        let total = 100_000.0;
        let pinned = peak_with_rotation(4, config, total, total);
        let slow = peak_with_rotation(4, config, 2_000.0, total);
        let fast = peak_with_rotation(4, config, 100.0, total);
        assert!(slow < pinned, "slow rotation {slow} vs pinned {pinned}");
        assert!(fast < slow, "fast rotation {fast} vs slow {slow}");
        // With fast rotation over 4 cores, the duty cycle is 1/4: peak
        // approaches a quarter of the pinned steady state.
        let quarter = pinned / 4.0;
        assert!(
            fast < quarter * 1.3,
            "fast rotation {fast} far above the duty-cycle bound {quarter}"
        );
    }

    #[test]
    fn idle_cores_cool_down() {
        let mut m = ThermalModel::new(2, ThermalConfig::default());
        m.advance(0, 5_000.0);
        let hot = m.temperature(0);
        m.advance(1, 5_000.0);
        assert!(m.temperature(0) < hot, "core 0 did not cool while idle");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_core() {
        let mut m = ThermalModel::new(2, ThermalConfig::default());
        m.advance(5, 1.0);
    }

    #[test]
    #[should_panic(expected = "cooling rate")]
    fn rejects_bad_cooling() {
        ThermalModel::new(
            2,
            ThermalConfig {
                cooling_per_kinstr: 1.5,
                ..ThermalConfig::default()
            },
        );
    }
}
