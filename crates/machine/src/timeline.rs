//! Windowed time-series instrumentation.
//!
//! Aggregate counts hide the *dynamics* of execution migration: when
//! the controller learns a split, how execution rotates among the
//! cores, what a phase change costs. [`record`] runs a machine in
//! fixed instruction windows and snapshots the per-window deltas.

use crate::machine::Machine;
use crate::stats::MachineStats;
use execmig_trace::Workload;

/// One instruction window's activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Cumulative instructions at the end of the window.
    pub instructions: u64,
    /// L2 misses within the window.
    pub l2_misses: u64,
    /// Migrations within the window.
    pub migrations: u64,
    /// L1-miss requests within the window.
    pub l1_requests: u64,
    /// Core executing at the end of the window.
    pub active_core: usize,
}

impl TimelineSample {
    /// L2 misses per kilo-instruction in this window.
    pub fn l2_miss_density(&self, window: u64) -> f64 {
        self.l2_misses as f64 * 1000.0 / window.max(1) as f64
    }
}

/// Runs `workload` on `machine` until `total_instructions`, sampling
/// every `window` instructions.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn record<W: Workload + ?Sized>(
    machine: &mut Machine,
    workload: &mut W,
    total_instructions: u64,
    window: u64,
) -> Vec<TimelineSample> {
    assert!(window > 0, "window must be positive");
    let mut samples = Vec::new();
    let mut prev = *machine.stats();
    let mut at = workload.instructions();
    while at < total_instructions {
        at = (at + window).min(total_instructions);
        machine.run(workload, at);
        let now = *machine.stats();
        samples.push(delta_sample(&prev, &now, machine.active_core()));
        prev = now;
    }
    samples
}

fn delta_sample(prev: &MachineStats, now: &MachineStats, core: usize) -> TimelineSample {
    TimelineSample {
        instructions: now.instructions,
        l2_misses: now.l2_misses - prev.l2_misses,
        migrations: now.migrations - prev.migrations,
        l1_requests: now.l1_requests - prev.l1_requests,
        active_core: core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use execmig_trace::suite;

    #[test]
    fn windows_cover_the_run() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("twolf").unwrap();
        let samples = record(&mut m, &mut *w, 1_000_000, 100_000);
        assert_eq!(samples.len(), 10);
        assert!(samples.last().unwrap().instructions >= 1_000_000);
        let total: u64 = samples.iter().map(|s| s.l2_misses).sum();
        assert_eq!(total, m.stats().l2_misses);
    }

    #[test]
    fn learning_phase_shows_in_the_timeline() {
        // On art, the early windows (controller still learning) have
        // high L2-miss density; late windows, after the split settles,
        // are far cheaper.
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        let samples = record(&mut m, &mut *w, 20_000_000, 1_000_000);
        let early = samples[0].l2_misses;
        let late = samples.last().unwrap().l2_misses;
        assert!(
            late * 4 < early,
            "no learning visible: early {early}, late {late}"
        );
    }

    #[test]
    fn migration_machine_rotates_cores() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("em3d").unwrap();
        let samples = record(&mut m, &mut *w, 10_000_000, 250_000);
        let cores: std::collections::HashSet<usize> =
            samples.iter().map(|s| s.active_core).collect();
        assert!(cores.len() >= 2, "never left core {:?}", cores);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("twolf").unwrap();
        let _ = record(&mut m, &mut *w, 1000, 0);
    }
}
