//! Windowed time-series instrumentation.
//!
//! Aggregate counts hide the *dynamics* of execution migration: when
//! the controller learns a split, how execution rotates among the
//! cores, what a phase change costs. [`record`] runs a machine in
//! fixed instruction windows and snapshots the per-window deltas —
//! cache misses, migrations, *and* the controller's inner state
//! (transition flips, designated subset, affinity-cache hit rate,
//! per-core occupancy), so filter flips suppressed by L2 filtering are
//! visible too.

use crate::machine::{Machine, MAX_CORES};
use crate::stats::MachineStats;
use execmig_core::TableStats;
use execmig_obs::impl_to_json;
use execmig_trace::Workload;

/// One instruction window's activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Cumulative instructions at the end of the window.
    pub instructions: u64,
    /// L2 misses within the window.
    pub l2_misses: u64,
    /// DL1 misses within the window.
    pub dl1_misses: u64,
    /// Migrations within the window.
    pub migrations: u64,
    /// Transition-filter flips within the window (≥ migrations: L2
    /// filtering can suppress the move but the splitter still flipped).
    pub transitions: u64,
    /// L1-miss requests within the window.
    pub l1_requests: u64,
    /// Core executing at the end of the window.
    pub active_core: usize,
    /// Working-set subset designated at the end of the window (0
    /// without a controller).
    pub subset: usize,
    /// Instructions executed per core within the window.
    pub occupancy: [u64; MAX_CORES],
    /// Affinity-cache hit rate within the window (0 when the window
    /// performed no table reads or no controller is configured).
    pub affinity_hit_rate: f64,
}

impl_to_json!(TimelineSample {
    instructions,
    l2_misses,
    dl1_misses,
    migrations,
    transitions,
    l1_requests,
    active_core,
    subset,
    occupancy,
    affinity_hit_rate
});

impl TimelineSample {
    /// L2 misses per kilo-instruction in this window.
    pub fn l2_miss_density(&self, window: u64) -> f64 {
        self.l2_misses as f64 * 1000.0 / window.max(1) as f64
    }
}

/// Runs `workload` on `machine` until `total_instructions`, sampling
/// every `window` instructions.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn record<W: Workload + ?Sized>(
    machine: &mut Machine,
    workload: &mut W,
    total_instructions: u64,
    window: u64,
) -> Vec<TimelineSample> {
    assert!(window > 0, "window must be positive");
    let mut samples = Vec::new();
    let mut prev = Baseline::of(machine);
    let mut at = workload.instructions();
    while at < total_instructions {
        at = (at + window).min(total_instructions);
        machine.run(workload, at);
        let now = Baseline::of(machine);
        samples.push(now.delta_sample(&prev, machine));
        prev = now;
    }
    samples
}

/// Cumulative counters at a window boundary.
struct Baseline {
    stats: MachineStats,
    transitions: u64,
    table: TableStats,
    core_instructions: [u64; MAX_CORES],
}

impl Baseline {
    fn of(machine: &Machine) -> Baseline {
        Baseline {
            stats: *machine.stats(),
            transitions: machine
                .controller()
                .map(|c| c.splitter_stats().transitions)
                .unwrap_or(0),
            table: machine
                .controller()
                .map(|c| c.table_stats())
                .unwrap_or_default(),
            core_instructions: *machine.core_instructions(),
        }
    }

    fn delta_sample(&self, prev: &Baseline, machine: &Machine) -> TimelineSample {
        let mut occupancy = [0u64; MAX_CORES];
        for (c, slot) in occupancy.iter_mut().enumerate() {
            *slot = self.core_instructions[c] - prev.core_instructions[c];
        }
        let reads = (self.table.hits - prev.table.hits) + (self.table.misses - prev.table.misses);
        let affinity_hit_rate = if reads == 0 {
            0.0
        } else {
            (self.table.hits - prev.table.hits) as f64 / reads as f64
        };
        TimelineSample {
            instructions: self.stats.instructions,
            l2_misses: self.stats.l2_misses - prev.stats.l2_misses,
            dl1_misses: self.stats.dl1_misses - prev.stats.dl1_misses,
            migrations: self.stats.migrations - prev.stats.migrations,
            transitions: self.transitions - prev.transitions,
            l1_requests: self.stats.l1_requests - prev.stats.l1_requests,
            active_core: machine.active_core(),
            subset: machine
                .controller()
                .map(|c| c.current_subset())
                .unwrap_or(0),
            occupancy,
            affinity_hit_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use execmig_trace::suite;

    #[test]
    fn windows_cover_the_run() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("twolf").unwrap();
        let samples = record(&mut m, &mut *w, 1_000_000, 100_000);
        assert_eq!(samples.len(), 10);
        assert!(samples.last().unwrap().instructions >= 1_000_000);
        let total: u64 = samples.iter().map(|s| s.l2_misses).sum();
        assert_eq!(total, m.stats().l2_misses);
        let dl1: u64 = samples.iter().map(|s| s.dl1_misses).sum();
        assert_eq!(dl1, m.stats().dl1_misses);
    }

    #[test]
    fn learning_phase_shows_in_the_timeline() {
        // On art, the early windows (controller still learning) have
        // high L2-miss density; late windows, after the split settles,
        // are far cheaper.
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        let samples = record(&mut m, &mut *w, 20_000_000, 1_000_000);
        let early = samples[0].l2_misses;
        let late = samples.last().unwrap().l2_misses;
        assert!(
            late * 4 < early,
            "no learning visible: early {early}, late {late}"
        );
    }

    #[test]
    fn migration_machine_rotates_cores() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("em3d").unwrap();
        let samples = record(&mut m, &mut *w, 10_000_000, 250_000);
        let cores: std::collections::HashSet<usize> =
            samples.iter().map(|s| s.active_core).collect();
        assert!(cores.len() >= 2, "never left core {:?}", cores);
    }

    #[test]
    fn rich_fields_are_consistent() {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("art").unwrap();
        let window = 500_000;
        let samples = record(&mut m, &mut *w, 5_000_000, window);
        let mut prev_instr = 0;
        for s in &samples {
            // Occupancy accounts for every instruction in the window.
            let occ: u64 = s.occupancy.iter().sum();
            assert_eq!(occ, s.instructions - prev_instr, "occupancy ≠ window");
            prev_instr = s.instructions;
            // A migration is always a transition; the converse can be
            // suppressed by L2 filtering.
            assert!(s.transitions >= s.migrations, "{s:?}");
            assert!(s.subset < 4);
            assert!((0.0..=1.0).contains(&s.affinity_hit_rate));
        }
        let migrations: u64 = samples.iter().map(|s| s.migrations).sum();
        assert_eq!(migrations, m.stats().migrations);
        // art migrates, so some window must show a flip.
        assert!(samples.iter().any(|s| s.transitions > 0));
    }

    #[test]
    fn samples_serialise_to_json() {
        use execmig_obs::ToJson;
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("twolf").unwrap();
        let samples = record(&mut m, &mut *w, 200_000, 100_000);
        let j = samples.to_json();
        let first = match &j {
            execmig_obs::Json::Arr(items) => &items[0],
            other => panic!("expected array, got {other:?}"),
        };
        assert!(first.get("dl1_misses").is_some());
        assert!(first.get("transitions").is_some());
        assert!(first.get("occupancy").is_some());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name("twolf").unwrap();
        let _ = record(&mut m, &mut *w, 1000, 0);
    }
}
