//! Vector clocks over a fixed thread universe.
//!
//! Every scheduling-relevant event in a model execution bumps the
//! acting thread's own component; happens-before is the pointwise
//! partial order. A store is in a thread's past iff the store's stamp
//! (the writer's own component at store time) is `<=` the reader's
//! clock entry for that writer.

/// Upper bound on live threads per model execution. Explorations are
/// exponential in thread count; eight is already far beyond what a
/// bounded DFS can chew through in a test.
pub(crate) const MAX_THREADS: usize = 8;

/// A fixed-width vector clock. Component `i` counts thread `i`'s
/// events that the owner has (transitively) synchronized with.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock(pub(crate) [u64; MAX_THREADS]);

impl VClock {
    /// Pointwise maximum: after `a.join(&b)`, `a` dominates both.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// Advance thread `t`'s own component by one event.
    pub(crate) fn bump(&mut self, t: usize) {
        self.0[t] += 1;
    }

    /// Component for thread `t`.
    pub(crate) fn get(&self, t: usize) -> u64 {
        self.0[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::default();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::default();
        b.bump(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 0);
    }
}
