//! The virtual scheduler and the bounded-DFS exploration driver.
//!
//! One *execution* runs the user closure with every shared-memory
//! operation (atomic load/store/RMW, fence, mutex lock/unlock, thread
//! spawn/join) routed through a single big `Mutex<ExecState>` plus a
//! `Condvar`: exactly one model thread is ever runnable-and-running,
//! so each execution is a deterministic function of the *trail* — the
//! recorded sequence of nondeterministic choices (which thread runs
//! next, which store a weak load reads). The explorer replays trails
//! depth-first, flipping the last unexhausted choice, until the whole
//! bounded space is covered or a violation (assertion failure inside
//! the closure, deadlock, or livelock) is found.
//!
//! Memory model, per location:
//!
//! - stores form a *modification order* (the order they executed in
//!   this interleaving); every store carries the writer's clock stamp
//!   and a *message* view — the vector clock an acquiring reader joins;
//! - a load may read any store not yet superseded for this thread: the
//!   candidate floor is the newest store that happens-before the load
//!   (stamp `<=` reader clock) or that this thread has already read or
//!   written (per-thread coherence floor). Anything newer is a legal
//!   *choice*, which is how `Relaxed` loads legally return stale data;
//! - `Release` stores publish the writer's full clock as the message;
//!   `Relaxed` stores publish only the clock captured by the writer's
//!   last `fence(Release)`; RMWs additionally join the message of the
//!   store they displace (release-sequence continuation);
//! - `SeqCst` is approximated as AcqRel plus a global `sc_view` clock
//!   joined both ways, which is enough to outlaw the classic
//!   store-buffering `r1 == r2 == 0` outcome (see the litmus tests).
//!
//! Preemption bounding follows Musuvathi & Qadeer: context switches at
//! points where the current thread could have continued are limited to
//! `Config::preemption_bound`; forced switches (block, finish) are
//! free. Small bounds find almost all real bugs at a fraction of the
//! state space.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::{VClock, MAX_THREADS};

/// A panic payload, as `std::thread` reports it.
pub(crate) type Payload = Box<dyn Any + Send + 'static>;

/// What joining a model thread yields: `Err` carries the panic payload.
pub(crate) type ThreadResult = Result<(), Payload>;

/// Entry point closure for a spawned model thread (results travel via
/// out-slots owned by the join handle, not through this return).
pub(crate) type BoxedRun = Box<dyn FnOnce() + Send + 'static>;

/// Sentinel panic payload used to unwind parked threads when an
/// execution is torn down (deadlock, livelock, state-space abort).
/// Swallowed by the thread wrappers; never observed by user code.
struct Aborted;

fn panic_aborted() -> ! {
    std::panic::panic_any(Aborted)
}

fn payload_str(p: &Payload) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Exploration limits. `Default` is sized for unit-test-scale models:
/// a couple of threads, a few dozen shared-memory operations each.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum *preemptive* context switches per execution (switches at
    /// a point where the current thread could have continued). `None`
    /// explores the full interleaving space. Forced switches — blocking
    /// on a mutex or join, thread exit — are never counted.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; exceeding it panics (the model
    /// is too big, not wrong). Shrink the test or the bound instead.
    pub max_executions: u64,
    /// Per-execution cap on shared-memory operations; exceeding it is
    /// reported as a violation (livelock: some loop is polling shared
    /// state without bound, which a DFS can never exhaust).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_executions: 500_000,
            max_steps: 100_000,
        }
    }
}

/// Summary of a completed exploration with no violation found.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct executions (interleaving × weak-read choices)
    /// explored.
    pub executions: u64,
}

/// A found violation: the first failing execution, replayed with event
/// logging to produce a human-readable trace.
#[derive(Debug)]
pub struct Violation {
    /// The panic message / deadlock description of the failure.
    pub message: String,
    /// Shared-memory event log of the failing execution (tail).
    pub trace: Vec<String>,
    /// Executions explored up to and including the failing one.
    pub executions: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model checker violation (execution #{}): {}",
            self.executions, self.message
        )?;
        let tail = 40usize;
        let skip = self.trace.len().saturating_sub(tail);
        if skip > 0 {
            writeln!(f, "  … {skip} earlier events elided …")?;
        }
        for line in self.trace.iter().skip(skip) {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// One recorded nondeterministic choice on the trail.
#[derive(Clone, Copy, Debug)]
struct Choice {
    taken: usize,
    options: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadSlot {
    status: Status,
    clock: VClock,
    /// Clock captured at the last `fence(Release)`: the message view
    /// subsequent `Relaxed` stores publish.
    rel_fence: VClock,
    /// Messages accumulated by `Relaxed` loads, cashed in by a later
    /// `fence(Acquire)`.
    acq_pending: VClock,
    result: Option<ThreadResult>,
}

impl ThreadSlot {
    fn with_clock(clock: VClock) -> ThreadSlot {
        ThreadSlot {
            status: Status::Runnable,
            clock,
            rel_fence: VClock::default(),
            acq_pending: VClock::default(),
            result: None,
        }
    }
}

/// One store in a location's modification order.
struct Store {
    value: u64,
    /// Writer's own clock component at store time; visibility test is
    /// `stamp <= reader.clock[writer]`.
    stamp: u64,
    writer: usize,
    /// The view an acquiring reader joins when it reads this store.
    msg: VClock,
}

struct Location {
    stores: Vec<Store>,
    /// Per-thread coherence floor: index of the newest store this
    /// thread has read or written; it may never again read older.
    read_floor: [usize; MAX_THREADS],
}

struct MutexSlot {
    locked: bool,
    /// Released-with view: the next locker joins it (lock/unlock are
    /// acquire/release pairs).
    msg: VClock,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    locs: Vec<Location>,
    mutexes: Vec<MutexSlot>,
    active: usize,
    preemptions: usize,
    steps: u64,
    trail: Vec<Choice>,
    pos: usize,
    aborted: bool,
    failure: Option<String>,
    log: Option<Vec<String>>,
    sc_view: VClock,
}

impl ExecState {
    fn new(trail: Vec<Choice>, want_log: bool) -> ExecState {
        let mut root = VClock::default();
        root.bump(0);
        ExecState {
            threads: vec![ThreadSlot::with_clock(root)],
            locs: Vec::new(),
            mutexes: Vec::new(),
            active: 0,
            preemptions: 0,
            steps: 0,
            trail,
            pos: 0,
            aborted: false,
            failure: None,
            log: want_log.then(Vec::new),
            sc_view: VClock::default(),
        }
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn log_ev(&mut self, line: impl FnOnce() -> String) {
        if let Some(log) = self.log.as_mut() {
            log.push(line());
            if log.len() > 2048 {
                log.drain(..1024);
            }
        }
    }
}

/// Handle to the currently running execution, stored in a thread-local
/// so the `sync`/`thread` shims can find their scheduler.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
    pub(crate) gen: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The execution context of the calling OS thread, if it is a model
/// thread of a live execution.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

struct CtxGuard;

impl CtxGuard {
    fn set(ctx: Ctx) -> CtxGuard {
        CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            assert!(slot.is_none(), "nested model executions are not supported");
            *slot = Some(ctx);
        });
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

static NEXT_GEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// One model execution: the big lock serializing every model thread,
/// plus the OS-thread handles the controller joins at teardown.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    config: Config,
    pub(crate) gen: u64,
    handles: Mutex<Vec<(usize, std::thread::JoinHandle<()>)>>,
}

impl Exec {
    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        // The state mutex is only poisoned by an internal checker bug;
        // keep going so teardown can still drain threads.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record (or replay) one nondeterministic choice with
    /// `options >= 1` alternatives; returns the index taken.
    fn decide(&self, st: &mut ExecState, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if st.pos < st.trail.len() {
            let c = st.trail[st.pos];
            assert_eq!(
                c.options, options,
                "model-internal: execution diverged from its trail (is the \
                 closure deterministic apart from scheduling?)"
            );
            st.pos += 1;
            c.taken
        } else {
            st.trail.push(Choice { taken: 0, options });
            st.pos += 1;
            0
        }
    }

    fn abort_locked(&self, st: &mut ExecState, msg: String) {
        st.aborted = true;
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    fn wait_until_active(&self, mut st: MutexGuard<'_, ExecState>, me: usize) {
        while st.active != me && !st.aborted {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let aborted = st.aborted;
        drop(st);
        if aborted {
            panic_aborted();
        }
    }

    /// Scheduling point before every shared-memory operation: the
    /// explorer may preempt the calling thread here.
    pub(crate) fn yield_op(&self, me: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic_aborted();
        }
        st.steps += 1;
        if st.steps > self.config.max_steps {
            let cap = self.config.max_steps;
            self.abort_locked(
                &mut st,
                format!(
                    "step budget of {cap} shared-memory operations exceeded: \
                     a loop is polling shared state without bound (livelock); \
                     model tests must make bounded progress"
                ),
            );
            drop(st);
            panic_aborted();
        }
        let runnable = st.runnable();
        debug_assert!(runnable.contains(&me), "active thread not runnable");
        if runnable.len() <= 1 {
            return;
        }
        if self
            .config
            .preemption_bound
            .is_some_and(|b| st.preemptions >= b)
        {
            return;
        }
        let mut options: Vec<usize> = Vec::with_capacity(runnable.len());
        options.push(me);
        options.extend(runnable.iter().copied().filter(|&t| t != me));
        let k = self.decide(&mut st, options.len());
        let pick = options[k];
        if pick != me {
            st.preemptions += 1;
            st.active = pick;
            st.log_ev(|| format!("t{me} preempted; t{pick} runs"));
            self.cv.notify_all();
            self.wait_until_active(st, me);
        }
    }

    /// The calling thread just blocked (status already updated): hand
    /// the CPU to some runnable thread, or declare deadlock.
    fn switch_from_blocked(&self, mut st: MutexGuard<'_, ExecState>, me: usize) {
        let runnable = st.runnable();
        if runnable.is_empty() {
            let shape: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("t{i}:{:?}", t.status))
                .collect();
            self.abort_locked(
                &mut st,
                format!("deadlock: no runnable thread [{}]", shape.join(" ")),
            );
            drop(st);
            panic_aborted();
        }
        let k = self.decide(&mut st, runnable.len());
        st.active = runnable[k];
        self.cv.notify_all();
        self.wait_until_active(st, me);
    }

    pub(crate) fn record_failure(&self, p: &Payload) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(payload_str(p));
        }
    }

    fn finish_thread(&self, me: usize, result: Option<ThreadResult>) {
        let mut st = self.lock_state();
        st.threads[me].status = Status::Finished;
        if let Some(r) = result {
            st.threads[me].result = Some(r);
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(me) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.log_ev(|| format!("t{me} finished"));
        if st.aborted {
            self.cv.notify_all();
            return;
        }
        let runnable = st.runnable();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.active = usize::MAX;
            } else {
                let shape: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("t{i}:{:?}", t.status))
                    .collect();
                self.abort_locked(
                    &mut st,
                    format!(
                        "deadlock: t{me} exited leaving no runnable thread [{}]",
                        shape.join(" ")
                    ),
                );
            }
            return;
        }
        let k = self.decide(&mut st, runnable.len());
        st.active = runnable[k];
        self.cv.notify_all();
    }

    // ---- threads -------------------------------------------------------

    pub(crate) fn spawn_model(self: &Arc<Self>, parent: usize, f: BoxedRun) -> usize {
        self.yield_op(parent);
        let tid;
        {
            let mut st = self.lock_state();
            tid = st.threads.len();
            assert!(
                tid < MAX_THREADS,
                "execmig-model: at most {MAX_THREADS} threads per execution"
            );
            st.threads[parent].clock.bump(parent);
            let clock = st.threads[parent].clock;
            st.threads.push(ThreadSlot::with_clock(clock));
            st.log_ev(|| format!("t{parent} spawns t{tid}"));
        }
        let exec = Arc::clone(self);
        let gen = self.gen;
        let handle = std::thread::Builder::new()
            .name(format!("execmig-model-t{tid}"))
            .spawn(move || {
                let _guard = CtxGuard::set(Ctx {
                    exec: Arc::clone(&exec),
                    tid,
                    gen,
                });
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let st = exec.lock_state();
                    exec.wait_until_active(st, tid);
                    f();
                }));
                match outcome {
                    Ok(()) => exec.finish_thread(tid, Some(Ok(()))),
                    Err(p) => {
                        if p.is::<Aborted>() {
                            exec.finish_thread(tid, None);
                        } else {
                            exec.record_failure(&p);
                            exec.finish_thread(tid, Some(Err(p)));
                        }
                    }
                }
            })
            .expect("execmig-model: failed to spawn OS thread");
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((tid, handle));
        tid
    }

    pub(crate) fn join_model(&self, me: usize, target: usize) -> ThreadResult {
        self.yield_op(me);
        loop {
            let mut st = self.lock_state();
            if st.aborted {
                drop(st);
                panic_aborted();
            }
            if st.threads[target].status == Status::Finished {
                match st.threads[target].result.take() {
                    Some(r) => {
                        let tclock = st.threads[target].clock;
                        st.threads[me].clock.join(&tclock);
                        st.log_ev(|| format!("t{me} joined t{target}"));
                        return r;
                    }
                    None => {
                        // Finished without a result only on the abort
                        // path; tear this thread down too.
                        drop(st);
                        panic_aborted();
                    }
                }
            }
            st.threads[me].status = Status::BlockedJoin(target);
            st.log_ev(|| format!("t{me} blocks joining t{target}"));
            self.switch_from_blocked(st, me);
        }
    }

    /// Join the raw OS threads behind the given model tids. Used by the
    /// scope teardown when an execution aborts mid-unwind: borrowed
    /// stack frames must outlive the threads that reference them.
    pub(crate) fn os_join_tids(&self, tids: &[usize]) {
        let taken: Vec<std::thread::JoinHandle<()>> = {
            let mut g = self
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut keep = Vec::new();
            let mut take = Vec::new();
            for (t, h) in g.drain(..) {
                if tids.contains(&t) {
                    take.push(h);
                } else {
                    keep.push((t, h));
                }
            }
            *g = keep;
            take
        };
        for h in taken {
            let _ = h.join();
        }
    }

    // ---- locations -----------------------------------------------------

    pub(crate) fn alloc_loc(&self, creator: usize, init: u64) -> usize {
        let mut st = self.lock_state();
        st.threads[creator].clock.bump(creator);
        let clock = st.threads[creator].clock;
        let id = st.locs.len();
        st.locs.push(Location {
            stores: vec![Store {
                value: init,
                stamp: clock.get(creator),
                writer: creator,
                msg: clock,
            }],
            read_floor: [0; MAX_THREADS],
        });
        id
    }

    pub(crate) fn alloc_mutex(&self, creator: usize) -> usize {
        let mut st = self.lock_state();
        let clock = st.threads[creator].clock;
        let id = st.mutexes.len();
        st.mutexes.push(MutexSlot {
            locked: false,
            msg: clock,
        });
        id
    }

    // ---- atomics -------------------------------------------------------

    /// Indices of stores the calling thread may legally read: everything
    /// at or above the coherence/happens-before floor.
    fn readable_range(st: &ExecState, me: usize, loc: usize) -> (usize, usize) {
        let clock = st.threads[me].clock;
        let l = &st.locs[loc];
        let mut floor = l.read_floor[me];
        for (i, s) in l.stores.iter().enumerate() {
            if i > floor && s.stamp <= clock.get(s.writer) {
                floor = i;
            }
        }
        (floor, l.stores.len())
    }

    pub(crate) fn op_load(&self, me: usize, loc: usize, ord: Ordering) -> u64 {
        assert!(
            matches!(
                ord,
                Ordering::Relaxed | Ordering::Acquire | Ordering::SeqCst
            ),
            "invalid atomic load ordering {ord:?}"
        );
        self.yield_op(me);
        let mut st = self.lock_state();
        if ord == Ordering::SeqCst {
            let sc = st.sc_view;
            st.threads[me].clock.join(&sc);
        }
        let (floor, n) = Self::readable_range(&st, me, loc);
        let k = self.decide(&mut st, n - floor);
        let idx = n - 1 - k;
        let (value, msg) = {
            let s = &st.locs[loc].stores[idx];
            (s.value, s.msg)
        };
        if idx > st.locs[loc].read_floor[me] {
            st.locs[loc].read_floor[me] = idx;
        }
        match ord {
            Ordering::Acquire | Ordering::SeqCst => st.threads[me].clock.join(&msg),
            _ => st.threads[me].acq_pending.join(&msg),
        }
        if ord == Ordering::SeqCst {
            let c = st.threads[me].clock;
            st.sc_view.join(&c);
        }
        st.log_ev(|| {
            let stale = n - 1 - idx;
            format!("t{me} load loc{loc} -> {value} ({ord:?}, {stale} behind newest)")
        });
        value
    }

    pub(crate) fn op_store(&self, me: usize, loc: usize, value: u64, ord: Ordering) {
        assert!(
            matches!(
                ord,
                Ordering::Relaxed | Ordering::Release | Ordering::SeqCst
            ),
            "invalid atomic store ordering {ord:?}"
        );
        self.yield_op(me);
        let mut st = self.lock_state();
        if ord == Ordering::SeqCst {
            let sc = st.sc_view;
            st.threads[me].clock.join(&sc);
        }
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock;
        let msg = match ord {
            Ordering::Release | Ordering::SeqCst => clock,
            _ => st.threads[me].rel_fence,
        };
        st.locs[loc].stores.push(Store {
            value,
            stamp: clock.get(me),
            writer: me,
            msg,
        });
        let newest = st.locs[loc].stores.len() - 1;
        st.locs[loc].read_floor[me] = newest;
        if ord == Ordering::SeqCst {
            st.sc_view.join(&clock);
        }
        st.log_ev(|| format!("t{me} store loc{loc} = {value} ({ord:?})"));
    }

    /// Read-modify-write: always acts on the newest store (RMWs read
    /// the latest value in the modification order), continues the
    /// release sequence of the store it displaces.
    pub(crate) fn op_rmw(
        &self,
        me: usize,
        loc: usize,
        f: &mut dyn FnMut(u64) -> u64,
        ord: Ordering,
    ) -> u64 {
        self.yield_op(me);
        let mut st = self.lock_state();
        if ord == Ordering::SeqCst {
            let sc = st.sc_view;
            st.threads[me].clock.join(&sc);
        }
        let (old, last_msg) = {
            let stores = &st.locs[loc].stores;
            let s = stores.last().expect("location has an initial store");
            (s.value, s.msg)
        };
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                st.threads[me].clock.join(&last_msg);
            }
            _ => st.threads[me].acq_pending.join(&last_msg),
        }
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock;
        let mut msg = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => clock,
            _ => st.threads[me].rel_fence,
        };
        msg.join(&last_msg);
        let value = f(old);
        st.locs[loc].stores.push(Store {
            value,
            stamp: clock.get(me),
            writer: me,
            msg,
        });
        let newest = st.locs[loc].stores.len() - 1;
        st.locs[loc].read_floor[me] = newest;
        if ord == Ordering::SeqCst {
            st.sc_view.join(&clock);
        }
        st.log_ev(|| format!("t{me} rmw loc{loc}: {old} -> {value} ({ord:?})"));
        old
    }

    /// Compare-exchange: reads the newest store (a strengthening — real
    /// hardware may fail against a stale value, which only ever *adds*
    /// failure paths the surrounding code must already tolerate).
    pub(crate) fn op_cas(
        &self,
        me: usize,
        loc: usize,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.yield_op(me);
        let mut st = self.lock_state();
        if success == Ordering::SeqCst || failure == Ordering::SeqCst {
            let sc = st.sc_view;
            st.threads[me].clock.join(&sc);
        }
        let (old, last_msg, newest) = {
            let stores = &st.locs[loc].stores;
            let s = stores.last().expect("location has an initial store");
            (s.value, s.msg, stores.len() - 1)
        };
        if old != expected {
            match failure {
                Ordering::Acquire | Ordering::SeqCst => st.threads[me].clock.join(&last_msg),
                _ => st.threads[me].acq_pending.join(&last_msg),
            }
            if newest > st.locs[loc].read_floor[me] {
                st.locs[loc].read_floor[me] = newest;
            }
            st.log_ev(|| format!("t{me} cas loc{loc} failed: found {old}, wanted {expected}"));
            return Err(old);
        }
        match success {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                st.threads[me].clock.join(&last_msg);
            }
            _ => st.threads[me].acq_pending.join(&last_msg),
        }
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock;
        let mut msg = match success {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => clock,
            _ => st.threads[me].rel_fence,
        };
        msg.join(&last_msg);
        st.locs[loc].stores.push(Store {
            value: new,
            stamp: clock.get(me),
            writer: me,
            msg,
        });
        let idx = st.locs[loc].stores.len() - 1;
        st.locs[loc].read_floor[me] = idx;
        if success == Ordering::SeqCst {
            st.sc_view.join(&clock);
        }
        st.log_ev(|| format!("t{me} cas loc{loc}: {old} -> {new}"));
        Ok(old)
    }

    pub(crate) fn op_fence(&self, me: usize, ord: Ordering) {
        assert!(
            !matches!(ord, Ordering::Relaxed),
            "fence(Relaxed) is not a fence"
        );
        self.yield_op(me);
        let mut st = self.lock_state();
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let p = st.threads[me].acq_pending;
            st.threads[me].clock.join(&p);
        }
        if ord == Ordering::SeqCst {
            let sc = st.sc_view;
            st.threads[me].clock.join(&sc);
            let c = st.threads[me].clock;
            st.sc_view.join(&c);
        }
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            let c = st.threads[me].clock;
            st.threads[me].rel_fence = c;
        }
        st.log_ev(|| format!("t{me} fence({ord:?})"));
    }

    // ---- mutexes -------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, mid: usize) {
        self.yield_op(me);
        loop {
            let mut st = self.lock_state();
            if st.aborted {
                drop(st);
                panic_aborted();
            }
            if !st.mutexes[mid].locked {
                st.mutexes[mid].locked = true;
                let msg = st.mutexes[mid].msg;
                st.threads[me].clock.join(&msg);
                st.log_ev(|| format!("t{me} locks m{mid}"));
                return;
            }
            st.threads[me].status = Status::BlockedMutex(mid);
            st.log_ev(|| format!("t{me} blocks on m{mid}"));
            self.switch_from_blocked(st, me);
        }
    }

    /// Never a scheduling point and never panics: runs inside guard
    /// drops, including drops during an abort unwind.
    pub(crate) fn mutex_unlock(&self, me: usize, mid: usize) {
        let mut st = self.lock_state();
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock;
        st.mutexes[mid].msg = clock;
        st.mutexes[mid].locked = false;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(mid) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.log_ev(|| format!("t{me} unlocks m{mid}"));
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.lock_state().aborted
    }
}

struct RunOutcome {
    failure: Option<String>,
    trail: Vec<Choice>,
    log: Vec<String>,
}

fn run_one<F: Fn()>(config: &Config, f: &F, trail: Vec<Choice>, want_log: bool) -> RunOutcome {
    let gen = NEXT_GEN.fetch_add(1, Ordering::Relaxed) + 1;
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState::new(trail, want_log)),
        cv: Condvar::new(),
        config: config.clone(),
        gen,
        handles: Mutex::new(Vec::new()),
    });
    let guard = CtxGuard::set(Ctx {
        exec: Arc::clone(&exec),
        tid: 0,
        gen,
    });
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => exec.finish_thread(0, None),
        Err(p) => {
            if !p.is::<Aborted>() {
                exec.record_failure(&p);
            }
            exec.finish_thread(0, None);
        }
    }
    // Spawned threads may still be running (and spawning); drain until
    // every OS thread has exited, so the next execution starts clean.
    loop {
        let hs: Vec<(usize, std::thread::JoinHandle<()>)> = {
            let mut g = exec
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.drain(..).collect()
        };
        if hs.is_empty() {
            break;
        }
        for (_tid, h) in hs {
            let _ = h.join();
        }
    }
    drop(guard);
    let mut st = exec
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    RunOutcome {
        failure: st.failure.take(),
        trail: std::mem::take(&mut st.trail),
        log: st.log.take().unwrap_or_default(),
    }
}

/// Exhaustively explore `f` under `config`. Returns `Ok` with the
/// execution count if every bounded interleaving (and every legal
/// weak-memory read) passes, or `Err` with the first violation found,
/// replayed to capture its shared-memory event trace.
///
/// `f` runs once per execution and must be deterministic apart from
/// the scheduling the checker controls: construct all shared state
/// inside the closure, never branch on wall-clock time, and keep every
/// loop bounded (poll loops diverge under exhaustive scheduling).
pub fn try_explore<F: Fn()>(config: Config, f: F) -> Result<Report, Box<Violation>> {
    assert!(
        current().is_none(),
        "explore() may not be called from inside a model execution"
    );
    let mut trail: Vec<Choice> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= config.max_executions,
            "state space exceeds {} executions; shrink the model or lower \
             the preemption bound",
            config.max_executions
        );
        let out = run_one(&config, &f, trail, false);
        trail = out.trail;
        if let Some(message) = out.failure {
            // Executions are deterministic in their trail: replaying the
            // failing trail with logging on reproduces the failure and
            // yields its event trace.
            let replay = run_one(&config, &f, trail.clone(), true);
            return Err(Box::new(Violation {
                message,
                trace: replay.log,
                executions,
            }));
        }
        loop {
            match trail.last_mut() {
                None => return Ok(Report { executions }),
                Some(c) if c.taken + 1 < c.options => {
                    c.taken += 1;
                    break;
                }
                Some(_) => {
                    let _ = trail.pop();
                }
            }
        }
    }
}

/// [`try_explore`] with [`Config::default`], panicking on violation.
pub fn explore<F: Fn()>(f: F) -> Report {
    explore_with(Config::default(), f)
}

/// [`try_explore`] that panics with the rendered violation (message
/// plus event trace) — the convenient form for tests that expect the
/// model to be clean.
pub fn explore_with<F: Fn()>(config: Config, f: F) -> Report {
    match try_explore(config, f) {
        Ok(report) => report,
        Err(violation) => panic!("{violation}"),
    }
}

/// True while the calling thread belongs to an aborting execution;
/// used by scope teardown to pick the non-scheduling join path.
pub(crate) fn current_aborted() -> bool {
    current().is_some_and(|ctx| ctx.exec.is_aborted())
}

/// Unwind with the teardown sentinel (scope teardown re-raises it
/// after securing its borrowed frame).
pub(crate) fn abort_unwind() -> ! {
    panic_aborted()
}
