//! `execmig-model` — a dependency-free, loom-style interleaving model
//! checker for the repo's lock-free telemetry and runner layers.
//!
//! The repo's hot paths (the `obs::hub` SPSC beat rings, the runner's
//! claim/complete protocol) use hand-picked `Relaxed`/`Release`
//! orderings. This crate makes those choices *checkable*: code written
//! against [`sync`] and [`thread`] compiles to plain std primitives in
//! real builds, but inside [`explore`] every atomic operation, mutex
//! acquisition, and thread spawn/join becomes a decision point for a
//! virtual scheduler that exhaustively enumerates bounded thread
//! interleavings — *and* every stale value a weak load could legally
//! return under the C++11/Rust memory model (per-location modification
//! orders plus happens-before vector clocks; see `exec.rs` for the
//! exact rules).
//!
//! ```
//! use execmig_model::{explore, sync::{AtomicU64, Arc, Ordering}};
//!
//! // Message passing: the Release/Acquire pair makes the payload
//! // visible; explore() proves it for every bounded interleaving.
//! explore(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let data = Arc::new(AtomicU64::new(0));
//!     let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
//!     let t = execmig_model::thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);   // ord: published by the Release below
//!         f2.store(1, Ordering::Release);    // ord: pairs with the Acquire load
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().expect("writer");
//! });
//! ```
//!
//! Ground rules for model tests (enforced by panics where possible):
//! construct all shared state inside the closure, keep every loop
//! bounded (no polling), never branch on wall-clock time, at most 8
//! threads. Violations are reported with the failing execution's
//! shared-memory event trace, replayed deterministically from the
//! recorded decision trail.

mod clock;
mod exec;
pub mod sync;
pub mod thread;

pub use exec::{explore, explore_with, try_explore, Config, Report, Violation};

#[cfg(test)]
mod litmus {
    use super::sync::{fence, Arc, AtomicU64, Mutex, Ordering};
    use super::{explore, explore_with, try_explore, Config};

    fn pair() -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)))
    }

    /// Message passing with Release/Acquire never loses the payload.
    #[test]
    fn message_passing_release_acquire_is_clean() {
        let report = explore(|| {
            let (flag, data) = pair();
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "payload lost");
            }
            t.join().expect("writer thread");
        });
        // Schedule choices plus the two weak loads give > 1 execution.
        assert!(report.executions > 1, "explored {}", report.executions);
    }

    /// Weakening the flag store to Relaxed must surface the stale read:
    /// the checker's raison d'être.
    #[test]
    fn message_passing_relaxed_flag_is_caught() {
        let violation = try_explore(Config::default(), || {
            let (flag, data) = pair();
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // deliberately broken
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "payload lost");
            }
            t.join().expect("writer thread");
        })
        .expect_err("relaxed flag publication must be detected");
        assert!(
            violation.message.contains("payload lost"),
            "unexpected violation: {violation}"
        );
        assert!(!violation.trace.is_empty(), "violation carries a trace");
    }

    /// Release *fence* before a Relaxed flag store also publishes.
    #[test]
    fn release_fence_publishes() {
        explore(|| {
            let (flag, data) = pair();
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                fence(Ordering::Release);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "fence did not publish");
            }
            t.join().expect("writer thread");
        });
    }

    /// Store buffering: with SeqCst both-threads-read-zero is
    /// impossible; the sc_view approximation must enforce that.
    #[test]
    fn store_buffering_seqcst_forbids_both_zero() {
        explore(|| {
            let (x, y) = pair();
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r0 = x.load(Ordering::SeqCst);
            let r1 = t.join().expect("other side");
            assert!(r0 == 1 || r1 == 1, "SC forbids r0 == r1 == 0");
        });
    }

    /// The same shape under Relaxed must exhibit both-zero — if the
    /// checker can't produce it, it isn't weak-memory-faithful.
    #[test]
    fn store_buffering_relaxed_exhibits_both_zero() {
        let violation = try_explore(Config::default(), || {
            let (x, y) = pair();
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r0 = x.load(Ordering::Relaxed);
            let r1 = t.join().expect("other side");
            assert!(r0 == 1 || r1 == 1, "relaxed SB: both zero observed");
        })
        .expect_err("relaxed store buffering must reach r0 == r1 == 0");
        assert!(violation.message.contains("both zero"));
    }

    /// Per-location coherence: a thread never reads backwards in the
    /// modification order, even fully Relaxed.
    #[test]
    fn coherence_no_backward_reads() {
        explore(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                x2.store(2, Ordering::Relaxed);
            });
            let a = x.load(Ordering::Relaxed);
            let b = x.load(Ordering::Relaxed);
            assert!(b >= a, "coherence violated: read {b} after {a}");
            t.join().expect("writer thread");
        });
    }

    /// RMWs always hit the newest value: concurrent increments never
    /// lose updates.
    #[test]
    fn fetch_add_never_loses_updates() {
        explore(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = crate::thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().expect("incrementer");
            assert_eq!(c.load(Ordering::Relaxed), 3);
        });
    }

    /// Mutexes are acquire/release pairs: the protected counter is
    /// race-free and the final value exact.
    #[test]
    fn mutex_counter_is_exact() {
        explore(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = crate::thread::spawn(move || {
                for _ in 0..2 {
                    *m2.lock().expect("lock") += 1;
                }
            });
            *m.lock().expect("lock") += 1;
            t.join().expect("adder");
            assert_eq!(*m.lock().expect("lock"), 3);
        });
    }

    /// A classic lock-order inversion deadlocks in some interleaving;
    /// the checker must find and report it.
    #[test]
    fn deadlock_is_detected() {
        let violation = try_explore(Config::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = crate::thread::spawn(move || {
                let _ga = a2.lock().expect("a");
                let _gb = b2.lock().expect("b");
            });
            {
                let _gb = b.lock().expect("b");
                let _ga = a.lock().expect("a");
            }
            t.join().expect("other side");
        })
        .expect_err("AB/BA locking must deadlock in some interleaving");
        assert!(
            violation.message.contains("deadlock"),
            "unexpected violation: {violation}"
        );
    }

    /// Scoped threads may borrow; results come back typed.
    #[test]
    fn scoped_threads_borrow_and_join() {
        explore(|| {
            let data = [1u64, 2, 3];
            let total = crate::thread::scope(|s| {
                let h1 = s.spawn(|| data[0] + data[1]);
                let h2 = s.spawn(|| data[2]);
                h1.join().expect("h1") + h2.join().expect("h2")
            });
            assert_eq!(total, 6);
        });
    }

    /// Outside explore() the shim is plain std: no execution, no
    /// scheduler, full thread-parallelism.
    #[test]
    fn fallback_mode_is_plain_std() {
        let x = Arc::new(AtomicU64::new(7));
        assert_eq!(x.load(Ordering::SeqCst), 7);
        x.store(9, Ordering::SeqCst);
        assert_eq!(x.fetch_add(1, Ordering::AcqRel), 9);
        let m = Mutex::new(5u32);
        *m.lock().expect("lock") += 1;
        assert_eq!(m.into_inner().expect("into_inner"), 6);
        let h = crate::thread::spawn(|| 11u8);
        assert_eq!(h.join().expect("join"), 11);
        let s = crate::thread::scope(|s| s.spawn(|| 13u8).join().expect("scoped"));
        assert_eq!(s, 13);
    }

    /// A panic inside a spawned model thread propagates through join
    /// and is reported as the violation.
    #[test]
    fn child_panic_becomes_violation() {
        let violation = try_explore(Config::default(), || {
            let t = crate::thread::spawn(|| panic!("child blew up"));
            let _ = t.join();
        })
        .expect_err("child panic is a violation");
        assert!(violation.message.contains("child blew up"));
    }

    /// Unbounded polling loops are rejected as livelock, not spun on
    /// forever.
    #[test]
    fn polling_loop_is_reported_as_livelock() {
        let violation = try_explore(
            Config {
                preemption_bound: Some(1),
                max_steps: 200,
                ..Config::default()
            },
            || {
                let flag = Arc::new(AtomicU64::new(0));
                let f2 = Arc::clone(&flag);
                let t = crate::thread::spawn(move || {
                    f2.store(1, Ordering::Release);
                });
                // Deliberately unbounded: the checker must cut it off.
                while flag.load(Ordering::Acquire) == 0 {}
                t.join().expect("setter");
            },
        )
        .expect_err("unbounded polling must trip the step budget");
        assert!(
            violation.message.contains("step budget"),
            "unexpected violation: {violation}"
        );
    }

    /// explore_with honors the preemption bound: bound 0 runs each
    /// thread to completion once scheduled, shrinking the space.
    #[test]
    fn preemption_bound_shrinks_the_space() {
        let tight = explore_with(
            Config {
                preemption_bound: Some(0),
                ..Config::default()
            },
            sb_seqcst_body,
        );
        let loose = explore_with(
            Config {
                preemption_bound: Some(2),
                ..Config::default()
            },
            sb_seqcst_body,
        );
        assert!(
            tight.executions < loose.executions,
            "bound 0 explored {} vs bound 2 {}",
            tight.executions,
            loose.executions
        );
    }

    fn sb_seqcst_body() {
        let (x, y) = pair();
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = crate::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r0 = x.load(Ordering::SeqCst);
        let r1 = t.join().expect("other side");
        assert!(r0 == 1 || r1 == 1);
    }
}
