//! Drop-in replacements for the `std::sync` primitives the lock-free
//! layer uses. Outside a model execution they behave exactly like the
//! std types they wrap; inside [`explore`](crate::explore) every
//! operation is a scheduling point routed through the virtual
//! scheduler, with weak-memory-faithful load semantics.
//!
//! The types register themselves with the live execution at
//! construction time, so all shared state a model test exercises must
//! be created *inside* the explore closure. Using a pre-existing
//! atomic inside a model execution panics with a pointed message
//! rather than silently escaping the checker.

use std::sync::atomic::{
    AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize,
};

use crate::exec::{self, Ctx};

pub use std::sync::atomic::Ordering;
pub use std::sync::{Arc, LockResult, PoisonError};

/// A registered model location: generation ties it to one execution.
#[derive(Clone, Copy, Debug)]
struct Loc {
    gen: u64,
    id: usize,
}

fn register_loc(init: u64) -> Option<Loc> {
    exec::current().map(|ctx| Loc {
        gen: ctx.gen,
        id: ctx.exec.alloc_loc(ctx.tid, init),
    })
}

/// Resolve the model route for an operation: `Some` inside a live
/// execution (with the location id), `None` for plain std behavior.
fn model_route(model: Option<Loc>, what: &str) -> Option<(Ctx, usize)> {
    match (exec::current(), model) {
        (Some(ctx), Some(loc)) => {
            assert!(
                ctx.gen == loc.gen,
                "model {what} constructed in a different execution than it is \
                 used in; create all shared state inside the explore() closure"
            );
            Some((ctx, loc.id))
        }
        (Some(_), None) => panic!(
            "model {what} constructed outside the model execution but used \
             inside it; create all shared state inside the explore() closure"
        ),
        _ => None,
    }
}

macro_rules! model_atomic {
    ($name:ident, $std:ident, $raw:ty, $to_u64:expr, $from_u64:expr) => {
        /// Model-aware atomic: std semantics outside an execution,
        /// scheduler-routed weak-memory semantics inside one.
        #[derive(Debug)]
        pub struct $name {
            real: $std,
            model: Option<Loc>,
        }

        impl $name {
            /// Creates the atomic, registering it with the live model
            /// execution if one is running on this thread.
            pub fn new(v: $raw) -> $name {
                $name {
                    real: <$std>::new(v),
                    model: register_loc(($to_u64)(v)),
                }
            }

            /// Atomic load with the given ordering.
            pub fn load(&self, ord: Ordering) -> $raw {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => ($from_u64)(ctx.exec.op_load(ctx.tid, id, ord)),
                    None => self.real.load(ord),
                }
            }

            /// Atomic store with the given ordering.
            pub fn store(&self, v: $raw, ord: Ordering) {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => ctx.exec.op_store(ctx.tid, id, ($to_u64)(v), ord),
                    None => self.real.store(v, ord),
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: $raw, ord: Ordering) -> $raw {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => {
                        let word = ($to_u64)(v);
                        ($from_u64)(ctx.exec.op_rmw(ctx.tid, id, &mut |_| word, ord))
                    }
                    None => self.real.swap(v, ord),
                }
            }

            /// Atomic compare-exchange; `Ok(previous)` on success.
            pub fn compare_exchange(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => ctx
                        .exec
                        .op_cas(
                            ctx.tid,
                            id,
                            ($to_u64)(current),
                            ($to_u64)(new),
                            success,
                            failure,
                        )
                        .map($from_u64)
                        .map_err($from_u64),
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }
        }
    };
}

model_atomic!(AtomicU64, StdAtomicU64, u64, |v: u64| v, |w: u64| w);
model_atomic!(
    AtomicUsize,
    StdAtomicUsize,
    usize,
    |v: usize| v as u64,
    |w: u64| w as usize
);
model_atomic!(
    AtomicBool,
    StdAtomicBool,
    bool,
    |v: bool| u64::from(v),
    |w: u64| w != 0
);

macro_rules! atomic_arith {
    ($name:ident, $raw:ty, $to_u64:expr, $from_u64:expr) => {
        impl $name {
            /// Atomic wrapping add; returns the previous value.
            pub fn fetch_add(&self, v: $raw, ord: Ordering) -> $raw {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => {
                        let word = ($to_u64)(v);
                        ($from_u64)(ctx.exec.op_rmw(
                            ctx.tid,
                            id,
                            &mut |old| old.wrapping_add(word),
                            ord,
                        ))
                    }
                    None => self.real.fetch_add(v, ord),
                }
            }

            /// Atomic wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, v: $raw, ord: Ordering) -> $raw {
                match model_route(self.model, "atomic") {
                    Some((ctx, id)) => {
                        let word = ($to_u64)(v);
                        ($from_u64)(ctx.exec.op_rmw(
                            ctx.tid,
                            id,
                            &mut |old| old.wrapping_sub(word),
                            ord,
                        ))
                    }
                    None => self.real.fetch_sub(v, ord),
                }
            }
        }
    };
}

atomic_arith!(AtomicU64, u64, |v: u64| v, |w: u64| w);
atomic_arith!(AtomicUsize, usize, |v: usize| v as u64, |w: u64| w as usize);

/// Model-aware memory fence: std `fence` outside an execution, a
/// scheduler event updating the thread's fence views inside one.
pub fn fence(ord: Ordering) {
    match exec::current() {
        Some(ctx) => ctx.exec.op_fence(ctx.tid, ord),
        None => std::sync::atomic::fence(ord),
    }
}

/// Model-aware mutex. The payload always lives in a real
/// `std::sync::Mutex`; inside an execution the virtual scheduler
/// decides blocking and lock-acquire/release ordering first, so the
/// inner std lock is uncontended by construction. Poisoning semantics
/// are inherited from std unchanged.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<Loc>,
}

impl<T> Mutex<T> {
    /// Creates the mutex, registering it with the live model execution
    /// if one is running on this thread.
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
            model: exec::current().map(|ctx| Loc {
                gen: ctx.gen,
                id: ctx.exec.alloc_mutex(ctx.tid),
            }),
        }
    }

    /// Acquires the mutex, blocking (in model executions: a scheduling
    /// decision) until it is free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let sched = model_route(self.model, "mutex").map(|(ctx, id)| {
            ctx.exec.mutex_lock(ctx.tid, id);
            (ctx, id)
        });
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard { inner, sched }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                inner: poison.into_inner(),
                sched,
            })),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    /// An unlocked mutex over `T::default()`, registered with the live
    /// model execution like [`Mutex::new`].
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]; releases the scheduler-side lock
/// before the std guard on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    sched: Option<(Ctx, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ctx, id)) = self.sched.take() {
            ctx.exec.mutex_unlock(ctx.tid, id);
        }
    }
}
