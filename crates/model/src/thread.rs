//! Model-aware mirror of the `std::thread` surface the repo uses:
//! `spawn`, `Builder`, `scope`, `sleep`, `yield_now`,
//! `available_parallelism`. Outside a model execution everything
//! delegates to std; inside one, spawned closures become *model
//! threads* scheduled by the checker (each backed by a real OS thread
//! parked on the scheduler's condvar).
//!
//! Results travel through typed out-slots owned by the join handles,
//! so scoped threads may return borrowed (non-`'static`) values just
//! like `std::thread::scope`.

use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::exec::{self, Payload};

type OutSlot<T> = Arc<Mutex<Option<T>>>;

fn take_out<T>(out: &OutSlot<T>) -> T {
    out.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .expect("thread finished without storing its result")
}

enum JoinImp {
    Std(std::thread::JoinHandle<()>),
    Model { tid: usize },
}

impl JoinImp {
    fn join(self) -> Result<(), Payload> {
        match self {
            JoinImp::Std(h) => h.join(),
            JoinImp::Model { tid } => {
                let ctx =
                    exec::current().expect("model thread handle joined outside its execution");
                ctx.exec.join_model(ctx.tid, tid)
            }
        }
    }
}

/// Handle to a spawned thread; [`join`](JoinHandle::join) returns the
/// closure's value or its panic payload.
pub struct JoinHandle<T> {
    imp: JoinImp,
    out: OutSlot<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a scheduling decision inside a
    /// model execution).
    pub fn join(self) -> std::thread::Result<T> {
        self.imp.join().map(|()| take_out(&self.out))
    }
}

fn spawn_imp<F, T>(name: Option<String>, f: F) -> std::io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let out: OutSlot<T> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let run = move || {
        let v = f();
        *out2
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
    };
    let imp = match exec::current() {
        Some(ctx) => JoinImp::Model {
            tid: ctx.exec.spawn_model(ctx.tid, Box::new(run)),
        },
        None => {
            let mut b = std::thread::Builder::new();
            if let Some(n) = name {
                b = b.name(n);
            }
            JoinImp::Std(b.spawn(run)?)
        }
    };
    Ok(JoinHandle { imp, out })
}

/// Spawns a thread; model-scheduled inside an execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_imp(None, f).expect("failed to spawn thread")
}

/// Mirror of `std::thread::Builder` (the name is kept for std builds,
/// informational only under the model).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Fresh builder with no name.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names the thread (visible in std builds' panic messages).
    #[must_use]
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread; errors only in std mode (OS resource limits).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_imp(self.name, f)
    }
}

/// In a model execution a sleep is just a scheduling point — model
/// tests must never depend on wall-clock timing; outside, real sleep.
pub fn sleep(dur: Duration) {
    match exec::current() {
        Some(ctx) => ctx.exec.yield_op(ctx.tid),
        None => std::thread::sleep(dur),
    }
}

/// Scheduling hint; a scheduling point inside a model execution.
pub fn yield_now() {
    match exec::current() {
        Some(ctx) => ctx.exec.yield_op(ctx.tid),
        None => std::thread::yield_now(),
    }
}

/// Fixed at 4 inside a model execution (model tests must be
/// deterministic across hosts); the real value outside.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    match exec::current() {
        Some(_) => Ok(NonZeroUsize::new(4).expect("4 is nonzero")),
        None => std::thread::available_parallelism(),
    }
}

enum ScopeSlot {
    Done,
    Std(std::thread::JoinHandle<()>),
    Model { tid: usize },
}

/// Mirror of `std::thread::Scope`: threads spawned through it may
/// borrow from the enclosing scope and are all joined before
/// [`scope`] returns — on every path, including panics and model
/// execution teardown.
pub struct Scope<'scope, 'env: 'scope> {
    slots: Mutex<Vec<ScopeSlot>>,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

/// Handle to a scoped thread; joining is optional (the scope joins
/// leftovers itself).
pub struct ScopedJoinHandle<'scope, T> {
    slots: &'scope Mutex<Vec<ScopeSlot>>,
    index: usize,
    out: OutSlot<T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread and returns its result or panic
    /// payload.
    pub fn join(self) -> std::thread::Result<T> {
        let slot = {
            let mut g = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::replace(&mut g[self.index], ScopeSlot::Done)
        };
        let r: Result<(), Payload> = match slot {
            ScopeSlot::Done => unreachable!("scoped thread joined twice"),
            ScopeSlot::Std(h) => h.join(),
            ScopeSlot::Model { tid } => JoinImp::Model { tid }.join(),
        };
        r.map(|()| take_out(&self.out))
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope.
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let out: OutSlot<T> = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let run: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let v = f();
            *out2
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
        });
        // SAFETY: `scope` joins every spawned thread before returning,
        // on the ok path, the panic path, and the model-abort path, so
        // no `'scope` borrow outlives its referent. Same argument as
        // `std::thread::scope`; the transmute only erases the lifetime.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        let slot = match exec::current() {
            Some(ctx) => ScopeSlot::Model {
                tid: ctx.exec.spawn_model(ctx.tid, run),
            },
            None => ScopeSlot::Std(std::thread::spawn(run)),
        };
        let mut g = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let index = g.len();
        g.push(slot);
        ScopedJoinHandle {
            slots: &self.slots,
            index,
            out,
        }
    }
}

/// Mirror of `std::thread::scope`. Inside a model execution the
/// spawned threads are model-scheduled; the scope still guarantees
/// all of them have exited before it returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let sc = Scope {
        slots: Mutex::new(Vec::new()),
        scope_marker: PhantomData,
        env_marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    let slots: Vec<ScopeSlot> = {
        let mut g = sc
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.drain(..).collect()
    };
    let model_tids: Vec<usize> = slots
        .iter()
        .filter_map(|s| match s {
            ScopeSlot::Model { tid } => Some(*tid),
            _ => None,
        })
        .collect();
    let mut child_panic: Option<Payload> = None;
    for slot in slots {
        match slot {
            ScopeSlot::Done => {}
            ScopeSlot::Std(h) => {
                if let Err(p) = h.join() {
                    child_panic.get_or_insert(p);
                }
            }
            ScopeSlot::Model { tid } => {
                if exec::current_aborted() {
                    // The execution is tearing down: scheduler joins
                    // would re-panic. Wait for the raw OS threads (they
                    // all exit promptly once aborted) so no `'scope`
                    // borrow outlives this frame, then re-raise.
                    let ctx = exec::current().expect("aborted implies an execution");
                    ctx.exec.os_join_tids(&model_tids);
                    exec::abort_unwind();
                }
                match catch_unwind(AssertUnwindSafe(|| JoinImp::Model { tid }.join())) {
                    Ok(Ok(())) => {}
                    Ok(Err(p)) => {
                        child_panic.get_or_insert(p);
                    }
                    Err(abort) => {
                        let ctx = exec::current().expect("model join implies an execution");
                        ctx.exec.os_join_tids(&model_tids);
                        resume_unwind(abort);
                    }
                }
            }
        }
    }
    match result {
        Err(p) => resume_unwind(p),
        Ok(v) => {
            if let Some(p) = child_panic {
                resume_unwind(p);
            }
            v
        }
    }
}
