//! Chrome Trace Event Format export.
//!
//! Renders a run's profile ([`ProfileRecord`]s) and event ring
//! ([`TraceEvent`]s) as a Trace Event Format JSON object loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): one
//! thread track per core carrying execution-residency slices, migration
//! instants tied together by flow arrows, and counter tracks for the
//! interval metrics (`F`, `A_R`, miss densities, per-core residency,
//! bus traffic).
//!
//! The trace clock is the retired-instruction counter, mapped 1:1 onto
//! the format's microsecond timestamps — 1 Minstr reads as 1 s in the
//! viewer, which is the right zoom level for the paper's dynamics
//! (`F`-counter flips every few hundred to few thousand references,
//! affinity settling over tens of Minstr).
//!
//! A second clock domain can ride alongside: [`render_wall_trace`]
//! renders the wall-clock flight recorder's retained spans (real
//! nanoseconds, as microsecond timestamps) under their own process id,
//! and [`merge_traces`] splices both documents into one dual-clock
//! trace — simulated time as process 0, wall-clock time as process 1,
//! side by side in the same viewer.
//!
//! Everything here is plain data transformation: it runs identically
//! with or without the `trace` feature (the inputs are just empty
//! slices when tracing is compiled out).

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;
use crate::profile::ProfileRecord;
use crate::wall::RetainedSpan;

/// The process id of the simulated-time tracks.
const PID: u64 = 0;

/// The process id of the wall-clock tracks in a dual-clock trace.
pub const WALL_PID: u64 = 1;

/// Incremental builder for a Trace Event Format document.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    pid: u64,
    events: Vec<Json>,
}

impl ChromeTraceBuilder {
    /// An empty trace on process id 0 (the simulated-time clock).
    pub fn new() -> Self {
        ChromeTraceBuilder::with_pid(PID)
    }

    /// An empty trace whose tracks live under `pid` — a separate
    /// process group in the viewer, which is how a second clock domain
    /// (e.g. [`WALL_PID`]) coexists with the simulated-time tracks.
    pub fn with_pid(pid: u64) -> Self {
        ChromeTraceBuilder {
            pid,
            events: Vec::new(),
        }
    }

    fn push(&mut self, ph: &str, extra: Json) {
        let mut obj = Json::object().field("ph", ph).field("pid", self.pid);
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut obj, extra) {
            dst.extend(src);
        }
        self.events.push(obj);
    }

    /// Names the process (metadata event).
    pub fn process_name(&mut self, name: &str) {
        self.push(
            "M",
            Json::object()
                .field("name", "process_name")
                .field("args", Json::object().field("name", name)),
        );
    }

    /// Names thread `tid` (metadata event).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.push(
            "M",
            Json::object()
                .field("tid", tid)
                .field("name", "thread_name")
                .field("args", Json::object().field("name", name)),
        );
    }

    /// A complete slice (`ph: "X"`) on thread `tid`.
    pub fn complete(&mut self, tid: u64, name: &str, ts: u64, dur: u64) {
        self.push(
            "X",
            Json::object()
                .field("tid", tid)
                .field("name", name)
                .field("cat", "residency")
                .field("ts", ts)
                .field("dur", dur),
        );
    }

    /// A complete slice with an explicit category and extra `args`
    /// payload (used by the wall-clock span export to carry span and
    /// parent ids).
    pub fn complete_in(&mut self, tid: u64, name: &str, cat: &str, ts: u64, dur: u64, args: Json) {
        self.push(
            "X",
            Json::object()
                .field("tid", tid)
                .field("name", name)
                .field("cat", cat)
                .field("ts", ts)
                .field("dur", dur)
                .field("args", args),
        );
    }

    /// A thread-scoped instant (`ph: "i"`).
    pub fn instant(&mut self, tid: u64, name: &str, ts: u64) {
        self.push(
            "i",
            Json::object()
                .field("tid", tid)
                .field("name", name)
                .field("cat", "migration")
                .field("s", "t")
                .field("ts", ts),
        );
    }

    /// A flow start (`ph: "s"`): the tail of an arrow with id `id`.
    pub fn flow_start(&mut self, tid: u64, name: &str, id: u64, ts: u64) {
        self.push(
            "s",
            Json::object()
                .field("tid", tid)
                .field("name", name)
                .field("cat", "migration")
                .field("id", id)
                .field("ts", ts),
        );
    }

    /// A flow end (`ph: "f"`): the head of the arrow with id `id`.
    pub fn flow_end(&mut self, tid: u64, name: &str, id: u64, ts: u64) {
        self.push(
            "f",
            Json::object()
                .field("tid", tid)
                .field("name", name)
                .field("cat", "migration")
                .field("id", id)
                .field("bp", "e")
                .field("ts", ts),
        );
    }

    /// A counter sample (`ph: "C"`) with one or more stacked series.
    pub fn counter(&mut self, name: &str, ts: u64, series: &[(&str, f64)]) {
        let mut args = Json::object();
        for (k, v) in series {
            args = args.field(k, *v);
        }
        self.push(
            "C",
            Json::object()
                .field("name", name)
                .field("ts", ts)
                .field("args", args),
        );
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalises the trace as the JSON-object form of the format.
    pub fn build(self) -> Json {
        Json::object()
            .field("traceEvents", Json::Arr(self.events))
            .field("displayTimeUnit", "ms")
    }
}

/// Renders a machine run as a complete trace: per-core residency
/// slices (reconstructed from the migration events), migration
/// instants + flow arrows, and counter tracks from the profile
/// records. `cores` bounds the thread tracks; `end` is the run's final
/// instruction count (closes the last residency slice).
pub fn render_machine_trace(
    records: &[ProfileRecord],
    events: &[TraceEvent],
    cores: usize,
    end: u64,
) -> Json {
    let mut t = ChromeTraceBuilder::new();
    t.process_name("execmig machine");
    for c in 0..cores as u64 {
        t.thread_name(c, &format!("core {c}"));
    }

    // Residency slices between migrations. The ring may have dropped
    // the oldest events; start the first slice where the retained
    // window begins, on the core the first migration leaves from (or
    // the profile's first active core, or 0).
    let migrations: Vec<(u64, u8, u8)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Migration { from, to } => Some((e.at, from, to)),
            _ => None,
        })
        .collect();
    let mut slice_start = 0u64;
    let mut current: u64 = migrations
        .first()
        .map(|&(_, from, _)| u64::from(from))
        .or_else(|| records.first().map(|r| u64::from(r.active_core)))
        .unwrap_or(0);
    for (i, &(at, _, to)) in migrations.iter().enumerate() {
        if at > slice_start {
            t.complete(current, "executing", slice_start, at - slice_start);
        }
        t.instant(u64::from(to), "migration", at);
        t.flow_start(current, "migrate", i as u64, at);
        t.flow_end(u64::from(to), "migrate", i as u64, at);
        slice_start = at;
        current = u64::from(to);
    }
    if end > slice_start {
        t.complete(current, "executing", slice_start, end - slice_start);
    }

    // Counter tracks: one sample per profile interval, stamped at the
    // interval start (a counter holds its value until the next sample).
    for r in records {
        let kinstr = r.len_instructions().max(1) as f64 / 1000.0;
        t.counter(
            "miss density (per kinstr)",
            r.start,
            &[
                ("l1", (r.il1_misses + r.dl1_misses) as f64 / kinstr),
                ("l2", r.l2_misses as f64 / kinstr),
                ("l3", r.l3_misses as f64 / kinstr),
            ],
        );
        t.counter(
            "migrations/interval",
            r.start,
            &[
                ("migrations", r.migrations as f64),
                ("flips", r.flips as f64),
            ],
        );
        t.counter("F", r.start, &[("F", r.f_value as f64)]);
        t.counter("A_R", r.start, &[("A_R", r.a_r as f64)]);
        t.counter(
            "affinity-cache hit rate",
            r.start,
            &[("hit_rate", r.affinity_hit_rate())],
        );
        t.counter(
            "bus bytes/instr",
            r.start,
            &[(
                "bytes",
                r.bus_bytes as f64 / r.len_instructions().max(1) as f64,
            )],
        );
        t.counter(
            "coherence (per kinstr)",
            r.start,
            &[
                ("invalidations", r.invalidations as f64 / kinstr),
                ("updates", r.coherence_updates as f64 / kinstr),
            ],
        );
        let residency: Vec<(String, f64)> = r
            .residency
            .iter()
            .take(cores)
            .enumerate()
            .map(|(c, &v)| (format!("core{c}"), v as f64))
            .collect();
        let series: Vec<(&str, f64)> = residency.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        t.counter("residency (instr)", r.start, &series);
    }
    t.build()
}

/// Renders the wall-clock flight recorder's retained spans as a trace
/// under [`WALL_PID`]: one thread track per wall slot, each closed
/// span a complete slice with its span/parent ids in `args`.
/// Timestamps are wall nanoseconds mapped to the format's microsecond
/// field at ns resolution divided by 1000 (sub-µs spans render with
/// duration 0 but keep their exact ids).
///
/// `threads` bounds the named thread tracks; by convention the runner
/// uses slots `0..workers` for workers and the last slot for the
/// driver thread.
pub fn render_wall_trace(spans: &[RetainedSpan], threads: usize) -> Json {
    let mut t = ChromeTraceBuilder::with_pid(WALL_PID);
    t.process_name("execmig wall clock");
    for i in 0..threads as u64 {
        let name = if threads > 1 && i == threads as u64 - 1 {
            "driver".to_string()
        } else {
            format!("worker {i}")
        };
        t.thread_name(i, &name);
    }
    for s in spans {
        t.complete_in(
            s.thread as u64,
            &s.family,
            "wall",
            s.start_ns / 1000,
            s.dur_ns / 1000,
            Json::object().field("id", s.id).field("parent", s.parent),
        );
    }
    t.build()
}

/// Splices two built trace documents into one: the union of their
/// `traceEvents` under one `displayTimeUnit`. With
/// [`render_machine_trace`] (pid 0, simulated time) and
/// [`render_wall_trace`] ([`WALL_PID`], wall-clock time) this yields
/// the dual-clock view — both process groups side by side in the same
/// viewer, each on its own clock.
pub fn merge_traces(a: Json, b: Json) -> Json {
    let mut events = Vec::new();
    for doc in [a, b] {
        if let Some(Json::Arr(items)) = doc.get("traceEvents") {
            events.extend(items.iter().cloned());
        }
    }
    Json::object()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::profile::PROFILE_MAX_CORES;

    fn record(start: u64, end: u64, l2: u64, core: u8) -> ProfileRecord {
        let mut residency = [0u64; PROFILE_MAX_CORES];
        residency[core as usize] = end - start;
        ProfileRecord {
            start,
            end,
            il1_misses: 1,
            dl1_misses: 2,
            l2_misses: l2,
            l3_misses: 0,
            migrations: 1,
            flips: 2,
            affinity_hits: 3,
            affinity_misses: 1,
            bus_bytes: 4096,
            invalidations: 0,
            coherence_updates: 0,
            residency,
            f_value: -5,
            a_r: 17,
            active_core: core,
            subset: core,
        }
    }

    fn events_of(doc: &Json) -> &[Json] {
        match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        }
    }

    #[test]
    fn builder_emits_wellformed_phases() {
        let mut t = ChromeTraceBuilder::new();
        t.process_name("p");
        t.thread_name(1, "core 1");
        t.complete(1, "executing", 10, 90);
        t.instant(2, "migration", 100);
        t.flow_start(1, "migrate", 7, 100);
        t.flow_end(2, "migrate", 7, 100);
        t.counter("F", 0, &[("F", -3.0)]);
        assert_eq!(t.len(), 7);
        let doc = t.build();
        let evs = events_of(&doc);
        let phases: Vec<&Json> = evs.iter().filter_map(|e| e.get("ph")).collect();
        for ph in ["M", "X", "i", "s", "f", "C"] {
            assert!(
                phases.iter().any(|p| **p == Json::Str(ph.into())),
                "missing phase {ph}"
            );
        }
        // Every event carries pid and the phases that need ts have it.
        for e in evs {
            assert!(e.get("pid").is_some());
        }
    }

    #[test]
    fn output_is_valid_json_round_trip() {
        let recs = [record(0, 100, 5, 0), record(100, 200, 2, 1)];
        let evs = [
            TraceEvent {
                at: 40,
                kind: EventKind::Migration { from: 0, to: 1 },
            },
            TraceEvent {
                at: 45,
                kind: EventKind::L2Miss,
            },
            TraceEvent {
                at: 150,
                kind: EventKind::Migration { from: 1, to: 3 },
            },
        ];
        let doc = render_machine_trace(&recs, &evs, 4, 200);
        // The exported text must parse back identically: that is the
        // "loads in a viewer without errors" contract we can check
        // offline.
        let text = doc.pretty();
        assert_eq!(json::parse(&text), Ok(doc.clone()));
        assert_eq!(doc.get("displayTimeUnit"), Some(&Json::Str("ms".into())));

        let evs = events_of(&doc);
        // Residency slices: [0,40) on core 0, [40,150) on core 1,
        // [150,200) on core 3.
        let slices: Vec<&Json> = evs
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("X".into())))
            .collect();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].get("tid"), Some(&Json::UInt(0)));
        assert_eq!(slices[0].get("dur"), Some(&Json::UInt(40)));
        assert_eq!(slices[2].get("tid"), Some(&Json::UInt(3)));
        assert_eq!(slices[2].get("dur"), Some(&Json::UInt(50)));
        // Two flow arrows (s+f per migration).
        let flows = evs
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Json::Str(p)) if p == "s" || p == "f"))
            .count();
        assert_eq!(flows, 4);
        // Counter tracks exist (≥1 required by the acceptance bar).
        let counters: std::collections::BTreeSet<String> = evs
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("C".into())))
            .filter_map(|e| match e.get("name") {
                Some(Json::Str(n)) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert!(counters.contains("F"));
        assert!(counters.contains("residency (instr)"));
        assert!(counters.contains("miss density (per kinstr)"));
    }

    #[test]
    fn empty_inputs_render_minimal_trace() {
        let doc = render_machine_trace(&[], &[], 4, 0);
        let evs = events_of(&doc);
        // Metadata only: process + 4 thread names, no slices.
        assert_eq!(evs.len(), 5);
        assert!(json::parse(&doc.compact()).is_ok());
    }

    #[test]
    fn wall_trace_and_dual_clock_merge() {
        let spans = [
            RetainedSpan {
                id: (1 << 48) | 1,
                parent: 0,
                family: "sweep".to_string(),
                thread: 1,
                start_ns: 1_000,
                dur_ns: 2_000_000,
            },
            RetainedSpan {
                id: (2 << 48) | 1,
                parent: (1 << 48) | 1,
                family: "runner/task".to_string(),
                thread: 0,
                start_ns: 5_000,
                dur_ns: 900, // sub-µs: renders with dur 0
            },
        ];
        let wall_doc = render_wall_trace(&spans, 2);
        let evs = events_of(&wall_doc);
        // Process + 2 thread names + 2 slices, all under WALL_PID.
        assert_eq!(evs.len(), 5);
        for e in evs {
            assert_eq!(e.get("pid"), Some(&Json::UInt(WALL_PID)));
        }
        let slices: Vec<&Json> = evs
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("X".into())))
            .collect();
        assert_eq!(slices[0].get("name"), Some(&Json::Str("sweep".into())));
        assert_eq!(slices[0].get("ts"), Some(&Json::UInt(1)));
        assert_eq!(slices[0].get("dur"), Some(&Json::UInt(2_000)));
        assert_eq!(slices[1].get("dur"), Some(&Json::UInt(0)));
        // Causality rides in args.
        let args = slices[1].get("args").expect("args");
        assert_eq!(args.get("parent"), Some(&Json::UInt((1 << 48) | 1)));
        // The last named track is the driver.
        let names: Vec<&Json> = evs
            .iter()
            .filter_map(|e| e.get("args")?.get("name"))
            .collect();
        assert!(names.contains(&&Json::Str("driver".into())));
        assert!(names.contains(&&Json::Str("worker 0".into())));

        // Dual-clock merge: machine events (pid 0) + wall events
        // (WALL_PID) in one valid document.
        let machine_doc = render_machine_trace(&[record(0, 100, 5, 0)], &[], 2, 100);
        let machine_len = events_of(&machine_doc).len();
        let merged = merge_traces(machine_doc, wall_doc);
        let merged_evs = events_of(&merged);
        assert_eq!(merged_evs.len(), machine_len + 5);
        let pids: std::collections::BTreeSet<u64> = merged_evs
            .iter()
            .filter_map(|e| match e.get("pid") {
                Some(Json::UInt(p)) => Some(*p),
                _ => None,
            })
            .collect();
        assert!(pids.contains(&PID) && pids.contains(&WALL_PID));
        assert!(json::parse(&merged.pretty()).is_ok());
    }

    #[test]
    fn dropped_head_starts_on_first_known_core() {
        // Ring dropped everything before t=500; first retained
        // migration leaves core 2, so [0,500) is attributed to core 2.
        let evs = [TraceEvent {
            at: 500,
            kind: EventKind::Migration { from: 2, to: 0 },
        }];
        let doc = render_machine_trace(&[], &evs, 4, 600);
        let slices: Vec<&Json> = events_of(&doc)
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("X".into())))
            .collect();
        assert_eq!(slices[0].get("tid"), Some(&Json::UInt(2)));
        assert_eq!(slices[1].get("tid"), Some(&Json::UInt(0)));
    }
}
