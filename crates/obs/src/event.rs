//! Typed trace events with monotonic instruction timestamps.

use crate::json::{Json, ToJson};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The active core changed.
    Migration {
        /// Core that was executing.
        from: u8,
        /// Core that executes next.
        to: u8,
    },
    /// A transition filter changed sign (the splitter designated a new
    /// subset — visible even when L2 filtering suppresses the move).
    TransitionFlip,
    /// The affinity cache missed and forced `A_e = 0`.
    AffinityCacheMiss,
    /// A request missed the active core's L2.
    L2Miss,
    /// The update bus broadcast an L1 fill to the inactive mirrors.
    BusBroadcast,
}

impl EventKind {
    /// Stable lowercase label, used by exporters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Migration { .. } => "migration",
            EventKind::TransitionFlip => "transition_flip",
            EventKind::AffinityCacheMiss => "affinity_cache_miss",
            EventKind::L2Miss => "l2_miss",
            EventKind::BusBroadcast => "bus_broadcast",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Retired-instruction count when the event occurred. Monotonic
    /// within a run (the machine stamps events with the workload's
    /// cumulative instruction counter).
    pub at: u64,
    /// The event.
    pub kind: EventKind,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut obj = Json::object()
            .field("at", self.at)
            .field("kind", self.kind.label());
        if let EventKind::Migration { from, to } = self.kind {
            obj = obj.field("from", from).field("to", to);
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::Migration { from: 0, to: 2 }.label(), "migration");
        assert_eq!(EventKind::TransitionFlip.label(), "transition_flip");
        assert_eq!(EventKind::AffinityCacheMiss.label(), "affinity_cache_miss");
        assert_eq!(EventKind::L2Miss.label(), "l2_miss");
        assert_eq!(EventKind::BusBroadcast.label(), "bus_broadcast");
    }

    #[test]
    fn migration_json_carries_cores() {
        let e = TraceEvent {
            at: 9,
            kind: EventKind::Migration { from: 1, to: 3 },
        };
        assert_eq!(
            e.to_json().compact(),
            r#"{"at":9,"kind":"migration","from":1,"to":3}"#
        );
        let e = TraceEvent {
            at: 10,
            kind: EventKind::L2Miss,
        };
        assert_eq!(e.to_json().compact(), r#"{"at":10,"kind":"l2_miss"}"#);
    }
}
