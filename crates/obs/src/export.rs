//! Exporters: JSON, CSV, and Prometheus-style text exposition for a
//! metrics [`Registry`].

use crate::json::{Json, ToJson};
use crate::metrics::{Histogram, MetricValue, Registry, BUCKETS};

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = (0..BUCKETS)
            .filter(|&i| self.bucket_counts()[i] > 0)
            .map(|i| {
                Json::object()
                    .field("le", Histogram::bucket_upper(i))
                    .field("count", self.bucket_counts()[i])
            })
            .collect();
        Json::object()
            .field("count", self.count())
            .field("sum", self.sum())
            .field("min", self.min())
            .field("max", self.max())
            .field("mean", self.mean())
            .field("p50", self.quantile(0.50))
            .field("p90", self.quantile(0.90))
            .field("p99", self.quantile(0.99))
            .field("buckets", Json::Arr(buckets))
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let mut counters = Json::object();
        let mut gauges = Json::object();
        let mut histograms = Json::object();
        for (name, value) in self.iter() {
            match value {
                MetricValue::Counter(v) => counters = counters.field(name, *v),
                MetricValue::Gauge(v) => gauges = gauges.field(name, *v),
                MetricValue::Histogram(h) => histograms = histograms.field(name, h),
            }
        }
        Json::object()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

/// Restricts a metric name to the Prometheus charset
/// (`[a-zA-Z0-9_:]`, no leading digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` docstring: `\` → `\\`, newline → `\n` (quotes are
/// legal in help text and stay as-is).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The metric family kinds the exposition format knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically nondecreasing.
    Counter,
    /// Free to move either way.
    Gauge,
    /// Cumulative `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl PromKind {
    /// The keyword used on the `# TYPE` line.
    pub fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// Conformance-correct Prometheus text-exposition writer.
///
/// Guarantees the exporter previously violated when sanitised names
/// collided (`a.b` and `a_b` both map to `a_b`):
///
/// - `# TYPE` (and `# HELP`, when given) are emitted exactly once per
///   metric family, however many times [`family`](PromWriter::family)
///   is called for it;
/// - label values are escaped (`\\`, `\"`, `\n`) so arbitrary strings
///   survive the wire format;
/// - metric names pass through [`sanitize`] in both the family header
///   and the sample lines, so they can never disagree.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    seen: std::collections::HashSet<String>,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Declares a metric family. The first call for a given (sanitised)
    /// name emits `# HELP` (if provided) and `# TYPE`; repeat calls are
    /// no-ops, making collision-by-sanitisation harmless.
    pub fn family(&mut self, name: &str, kind: PromKind, help: Option<&str>) {
        let name = sanitize(name);
        if !self.seen.insert(name.clone()) {
            return;
        }
        if let Some(help) = help {
            self.out
                .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        }
        self.out
            .push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
    }

    /// Emits one sample line. `labels` are `(name, value)` pairs; values
    /// are escaped, names sanitised. Integral values print without a
    /// decimal point (matching the pre-writer exporter).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&sanitize(name));
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out
                    .push_str(&format!("{}=\"{}\"", sanitize(k), escape_label_value(v)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    /// Emits a sample whose value is pre-rendered (used by histogram
    /// bucket bounds where `u64` counts must not pick up a `.0`).
    fn sample_raw(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(&sanitize(name));
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out
                    .push_str(&format!("{}=\"{}\"", sanitize(k), escape_label_value(v)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    /// Emits a full histogram family: cumulative `_bucket{le=…}` series
    /// plus `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: Option<&str>, h: &Histogram) {
        self.family(name, PromKind::Histogram, help);
        let base = sanitize(name);
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            let c = h.bucket_counts()[i];
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = Histogram::bucket_upper(i).to_string();
            self.sample_raw(
                &format!("{base}_bucket"),
                &[("le", &le)],
                &cumulative.to_string(),
            );
        }
        self.sample_raw(
            &format!("{base}_bucket"),
            &[("le", "+Inf")],
            &h.count().to_string(),
        );
        self.sample_raw(&format!("{base}_sum"), &[], &h.sum().to_string());
        self.sample_raw(&format!("{base}_count"), &[], &h.count().to_string());
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders `registry` in the Prometheus text exposition format.
/// Histograms emit cumulative `_bucket{le=…}` series plus `_sum` and
/// `_count`, matching the native histogram convention. Built on
/// [`PromWriter`], so `# TYPE` appears exactly once per family even
/// when sanitised names collide.
pub fn to_prometheus(registry: &Registry, prefix: &str) -> String {
    let mut w = PromWriter::new();
    for (name, value) in registry.iter() {
        let full = format!("{prefix}{name}");
        match value {
            MetricValue::Counter(v) => {
                w.family(&full, PromKind::Counter, None);
                w.sample_raw(&full, &[], &v.to_string());
            }
            MetricValue::Gauge(v) => {
                w.family(&full, PromKind::Gauge, None);
                w.sample_raw(&full, &[], &v.to_string());
            }
            MetricValue::Histogram(h) => {
                w.histogram(&full, None, h);
            }
        }
    }
    w.finish()
}

/// Renders `registry` as CSV (`metric,kind,value` rows; histograms
/// expand into `count`/`sum`/`mean`/`p50`/`p99`/`max` rows).
pub fn to_csv(registry: &Registry) -> String {
    let mut out = String::from("metric,kind,value\n");
    for (name, value) in registry.iter() {
        match value {
            MetricValue::Counter(v) => out.push_str(&format!("{name},counter,{v}\n")),
            MetricValue::Gauge(v) => out.push_str(&format!("{name},gauge,{v}\n")),
            MetricValue::Histogram(h) => {
                out.push_str(&format!("{name}_count,histogram,{}\n", h.count()));
                out.push_str(&format!("{name}_sum,histogram,{}\n", h.sum()));
                out.push_str(&format!("{name}_mean,histogram,{}\n", h.mean()));
                out.push_str(&format!("{name}_p50,histogram,{}\n", h.quantile(0.5)));
                out.push_str(&format!("{name}_p99,histogram,{}\n", h.quantile(0.99)));
                out.push_str(&format!("{name}_max,histogram,{}\n", h.max()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter("l2_misses", 42);
        r.gauge("miss_rate", 0.25);
        let mut h = Histogram::new();
        h.observe(1);
        h.observe(1);
        h.observe(6);
        r.histogram("dwell", &h);
        r
    }

    // Golden test: the exposition formats are a contract with external
    // scrapers/plotters — any change here must be deliberate.
    #[test]
    fn golden_prometheus_exposition() {
        let text = to_prometheus(&sample_registry(), "execmig_");
        assert_eq!(
            text,
            "\
# TYPE execmig_l2_misses counter
execmig_l2_misses 42
# TYPE execmig_miss_rate gauge
execmig_miss_rate 0.25
# TYPE execmig_dwell histogram
execmig_dwell_bucket{le=\"1\"} 2
execmig_dwell_bucket{le=\"7\"} 3
execmig_dwell_bucket{le=\"+Inf\"} 3
execmig_dwell_sum 8
execmig_dwell_count 3
"
        );
    }

    #[test]
    fn golden_json_exposition() {
        let json = sample_registry().to_json().compact();
        assert_eq!(
            json,
            r#"{"counters":{"l2_misses":42},"gauges":{"miss_rate":0.25},"histograms":{"dwell":{"count":3,"sum":8,"min":1,"max":6,"mean":2.6666666666666665,"p50":1,"p90":6,"p99":6,"buckets":[{"le":1,"count":2},{"le":7,"count":1}]}}}"#
        );
    }

    #[test]
    fn csv_rows() {
        let csv = to_csv(&sample_registry());
        assert!(csv.starts_with("metric,kind,value\n"));
        assert!(csv.contains("l2_misses,counter,42\n"));
        assert!(csv.contains("dwell_count,histogram,3\n"));
        assert!(csv.contains("dwell_p50,histogram,1\n"));
    }

    #[test]
    fn names_are_sanitised() {
        let mut r = Registry::new();
        r.counter("bus.bytes/instr", 1);
        let text = to_prometheus(&r, "");
        assert!(text.contains("bus_bytes_instr 1"));
    }

    // ---- exposition-format conformance ------------------------------
    //
    // A tiny parser for the exporter's own output: enough grammar to
    // check the invariants a real Prometheus scraper relies on.

    /// `(metric name, labels, rendered value)`.
    type Sample = (String, Vec<(String, String)>, String);

    #[derive(Debug, Default)]
    struct Parsed {
        type_lines: Vec<(String, String)>,
        help_lines: Vec<String>,
        samples: Vec<Sample>,
    }

    fn unescape_label(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => panic!("bad escape \\{other:?}"),
            }
        }
        out
    }

    fn parse_exposition(text: &str) -> Parsed {
        let mut p = Parsed::default();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown kind {kind:?}"
                );
                p.type_lines.push((name.to_string(), kind.to_string()));
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, _) = rest.split_once(' ').expect("HELP has name and text");
                p.help_lines.push(name.to_string());
                continue;
            }
            // Sample line: name[{labels}] value. The label block is
            // delimited by the *last* '}' so escaped quotes inside
            // values cannot confuse us (values never contain '}'
            // unescaped... they can! so scan quotes properly).
            let (head, value) = match line.rfind(' ') {
                Some(i) => (&line[..i], &line[i + 1..]),
                None => panic!("sample line without value: {line:?}"),
            };
            let (name, labels) = match head.find('{') {
                None => (head.to_string(), Vec::new()),
                Some(open) => {
                    assert!(head.ends_with('}'), "unterminated label block: {line:?}");
                    let body = &head[open + 1..head.len() - 1];
                    let mut labels = Vec::new();
                    let mut rest = body;
                    while !rest.is_empty() {
                        let eq = rest.find("=\"").expect("label is k=\"v\"");
                        let key = &rest[..eq];
                        let mut val = String::new();
                        let mut escaped = false;
                        let mut end = None;
                        for (i, c) in rest[eq + 2..].char_indices() {
                            if escaped {
                                escaped = false;
                                val.push('\\');
                                val.push(c);
                            } else if c == '\\' {
                                escaped = true;
                            } else if c == '"' {
                                end = Some(eq + 2 + i);
                                break;
                            } else {
                                val.push(c);
                            }
                        }
                        let end = end.expect("label value closed");
                        labels.push((key.to_string(), unescape_label(&val)));
                        rest = rest[end + 1..].trim_start_matches(',');
                    }
                    (head[..open].to_string(), labels)
                }
            };
            for c in name.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || c == '_' || c == ':',
                    "illegal metric-name char {c:?} in {name:?}"
                );
            }
            p.samples.push((name, labels, value.to_string()));
        }
        p
    }

    #[test]
    fn type_emitted_once_despite_sanitised_name_collision() {
        // "a.b" and "a_b" both sanitise to "a_b"; the old exporter
        // emitted two `# TYPE a_b counter` lines, which Prometheus
        // rejects as a duplicate family declaration.
        let mut r = Registry::new();
        r.counter("a.b", 1);
        r.counter("a_b", 2);
        let text = to_prometheus(&r, "");
        let parsed = parse_exposition(&text);
        assert_eq!(
            parsed.type_lines,
            vec![("a_b".to_string(), "counter".to_string())]
        );
        assert_eq!(parsed.samples.len(), 2);
    }

    #[test]
    fn writer_escapes_label_values_round_trip() {
        let hairy = "quote \" backslash \\ newline \n done";
        let mut w = PromWriter::new();
        w.family(
            "jobs",
            PromKind::Gauge,
            Some("Jobs by name,\nline two \\ raw"),
        );
        w.sample("jobs", &[("name", hairy), ("state", "running")], 3.0);
        let text = w.finish();
        assert!(!text.contains('\u{0}'));
        // Every physical line is either a comment or a sample — the raw
        // newline inside the value must not have produced a bare line.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("jobs"),
                "stray line from unescaped newline: {line:?}"
            );
        }
        let parsed = parse_exposition(&text);
        assert_eq!(parsed.samples.len(), 1);
        let (name, labels, value) = &parsed.samples[0];
        assert_eq!(name, "jobs");
        assert_eq!(value, "3");
        assert_eq!(labels[0], ("name".to_string(), hairy.to_string()));
        assert_eq!(labels[1], ("state".to_string(), "running".to_string()));
    }

    #[test]
    fn help_and_type_once_per_family_across_repeat_declarations() {
        let mut w = PromWriter::new();
        for _ in 0..3 {
            w.family("x_total", PromKind::Counter, Some("a counter"));
            w.sample("x_total", &[], 1.0);
        }
        let text = w.finish();
        let parsed = parse_exposition(&text);
        assert_eq!(parsed.type_lines.len(), 1);
        assert_eq!(parsed.help_lines, vec!["x_total".to_string()]);
        assert_eq!(parsed.samples.len(), 3);
    }

    #[test]
    fn full_registry_output_parses_cleanly() {
        let text = to_prometheus(&sample_registry(), "execmig_");
        let parsed = parse_exposition(&text);
        // One TYPE per family, each family's samples present.
        let mut families: Vec<&str> = parsed.type_lines.iter().map(|(n, _)| n.as_str()).collect();
        families.sort_unstable();
        assert_eq!(
            families,
            vec!["execmig_dwell", "execmig_l2_misses", "execmig_miss_rate"]
        );
        let bucket_samples = parsed
            .samples
            .iter()
            .filter(|(n, _, _)| n == "execmig_dwell_bucket")
            .count();
        assert_eq!(bucket_samples, 3, "two live buckets plus +Inf");
    }
}
