//! Exporters: JSON, CSV, and Prometheus-style text exposition for a
//! metrics [`Registry`].

use crate::json::{Json, ToJson};
use crate::metrics::{Histogram, MetricValue, Registry, BUCKETS};

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = (0..BUCKETS)
            .filter(|&i| self.bucket_counts()[i] > 0)
            .map(|i| {
                Json::object()
                    .field("le", Histogram::bucket_upper(i))
                    .field("count", self.bucket_counts()[i])
            })
            .collect();
        Json::object()
            .field("count", self.count())
            .field("sum", self.sum())
            .field("min", self.min())
            .field("max", self.max())
            .field("mean", self.mean())
            .field("p50", self.quantile(0.50))
            .field("p90", self.quantile(0.90))
            .field("p99", self.quantile(0.99))
            .field("buckets", Json::Arr(buckets))
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let mut counters = Json::object();
        let mut gauges = Json::object();
        let mut histograms = Json::object();
        for (name, value) in self.iter() {
            match value {
                MetricValue::Counter(v) => counters = counters.field(name, *v),
                MetricValue::Gauge(v) => gauges = gauges.field(name, *v),
                MetricValue::Histogram(h) => histograms = histograms.field(name, h),
            }
        }
        Json::object()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

/// Restricts a metric name to the Prometheus charset
/// (`[a-zA-Z0-9_:]`, no leading digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Renders `registry` in the Prometheus text exposition format.
/// Histograms emit cumulative `_bucket{le=…}` series plus `_sum` and
/// `_count`, matching the native histogram convention.
pub fn to_prometheus(registry: &Registry, prefix: &str) -> String {
    let mut out = String::new();
    for (name, value) in registry.iter() {
        let full = sanitize(&format!("{prefix}{name}"));
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {full} counter\n{full} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {full} gauge\n{full} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {full} histogram\n"));
                let mut cumulative = 0u64;
                for i in 0..BUCKETS {
                    let c = h.bucket_counts()[i];
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    out.push_str(&format!(
                        "{full}_bucket{{le=\"{}\"}} {cumulative}\n",
                        Histogram::bucket_upper(i)
                    ));
                }
                out.push_str(&format!("{full}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{full}_sum {}\n", h.sum()));
                out.push_str(&format!("{full}_count {}\n", h.count()));
            }
        }
    }
    out
}

/// Renders `registry` as CSV (`metric,kind,value` rows; histograms
/// expand into `count`/`sum`/`mean`/`p50`/`p99`/`max` rows).
pub fn to_csv(registry: &Registry) -> String {
    let mut out = String::from("metric,kind,value\n");
    for (name, value) in registry.iter() {
        match value {
            MetricValue::Counter(v) => out.push_str(&format!("{name},counter,{v}\n")),
            MetricValue::Gauge(v) => out.push_str(&format!("{name},gauge,{v}\n")),
            MetricValue::Histogram(h) => {
                out.push_str(&format!("{name}_count,histogram,{}\n", h.count()));
                out.push_str(&format!("{name}_sum,histogram,{}\n", h.sum()));
                out.push_str(&format!("{name}_mean,histogram,{}\n", h.mean()));
                out.push_str(&format!("{name}_p50,histogram,{}\n", h.quantile(0.5)));
                out.push_str(&format!("{name}_p99,histogram,{}\n", h.quantile(0.99)));
                out.push_str(&format!("{name}_max,histogram,{}\n", h.max()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter("l2_misses", 42);
        r.gauge("miss_rate", 0.25);
        let mut h = Histogram::new();
        h.observe(1);
        h.observe(1);
        h.observe(6);
        r.histogram("dwell", &h);
        r
    }

    // Golden test: the exposition formats are a contract with external
    // scrapers/plotters — any change here must be deliberate.
    #[test]
    fn golden_prometheus_exposition() {
        let text = to_prometheus(&sample_registry(), "execmig_");
        assert_eq!(
            text,
            "\
# TYPE execmig_l2_misses counter
execmig_l2_misses 42
# TYPE execmig_miss_rate gauge
execmig_miss_rate 0.25
# TYPE execmig_dwell histogram
execmig_dwell_bucket{le=\"1\"} 2
execmig_dwell_bucket{le=\"7\"} 3
execmig_dwell_bucket{le=\"+Inf\"} 3
execmig_dwell_sum 8
execmig_dwell_count 3
"
        );
    }

    #[test]
    fn golden_json_exposition() {
        let json = sample_registry().to_json().compact();
        assert_eq!(
            json,
            r#"{"counters":{"l2_misses":42},"gauges":{"miss_rate":0.25},"histograms":{"dwell":{"count":3,"sum":8,"min":1,"max":6,"mean":2.6666666666666665,"p50":1,"p90":6,"p99":6,"buckets":[{"le":1,"count":2},{"le":7,"count":1}]}}}"#
        );
    }

    #[test]
    fn csv_rows() {
        let csv = to_csv(&sample_registry());
        assert!(csv.starts_with("metric,kind,value\n"));
        assert!(csv.contains("l2_misses,counter,42\n"));
        assert!(csv.contains("dwell_count,histogram,3\n"));
        assert!(csv.contains("dwell_p50,histogram,1\n"));
    }

    #[test]
    fn names_are_sanitised() {
        let mut r = Registry::new();
        r.counter("bus.bytes/instr", 1);
        let text = to_prometheus(&r, "");
        assert!(text.contains("bus_bytes_instr 1"));
    }
}
